"""Time-dependent source waveforms (DC, PULSE, SIN, PWL, EXP, STEP).

Independent sources take a :class:`Waveform` describing their value as a
function of time.  The classes mirror the classic SPICE source functions so
netlists translated from the paper's ELDO decks keep their meaning; the
pulse source with finite rise and fall times is exactly what drives the
figure-5 experiment ("a voltage source with a finite rise and fall time was
used to excite the transducer").

Every waveform exposes

``value(t)``
    the source value at time ``t`` (scalar float),
``derivative(t)``
    the time derivative, used by the transient integrator's local-truncation
    error estimate and by breakpoint-aware step control,
``breakpoints()``
    the times at which the waveform has corners; the transient analysis
    forces time points there so sharp edges are never stepped over.
"""

from __future__ import annotations

import math
from dataclasses import dataclass, field
from typing import Sequence

from ..errors import DeviceError
from ..units import parse_quantity

__all__ = [
    "Waveform",
    "DC",
    "Pulse",
    "Sine",
    "PieceWiseLinear",
    "Exponential",
    "Step",
    "ensure_waveform",
]


class Waveform:
    """Base class for source waveforms."""

    def value(self, t: float) -> float:
        """Source value at time ``t``."""
        raise NotImplementedError

    def derivative(self, t: float) -> float:
        """Time derivative at time ``t`` (default: centered finite difference)."""
        h = 1e-9
        return (self.value(t + h) - self.value(t - h)) / (2.0 * h)

    def breakpoints(self) -> tuple[float, ...]:
        """Times where the waveform is non-smooth (corners, edges)."""
        return ()

    @property
    def dc(self) -> float:
        """Value used for the DC operating point (waveform at t = 0)."""
        return self.value(0.0)

    def __call__(self, t: float) -> float:
        return self.value(t)


@dataclass(frozen=True)
class DC(Waveform):
    """Constant source value."""

    level: float = 0.0

    def value(self, t: float) -> float:
        return self.level

    def derivative(self, t: float) -> float:
        return 0.0


@dataclass(frozen=True)
class Pulse(Waveform):
    """SPICE PULSE source: trapezoidal pulses with finite rise/fall times.

    Parameters follow ``PULSE(v1 v2 td tr tf pw period)``.  ``period`` of
    zero or ``None`` yields a single pulse.
    """

    v1: float = 0.0
    v2: float = 1.0
    delay: float = 0.0
    rise: float = 1e-9
    fall: float = 1e-9
    width: float = 1e-3
    period: float | None = None

    def __post_init__(self) -> None:
        if self.rise < 0 or self.fall < 0 or self.width < 0:
            raise DeviceError("pulse rise, fall and width must be non-negative")
        if self.period is not None and self.period <= 0:
            raise DeviceError("pulse period must be positive when given")

    def _local_time(self, t: float) -> float:
        t = t - self.delay
        if t < 0.0:
            return -1.0
        if self.period:
            t = math.fmod(t, self.period)
        return t

    def value(self, t: float) -> float:
        tl = self._local_time(t)
        if tl < 0.0:
            return self.v1
        rise = max(self.rise, 1e-15)
        fall = max(self.fall, 1e-15)
        if tl < self.rise:
            return self.v1 + (self.v2 - self.v1) * tl / rise
        if tl < self.rise + self.width:
            return self.v2
        if tl < self.rise + self.width + self.fall:
            return self.v2 + (self.v1 - self.v2) * (tl - self.rise - self.width) / fall
        return self.v1

    def derivative(self, t: float) -> float:
        tl = self._local_time(t)
        if tl < 0.0:
            return 0.0
        rise = max(self.rise, 1e-15)
        fall = max(self.fall, 1e-15)
        if tl < self.rise:
            return (self.v2 - self.v1) / rise
        if tl < self.rise + self.width:
            return 0.0
        if tl < self.rise + self.width + self.fall:
            return (self.v1 - self.v2) / fall
        return 0.0

    def breakpoints(self) -> tuple[float, ...]:
        corners = [0.0, self.rise, self.rise + self.width, self.rise + self.width + self.fall]
        points: list[float] = []
        repeats = 1 if not self.period else 64
        for k in range(repeats):
            base = self.delay + (k * self.period if self.period else 0.0)
            points.extend(base + c for c in corners)
        return tuple(sorted(set(points)))


@dataclass(frozen=True)
class Sine(Waveform):
    """SPICE SIN source: ``vo + va*sin(2*pi*freq*(t-td))*exp(-(t-td)*theta)``."""

    offset: float = 0.0
    amplitude: float = 1.0
    frequency: float = 1e3
    delay: float = 0.0
    damping: float = 0.0
    phase_deg: float = 0.0

    def __post_init__(self) -> None:
        if self.frequency <= 0:
            raise DeviceError("sine frequency must be positive")

    def value(self, t: float) -> float:
        phase0 = math.radians(self.phase_deg)
        if t < self.delay:
            return self.offset + self.amplitude * math.sin(phase0)
        tau = t - self.delay
        angle = 2.0 * math.pi * self.frequency * tau + phase0
        return self.offset + self.amplitude * math.sin(angle) * math.exp(-tau * self.damping)

    def derivative(self, t: float) -> float:
        if t < self.delay:
            return 0.0
        phase0 = math.radians(self.phase_deg)
        tau = t - self.delay
        omega = 2.0 * math.pi * self.frequency
        angle = omega * tau + phase0
        decay = math.exp(-tau * self.damping)
        return self.amplitude * decay * (omega * math.cos(angle) - self.damping * math.sin(angle))

    def breakpoints(self) -> tuple[float, ...]:
        return (self.delay,) if self.delay > 0.0 else ()


@dataclass(frozen=True)
class PieceWiseLinear(Waveform):
    """PWL source defined by (time, value) pairs; flat before/after the ends."""

    points: tuple[tuple[float, float], ...] = ()

    def __post_init__(self) -> None:
        if len(self.points) < 1:
            raise DeviceError("PWL source needs at least one point")
        times = [p[0] for p in self.points]
        if any(t2 <= t1 for t1, t2 in zip(times, times[1:])):
            raise DeviceError("PWL times must be strictly increasing")

    def value(self, t: float) -> float:
        pts = self.points
        if t <= pts[0][0]:
            return pts[0][1]
        if t >= pts[-1][0]:
            return pts[-1][1]
        for (t1, v1), (t2, v2) in zip(pts, pts[1:]):
            if t1 <= t <= t2:
                return v1 + (v2 - v1) * (t - t1) / (t2 - t1)
        return pts[-1][1]

    def derivative(self, t: float) -> float:
        pts = self.points
        if t <= pts[0][0] or t >= pts[-1][0]:
            return 0.0
        for (t1, v1), (t2, v2) in zip(pts, pts[1:]):
            if t1 <= t < t2:
                return (v2 - v1) / (t2 - t1)
        return 0.0

    def breakpoints(self) -> tuple[float, ...]:
        return tuple(p[0] for p in self.points)


@dataclass(frozen=True)
class Exponential(Waveform):
    """SPICE EXP source: exponential rise from ``v1`` to ``v2`` and decay back."""

    v1: float = 0.0
    v2: float = 1.0
    rise_delay: float = 0.0
    rise_tau: float = 1e-6
    fall_delay: float = 1e-3
    fall_tau: float = 1e-6

    def __post_init__(self) -> None:
        if self.rise_tau <= 0 or self.fall_tau <= 0:
            raise DeviceError("exponential time constants must be positive")

    def value(self, t: float) -> float:
        v = self.v1
        if t >= self.rise_delay:
            v += (self.v2 - self.v1) * (1.0 - math.exp(-(t - self.rise_delay) / self.rise_tau))
        if t >= self.fall_delay:
            v += (self.v1 - self.v2) * (1.0 - math.exp(-(t - self.fall_delay) / self.fall_tau))
        return v

    def breakpoints(self) -> tuple[float, ...]:
        return (self.rise_delay, self.fall_delay)


@dataclass(frozen=True)
class Step(Waveform):
    """Ideal-ish step from ``v1`` to ``v2`` at ``time`` with a short ramp."""

    v1: float = 0.0
    v2: float = 1.0
    time: float = 0.0
    ramp: float = 1e-9

    def value(self, t: float) -> float:
        if t <= self.time:
            return self.v1
        if t >= self.time + self.ramp:
            return self.v2
        return self.v1 + (self.v2 - self.v1) * (t - self.time) / self.ramp

    def derivative(self, t: float) -> float:
        if self.time < t < self.time + self.ramp:
            return (self.v2 - self.v1) / self.ramp
        return 0.0

    def breakpoints(self) -> tuple[float, ...]:
        return (self.time, self.time + self.ramp)


def ensure_waveform(value) -> Waveform:
    """Coerce ``value`` (number, quantity string or Waveform) into a Waveform."""
    if isinstance(value, Waveform):
        return value
    if isinstance(value, (int, float)):
        return DC(float(value))
    if isinstance(value, str):
        return DC(parse_quantity(value))
    raise DeviceError(f"cannot interpret {value!r} as a source waveform")
