"""Behavioral (equation-defined) devices: the HDL-A model engine.

A :class:`BehavioralDevice` is what an HDL-A entity/architecture pair (or a
Python-coded transducer model) elaborates into.  Its behaviour is a plain
Python callable receiving a :class:`BehaviorContext`; inside it the model

* reads port across variables (``ctx.across("elec")`` -- voltage,
  ``ctx.across("mech")`` -- velocity),
* forms expressions with ordinary arithmetic and the ``ctx.ddt`` /
  ``ctx.integ`` operators (the HDL-A ``ddt``/``integ`` built-ins),
* contributes through variables to its ports with ``ctx.contribute``
  (the HDL-A ``%=`` contribution statement),
* optionally declares implicit equations tied to extra unknowns
  (the HDL-A equation block),
* optionally records named internal quantities for the result files.

The same behaviour callable serves every analysis:

=============  =============================================================
analysis       semantics of the operators
=============  =============================================================
op / dc        ``ddt`` -> 0, ``integ`` -> the state's initial/bias value
transient      discretized by the analysis :class:`~repro.circuit.mna.Integrator`
ac             linearized around the operating point; ``ddt`` multiplies the
               small-signal sensitivity by ``j*omega`` and ``integ`` divides
               by ``j*omega``
=============  =============================================================

Jacobians are exact: the context seeds the port across values and extra
unknowns as dual numbers (:mod:`repro.ad`) and the chain rule does the rest,
so behavioral models converge with true Newton steps -- no finite
differencing, no secant approximations.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable, Hashable, Iterable, Mapping, Sequence

import numpy as np

from ...ad import Dual
from ...errors import DeviceError
from ...natures import Nature, get_nature
from ..mna import ACStampContext, StampContext
from ..netlist import Node
from .base import Device

__all__ = ["Port", "BehaviorContext", "BehavioralDevice"]

_compile_runtime_module = None


def _compile_runtime():
    """The compiled-kernel runtime (:mod:`repro.hdl.compile.runtime`).

    Imported lazily at first stamp: the compile package imports this module
    for :class:`BehaviorContext`, so a top-level import would be circular.
    """
    global _compile_runtime_module
    if _compile_runtime_module is None:
        from ...hdl.compile import runtime
        _compile_runtime_module = runtime
    return _compile_runtime_module


@dataclass(frozen=True)
class Port:
    """A named terminal-pair (pin pair) of a behavioral device."""

    name: str
    p: Node
    n: Node
    nature: Nature

    @staticmethod
    def make(name: str, p: Node, n: Node, nature: str | Nature) -> "Port":
        """Build a port, resolving the nature by name."""
        return Port(name, p, n, get_nature(nature))


class BehaviorContext:
    """Evaluation context handed to a behavioral model's behaviour callable."""

    def __init__(self, device: "BehavioralDevice", mode: str, *,
                 stamp_ctx: StampContext | None = None,
                 ac_ctx: ACStampContext | None = None,
                 dep_positions: Mapping[int, int] | None = None,
                 nvars: int = 0, with_jacobian: bool = True) -> None:
        self._device = device
        self.analysis = mode
        self._stamp_ctx = stamp_ctx
        self._ac_ctx = ac_ctx
        self._dep_positions = dict(dep_positions or {})
        self._nvars = nvars
        #: When False the context seeds plain floats instead of AD duals:
        #: the behaviour evaluates values only (identical to the dual value
        #: parts), which lets residual-only assemblies and record passes
        #: skip every derivative -- including the energy-method Hessians.
        self._with_jacobian = with_jacobian
        self._auto_counter = 0
        self.contributions: dict[str, object] = {}
        self.equations: dict[str, object] = {}
        self.recorded: dict[str, float] = {}

    # ------------------------------------------------------------------ inputs
    @property
    def time(self) -> float:
        """Current analysis time (0 for OP/DC/AC)."""
        if self._stamp_ctx is not None:
            return self._stamp_ctx.time
        return 0.0

    @property
    def omega(self) -> float:
        """Angular frequency of the AC analysis (0 otherwise)."""
        if self._ac_ctx is not None:
            return self._ac_ctx.omega
        return 0.0

    def param(self, name: str, default: float | None = None) -> float:
        """Value of a device generic/parameter."""
        params = self._device.params
        if name in params:
            return params[name]
        if default is not None:
            return default
        raise DeviceError(f"{self._device.name!r}: unknown parameter {name!r}")

    def _seed(self, value: float, index: int):
        if not self._with_jacobian:
            return value
        dtype = complex if self.analysis == "ac" else float
        position = self._dep_positions.get(index)
        if position is None:
            return Dual(value, np.zeros(self._nvars, dtype=dtype))
        return Dual.variable(value, index=position, nvars=self._nvars, dtype=dtype)

    def _node_value(self, node: Node) -> tuple[float, int]:
        if self.analysis == "ac":
            assert self._ac_ctx is not None
            return self._ac_ctx.op_across(node), self._ac_ctx.node_index(node)
        assert self._stamp_ctx is not None
        return self._stamp_ctx.across(node), self._stamp_ctx.node_index(node)

    def across(self, port_name: str):
        """Across variable of a port (voltage, velocity, ...).

        A dual number carrying MNA sensitivities, or a plain float in
        value-only (residual/record) evaluations.
        """
        port = self._device.port(port_name)
        vp, ip = self._node_value(port.p)
        vn, in_ = self._node_value(port.n)
        return self._seed(vp, ip) - self._seed(vn, in_)

    def unknown(self, name: str):
        """Value of one of the device's declared extra unknowns."""
        if name not in self._device.extra_unknowns:
            raise DeviceError(
                f"{self._device.name!r}: {name!r} is not a declared extra unknown")
        if self.analysis == "ac":
            assert self._ac_ctx is not None
            value = self._ac_ctx.op_aux(self._device, name)
            index = self._ac_ctx.aux_index(self._device, name)
        else:
            assert self._stamp_ctx is not None
            value = self._stamp_ctx.aux_value(self._device, name)
            index = self._stamp_ctx.aux_index(self._device, name)
        return self._seed(value, index)

    # ------------------------------------------------------------- dynamics
    def _full_key(self, key: str | None, prefix: str) -> Hashable:
        if key is None:
            self._auto_counter += 1
            key = f"{prefix}{self._auto_counter}"
        return (self._device.name, key)

    def ddt(self, expression, key: str | None = None):
        """Time derivative of ``expression`` (HDL-A ``ddt``)."""
        full_key = self._full_key(key, "ddt")
        if self.analysis == "ac":
            omega = max(self.omega, 1e-30)
            if isinstance(expression, Dual):
                return Dual(0.0, 1j * omega * expression.deriv)
            return 0.0
        assert self._stamp_ctx is not None
        return self._stamp_ctx.ddt(full_key, expression)

    def integ(self, expression, key: str | None = None, initial: float | None = None):
        """Running time integral of ``expression`` (HDL-A ``integ``).

        ``initial`` defaults to the device's declared initial state value for
        ``key`` (or zero).  At DC the integral is held at that initial value;
        the AC small-signal integral divides the sensitivity by ``j*omega``.
        """
        full_key = self._full_key(key, "integ")
        if initial is None:
            initial = self._device.state_initials.get(
                key if key is not None else full_key[1], 0.0)
        if self.analysis == "ac":
            assert self._ac_ctx is not None
            omega = max(self.omega, 1e-30)
            op_value = self._ac_ctx.op_state(full_key, initial)
            if isinstance(expression, Dual):
                return Dual(op_value, expression.deriv / (1j * omega))
            return op_value
        assert self._stamp_ctx is not None
        return self._stamp_ctx.integ(full_key, expression, initial=initial)

    # ---------------------------------------------------------------- outputs
    def contribute(self, port_name: str, expression) -> None:
        """Add a through-variable contribution to a port (HDL-A ``%=``)."""
        port = self._device.port(port_name)
        current = self.contributions.get(port.name, 0.0)
        self.contributions[port.name] = current + expression

    def equation(self, unknown_name: str, expression) -> None:
        """Add an implicit equation residual tied to an extra unknown."""
        if unknown_name not in self._device.extra_unknowns:
            raise DeviceError(
                f"{self._device.name!r}: equation references undeclared unknown "
                f"{unknown_name!r}")
        current = self.equations.get(unknown_name, 0.0)
        self.equations[unknown_name] = current + expression

    def record(self, name: str, expression) -> None:
        """Expose a named internal quantity in the analysis results."""
        value = expression.value if isinstance(expression, Dual) else float(expression)
        self.recorded[name] = float(np.real(value))


class BehavioralDevice(Device):
    """A device whose constitutive equations are given by a Python callable."""

    def __init__(self, name: str, ports: Sequence[Port],
                 behavior: Callable[[BehaviorContext], None],
                 params: Mapping[str, float] | None = None,
                 state_initials: Mapping[str, float] | None = None,
                 extra_unknowns: Sequence[str] = (),
                 parameter_bindings: Mapping[str, tuple[object, str]] | None = None
                 ) -> None:
        super().__init__(name)
        if not ports:
            raise DeviceError(f"behavioral device {name!r} needs at least one port")
        self._ports: dict[str, Port] = {}
        for port in ports:
            if port.name in self._ports:
                raise DeviceError(f"behavioral device {name!r}: duplicate port {port.name!r}")
            self._ports[port.name] = port
        self.behavior = behavior
        self.params = dict(params or {})
        self.state_initials = dict(state_initials or {})
        self.extra_unknowns = tuple(extra_unknowns)
        #: Parameters the behaviour reads from an *owner object's attribute*
        #: instead of (or in addition to) ``self.params`` -- e.g. a
        #: transducer closure capturing its geometry.  ``set_parameter``
        #: writes both places so the sensitivity layer can seed either kind.
        self.parameter_bindings = dict(parameter_bindings or {})
        #: False when the behaviour cannot propagate AD-dual *parameter*
        #: values exactly (e.g. the energy-method transducer path, whose
        #: internal gradient/Hessian machinery seeds its own dual space and
        #: would silently contaminate or drop foreign seeds).  The
        #: sensitivity layer refuses to dual-seed such devices.
        self.dual_parameter_safe = True

    # ------------------------------------------------------ tunable parameters
    def parameter_names(self) -> tuple[str, ...]:
        names = dict.fromkeys(self.params)
        names.update(dict.fromkeys(self.parameter_bindings))
        return tuple(names)

    def get_parameter(self, name: str):
        binding = self.parameter_bindings.get(name)
        if binding is not None:
            owner, attribute = binding
            return getattr(owner, attribute)
        if name in self.params:
            return self.params[name]
        raise DeviceError(
            f"device {self.name!r} has no tunable parameter {name!r} "
            f"(available: {sorted(self.parameter_names()) or 'none'})")

    def set_parameter(self, name: str, value) -> None:
        known = False
        binding = self.parameter_bindings.get(name)
        if binding is not None:
            owner, attribute = binding
            setattr(owner, attribute, value)
            known = True
        if name in self.params:
            self.params[name] = value
            known = True
        if not known:
            raise DeviceError(
                f"device {self.name!r} has no tunable parameter {name!r} "
                f"(available: {sorted(self.parameter_names()) or 'none'})")

    # ------------------------------------------------------------------ topology
    def port(self, name: str) -> Port:
        """Look up a port by name."""
        try:
            return self._ports[name]
        except KeyError:
            raise DeviceError(f"{self.name!r} has no port named {name!r}") from None

    @property
    def ports(self) -> tuple[Port, ...]:
        """All ports in declaration order."""
        return tuple(self._ports.values())

    def nodes(self) -> tuple[Node, ...]:
        seen: list[Node] = []
        for port in self._ports.values():
            for node in (port.p, port.n):
                if node not in seen:
                    seen.append(node)
        return tuple(seen)

    def aux_names(self) -> tuple[str, ...]:
        return self.extra_unknowns

    # ------------------------------------------------------------------ helpers
    def _dependency_indices(self, index_of_node, index_of_aux) -> list[int]:
        indices: list[int] = []
        for port in self._ports.values():
            for node in (port.p, port.n):
                idx = index_of_node(node)
                if idx >= 0 and idx not in indices:
                    indices.append(idx)
        for unknown in self.extra_unknowns:
            idx = index_of_aux(self, unknown)
            if idx not in indices:
                indices.append(idx)
        return indices

    def _run(self, mode: str, stamp_ctx: StampContext | None,
             ac_ctx: ACStampContext | None,
             with_jacobian: bool = True) -> tuple[BehaviorContext, list[int]]:
        if not with_jacobian:
            ctx = BehaviorContext(self, mode, stamp_ctx=stamp_ctx, ac_ctx=ac_ctx,
                                  with_jacobian=False)
            self.behavior(ctx)
            return ctx, []
        if mode == "ac":
            assert ac_ctx is not None
            deps = self._dependency_indices(ac_ctx.node_index, ac_ctx.aux_index)
        else:
            assert stamp_ctx is not None
            deps = self._dependency_indices(stamp_ctx.node_index, stamp_ctx.aux_index)
        positions = {idx: pos for pos, idx in enumerate(deps)}
        ctx = BehaviorContext(self, mode, stamp_ctx=stamp_ctx, ac_ctx=ac_ctx,
                              dep_positions=positions, nvars=len(deps))
        self.behavior(ctx)
        return ctx, deps

    # --------------------------------------------------------------- batching
    @property
    def batch_safe(self) -> bool:
        """Whether one vectorized stamp covers a whole batch of lanes.

        True once the behaviour has compiled to a single guard-free
        operating-point kernel (:mod:`repro.hdl.compile`); reading this
        property triggers that compile attempt.  Guarded or untraceable
        behaviours stay on the per-lane path, where the batched assembler's
        ``lane_context`` still reaches the compiled *scalar* kernels.
        """
        return _compile_runtime().batch_ready(self)

    def batch_safe_for(self, options) -> bool:
        """:attr:`batch_safe` under a specific options object (honors
        ``behavioral_compile=False``)."""
        return _compile_runtime().batch_ready(self, options)

    # ------------------------------------------------------------------ stamping
    def stamp(self, ctx: StampContext) -> None:
        if _compile_runtime().try_stamp(self, ctx):
            return
        mode = "tran" if ctx.is_transient else "op"
        bctx, deps = self._run(mode, ctx, None, with_jacobian=ctx.want_jacobian)
        keep_duals = ctx.keep_residual_duals
        for port_name, value in bctx.contributions.items():
            port = self._ports[port_name]
            ip, in_ = ctx.node_index(port.p), ctx.node_index(port.n)
            if keep_duals:
                # Sensitivity assembly: the context splits value/derivative
                # parts itself (the dual here carries parameter/state seeds,
                # not MNA-unknown seeds).
                ctx.add_through(ip, in_, value)
                continue
            plain = value.value if isinstance(value, Dual) else float(value)
            ctx.add_through(ip, in_, plain)
            if isinstance(value, Dual):
                for pos, idx in enumerate(deps):
                    dval = float(np.real(value.deriv[pos]))
                    if dval != 0.0:
                        ctx.add_through_jac(ip, in_, idx, dval)
        for unknown_name, value in bctx.equations.items():
            row = ctx.aux_index(self, unknown_name)
            if keep_duals:
                ctx.add_res(row, value)
                continue
            plain = value.value if isinstance(value, Dual) else float(value)
            ctx.add_res(row, plain)
            if isinstance(value, Dual):
                for pos, idx in enumerate(deps):
                    dval = float(np.real(value.deriv[pos]))
                    if dval != 0.0:
                        ctx.add_jac(row, idx, dval)
        # Equations must be supplied for every declared extra unknown,
        # otherwise the MNA matrix has an empty row and becomes singular.
        missing = set(self.extra_unknowns) - set(bctx.equations)
        if missing:
            raise DeviceError(
                f"behavioral device {self.name!r} declared unknowns without "
                f"equations: {sorted(missing)}")

    def stamp_ac(self, ctx: ACStampContext) -> None:
        bctx, deps = self._run("ac", None, ctx)
        for port_name, value in bctx.contributions.items():
            port = self._ports[port_name]
            ip, in_ = ctx.node_index(port.p), ctx.node_index(port.n)
            if isinstance(value, Dual):
                for pos, idx in enumerate(deps):
                    dval = complex(value.deriv[pos])
                    if dval != 0.0:
                        ctx.add(ip, idx, dval)
                        ctx.add(in_, idx, -dval)
        for unknown_name, value in bctx.equations.items():
            row = ctx.aux_index(self, unknown_name)
            if isinstance(value, Dual):
                for pos, idx in enumerate(deps):
                    dval = complex(value.deriv[pos])
                    if dval != 0.0:
                        ctx.add(row, idx, dval)

    # ------------------------------------------------------------------ outputs
    def record(self, ctx: StampContext) -> dict[str, float]:
        compiled = _compile_runtime().try_record(self, ctx)
        if compiled is not None:
            return compiled
        mode = "tran" if ctx.is_transient else "op"
        # Records read value parts only; the float-mode evaluation produces
        # exactly those values without paying for any sensitivity.
        bctx, _ = self._run(mode, ctx, None, with_jacobian=False)
        outputs: dict[str, float] = {}
        for port_name, value in bctx.contributions.items():
            plain = value.value if isinstance(value, Dual) else float(value)
            outputs[f"i({self.name}.{port_name})"] = float(plain)
        for name, value in bctx.recorded.items():
            outputs[f"{name}({self.name})"] = value
        return outputs

    def describe(self) -> str:
        ports = ",".join(f"{p.name}:{p.nature.name}" for p in self._ports.values())
        return f"behavioral [{ports}]"
