"""Device base classes and the stamping contract.

Every device implements three methods used by the analyses:

``stamp(ctx)``
    Add the device's contribution to the residual and Jacobian of the real
    (OP / DC-sweep / transient) system at the iterate ``ctx.x``.
``stamp_ac(ctx)``
    Add the device's linearized complex admittance (and AC excitation for
    sources) to the small-signal system at ``ctx.omega``, evaluated around
    the operating point stored in the context.
``record(ctx)``
    Return named output quantities (branch currents, internal states,
    forces) to be stored alongside the node across values in the analysis
    results.  Keys follow the SPICE convention ``i(<name>)`` where sensible.

Devices are immutable after construction; all per-analysis state lives in
the context/integrator so the same circuit object can be analysed many times
and from multiple analyses without interference.
"""

from __future__ import annotations

from abc import ABC, abstractmethod
from typing import Mapping

from ...errors import DeviceError
from ..mna import ACStampContext, StampContext
from ..netlist import Node

__all__ = ["Device", "TwoTerminalDevice"]


class Device(ABC):
    """Abstract netlist device."""

    #: Tunable-parameter protocol: maps public parameter name -> instance
    #: attribute.  Subclasses list the parameters whose residual dependence
    #: they can express through plain arithmetic -- the sensitivity layer
    #: temporarily replaces these attributes with AD duals to obtain the
    #: exact ``d residual / d parameter`` during a seeded assembly.
    _TUNABLE: Mapping[str, str] = {}

    #: Whether :meth:`stamp` broadcasts over a batched lane axis: the device
    #: must tolerate its tunable parameters and every context accessor
    #: returning ``(B,)`` NumPy arrays instead of floats (no ``float()``
    #: casts, no value-dependent branching, no AD duals).  Devices that stay
    #: False are stamped per lane by the batched assembler.
    batch_safe = False

    def __init__(self, name: str) -> None:
        if not name or not isinstance(name, str):
            raise DeviceError(f"device name must be a non-empty string, got {name!r}")
        self.name = name

    # -- tunable parameters ------------------------------------------------------
    def parameter_names(self) -> tuple[str, ...]:
        """Parameters this device exposes to the sensitivity layer."""
        return tuple(self._TUNABLE)

    def get_parameter(self, name: str):
        """Current value of a tunable parameter."""
        attr = self._TUNABLE.get(name)
        if attr is None:
            raise DeviceError(
                f"device {self.name!r} has no tunable parameter {name!r} "
                f"(available: {sorted(self._TUNABLE) or 'none'})")
        return getattr(self, attr)

    def set_parameter(self, name: str, value) -> None:
        """Set a tunable parameter; ``value`` may be an AD dual (seeding)."""
        attr = self._TUNABLE.get(name)
        if attr is None:
            raise DeviceError(
                f"device {self.name!r} has no tunable parameter {name!r} "
                f"(available: {sorted(self._TUNABLE) or 'none'})")
        setattr(self, attr, value)

    # -- topology ----------------------------------------------------------------
    @abstractmethod
    def nodes(self) -> tuple[Node, ...]:
        """The nodes this device connects to (including ground if used)."""

    def aux_names(self) -> tuple[str, ...]:
        """Names of auxiliary unknowns (branch currents, implicit equations)."""
        return ()

    # -- stamping ----------------------------------------------------------------
    @abstractmethod
    def stamp(self, ctx: StampContext) -> None:
        """Stamp residual and Jacobian contributions for OP/DC/transient."""

    @abstractmethod
    def stamp_ac(self, ctx: ACStampContext) -> None:
        """Stamp the small-signal admittance (and AC sources) at ``ctx.omega``."""

    # -- outputs -----------------------------------------------------------------
    def record(self, ctx: StampContext) -> dict[str, float]:
        """Named outputs stored per analysis point (default: none)."""
        return {}

    def describe(self) -> str:
        """Short parameter summary used by :meth:`Circuit.summary`."""
        return ""

    def __repr__(self) -> str:
        pins = ",".join(str(node) for node in self.nodes())
        return f"{type(self).__name__}({self.name!r}, [{pins}])"


class TwoTerminalDevice(Device):
    """Convenience base class for devices with a single (p, n) terminal pair."""

    def __init__(self, name: str, p: Node, n: Node) -> None:
        super().__init__(name)
        if not isinstance(p, Node) or not isinstance(n, Node):
            raise DeviceError(f"device {name!r}: terminals must be Node objects")
        if p is n:
            raise DeviceError(f"device {name!r}: both terminals connect to node {p.name!r}")
        self.p = p
        self.n = n

    def nodes(self) -> tuple[Node, ...]:
        return (self.p, self.n)

    def branch_across(self, ctx: StampContext) -> float:
        """Across difference v(p) - v(n) at the current iterate."""
        return ctx.across(self.p) - ctx.across(self.n)
