"""Voltage-controlled switch with a smooth resistance transition.

Behavioral MEMS models frequently need contact events (pull-in, end stops).
An ideal discontinuous switch is poison for a Newton solver, so this element
interpolates the conductance log-linearly over a small transition band of the
control voltage -- the same technique SPICE3's ``.model SW`` uses.
"""

from __future__ import annotations

import math

from ...errors import DeviceError
from ..mna import ACStampContext, StampContext
from ..netlist import Node
from .base import Device

__all__ = ["VoltageControlledSwitch"]


class VoltageControlledSwitch(Device):
    """Switch between ``p`` and ``n`` controlled by ``v(cp) - v(cn)``.

    The conductance moves smoothly (cubic smoothstep in log-conductance) from
    ``1/r_off`` to ``1/r_on`` as the control voltage crosses
    ``threshold +/- hysteresis``.
    """

    def __init__(self, name: str, p: Node, n: Node, cp: Node, cn: Node,
                 threshold: float = 0.0, hysteresis: float = 1e-3,
                 r_on: float = 1.0, r_off: float = 1e9) -> None:
        super().__init__(name)
        if r_on <= 0.0 or r_off <= 0.0:
            raise DeviceError(f"switch {name!r}: on/off resistances must be positive")
        if r_off <= r_on:
            raise DeviceError(f"switch {name!r}: r_off must exceed r_on")
        if hysteresis <= 0.0:
            raise DeviceError(f"switch {name!r}: hysteresis (transition width) must be positive")
        self.p, self.n, self.cp, self.cn = p, n, cp, cn
        self.threshold = float(threshold)
        self.hysteresis = float(hysteresis)
        self.r_on = float(r_on)
        self.r_off = float(r_off)

    def nodes(self) -> tuple[Node, ...]:
        return (self.p, self.n, self.cp, self.cn)

    def _conductance(self, control: float) -> tuple[float, float]:
        """Conductance and its derivative with respect to the control voltage."""
        g_on = 1.0 / self.r_on
        g_off = 1.0 / self.r_off
        lo = self.threshold - self.hysteresis
        hi = self.threshold + self.hysteresis
        if control <= lo:
            return g_off, 0.0
        if control >= hi:
            return g_on, 0.0
        s = (control - lo) / (hi - lo)
        smooth = s * s * (3.0 - 2.0 * s)
        dsmooth = 6.0 * s * (1.0 - s) / (hi - lo)
        log_g = math.log(g_off) + smooth * (math.log(g_on) - math.log(g_off))
        g = math.exp(log_g)
        dg = g * dsmooth * (math.log(g_on) - math.log(g_off))
        return g, dg

    def stamp(self, ctx: StampContext) -> None:
        ip, in_ = ctx.node_index(self.p), ctx.node_index(self.n)
        icp, icn = ctx.node_index(self.cp), ctx.node_index(self.cn)
        control = ctx.across(self.cp) - ctx.across(self.cn)
        v = ctx.across(self.p) - ctx.across(self.n)
        g, dg = self._conductance(control)
        current = g * v
        ctx.add_through(ip, in_, current)
        ctx.add_through_jac(ip, in_, ip, g)
        ctx.add_through_jac(ip, in_, in_, -g)
        ctx.add_through_jac(ip, in_, icp, dg * v)
        ctx.add_through_jac(ip, in_, icn, -dg * v)

    def stamp_ac(self, ctx: ACStampContext) -> None:
        control = ctx.op_across(self.cp) - ctx.op_across(self.cn)
        g, _ = self._conductance(control)
        ip, in_ = ctx.node_index(self.p), ctx.node_index(self.n)
        ctx.add(ip, ip, g)
        ctx.add(ip, in_, -g)
        ctx.add(in_, ip, -g)
        ctx.add(in_, in_, g)

    def record(self, ctx: StampContext) -> dict[str, float]:
        control = ctx.across(self.cp) - ctx.across(self.cn)
        g, _ = self._conductance(control)
        return {
            f"i({self.name})": g * (ctx.across(self.p) - ctx.across(self.n)),
            f"state({self.name})": 1.0 if control >= self.threshold else 0.0,
        }

    def describe(self) -> str:
        return f"vth={self.threshold:g} ron={self.r_on:g} roff={self.r_off:g}"
