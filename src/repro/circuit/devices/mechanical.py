"""Mechanical one-port elements in the force-current analogy.

In the FI analogy used throughout the paper (mechanical and electrical nets
share the same topology):

* the across variable of a mechanical node is its **velocity** [m/s],
* the through variable of a branch is the **force** [N] transmitted by it,
* a point **mass** behaves like a capacitor to the inertial frame
  (``f = m * dv/dt``),
* a **spring** behaves like an inductor (``v_rel = (1/k) * df/dt``),
* a viscous **damper** behaves like a resistor (``f = alpha * v_rel``),
* an ideal **force source** is a current source, an ideal **velocity source**
  a voltage source.

The classes below subclass the corresponding electrical primitives so the
stamps (and their extensive tests) are shared, while exposing the mechanical
parameter names and natural recorded outputs (force, displacement).
Displacement is obtained by integrating the node velocity with the analysis
integrator, so ``x(<name>)`` appears in transient results without any
numerical post-processing by the user.
"""

from __future__ import annotations

from ...errors import DeviceError
from ..mna import ACStampContext, StampContext
from ..netlist import Node
from ..waveforms import Waveform
from .passive import Capacitor, Inductor, Resistor
from .sources import CurrentSource, VoltageSource

__all__ = ["Mass", "Spring", "Damper", "ForceSource", "VelocitySource"]


class Mass(Capacitor):
    """Point mass between a mechanical node and the inertial reference frame.

    ``force = mass * d(velocity)/dt``; identical stamp to a capacitor of value
    ``mass`` connected to ground.
    """

    _TUNABLE = {"mass": "mass"}

    def __init__(self, name: str, node: Node, reference: Node, mass: float) -> None:
        if mass <= 0.0:
            raise DeviceError(f"mass {name!r}: mass must be positive")
        if not reference.is_ground:
            raise DeviceError(
                f"mass {name!r}: a point mass must reference the inertial frame (ground)")
        super().__init__(name, node, reference, mass)
        self.mass = float(mass)

    def set_parameter(self, name: str, value) -> None:
        super().set_parameter(name, value)
        self.capacitance = value  # the FI-analogy stamp reads the capacitance

    def record(self, ctx: StampContext) -> dict[str, float]:
        velocity = self.branch_across(ctx)
        displacement = ctx.integ((self.name, "x"), velocity)
        return {
            f"v({self.name})": velocity,
            f"x({self.name})": float(getattr(displacement, "value", displacement)),
            f"f({self.name})": self.mass * float(ctx.ddt((self.name, "v_rec"), velocity)),
        }

    def describe(self) -> str:
        return f"m={self.mass:g}"


class Spring(Inductor):
    """Linear spring of stiffness ``k`` [N/m] between two mechanical nodes.

    The transmitted force is the auxiliary branch unknown; the branch
    equation is ``v(p) - v(n) = (1/k) * d(force)/dt`` which is the FI-analogy
    inductor with ``L = 1/k``.
    """

    _TUNABLE = {"stiffness": "stiffness"}

    def __init__(self, name: str, p: Node, n: Node, stiffness: float) -> None:
        if stiffness <= 0.0:
            raise DeviceError(f"spring {name!r}: stiffness must be positive")
        super().__init__(name, p, n, 1.0 / stiffness)
        self.stiffness = float(stiffness)

    def set_parameter(self, name: str, value) -> None:
        super().set_parameter(name, value)
        self.inductance = 1.0 / value  # the FI-analogy stamp reads L = 1/k

    def record(self, ctx: StampContext) -> dict[str, float]:
        force = ctx.aux_value(self, "i")
        return {
            f"f({self.name})": force,
            f"x({self.name})": force / self.stiffness,
        }

    def describe(self) -> str:
        return f"k={self.stiffness:g}"


class Damper(Resistor):
    """Viscous damper ``f = alpha * (v(p) - v(n))`` (FI analogy: R = 1/alpha)."""

    _TUNABLE = {"damping": "damping"}

    def __init__(self, name: str, p: Node, n: Node, damping: float) -> None:
        if damping <= 0.0:
            raise DeviceError(f"damper {name!r}: damping coefficient must be positive")
        super().__init__(name, p, n, 1.0 / damping)
        self.damping = float(damping)

    def set_parameter(self, name: str, value) -> None:
        super().set_parameter(name, value)
        self.resistance = 1.0 / value  # the FI-analogy stamp reads R = 1/alpha

    def record(self, ctx: StampContext) -> dict[str, float]:
        return {f"f({self.name})": self.damping * self.branch_across(ctx)}

    def describe(self) -> str:
        return f"alpha={self.damping:g}"


class ForceSource(CurrentSource):
    """Ideal force source applying a force ``+F`` to node ``p`` (reacting on ``n``).

    The sign convention is the mechanically intuitive one: a positive source
    value pushes node ``p`` in the positive direction.  In the underlying
    FI-analogy stamp this is a current source injecting into ``p``, i.e. the
    electrical source with its terminals swapped.
    """

    def __init__(self, name: str, p: Node, n: Node, waveform: Waveform | float = 0.0,
                 ac: float = 0.0, ac_phase_deg: float = 0.0) -> None:
        # Swap the terminals handed to the CurrentSource stamp so that a
        # positive force is injected INTO node p.
        super().__init__(name, n, p, waveform, ac=ac, ac_phase_deg=ac_phase_deg)
        self.applied_node = p
        self.reaction_node = n

    def record(self, ctx: StampContext) -> dict[str, float]:
        return {f"f({self.name})": self.waveform.value(ctx.time) * ctx.source_scale}

    def describe(self) -> str:
        return f"F={self.waveform.value(0.0):g}"


class VelocitySource(VoltageSource):
    """Ideal velocity source imposing ``v(p) - v(n)``; reaction force recorded."""

    def __init__(self, name: str, p: Node, n: Node, waveform: Waveform | float = 0.0) -> None:
        super().__init__(name, p, n, waveform)

    def record(self, ctx: StampContext) -> dict[str, float]:
        return {f"f({self.name})": ctx.aux_value(self, "i")}

    def describe(self) -> str:
        return f"U={self.waveform.value(0.0):g}"
