"""Linear passive devices: resistor, capacitor, inductor.

These are the workhorses of both the electrical part of the netlists and,
through the force-current analogy, of the mechanical resonator (the
mechanical elements in :mod:`repro.circuit.devices.mechanical` are thin
subclasses).  Stamps follow the residual/Jacobian convention documented in
:mod:`repro.circuit.mna`.
"""

from __future__ import annotations

from ...errors import DeviceError
from ..mna import ACStampContext, StampContext
from ..netlist import Node
from .base import TwoTerminalDevice

__all__ = ["Resistor", "Capacitor", "Inductor"]


class Resistor(TwoTerminalDevice):
    """Linear resistor ``i = (v(p) - v(n)) / R``."""

    _TUNABLE = {"resistance": "resistance"}
    batch_safe = True

    def __init__(self, name: str, p: Node, n: Node, resistance: float) -> None:
        super().__init__(name, p, n)
        if resistance <= 0.0:
            raise DeviceError(f"resistor {name!r}: resistance must be positive")
        self.resistance = float(resistance)

    @property
    def conductance(self) -> float:
        """Conductance 1/R."""
        return 1.0 / self.resistance

    def stamp(self, ctx: StampContext) -> None:
        g = self.conductance
        ip = ctx.node_index(self.p)
        in_ = ctx.node_index(self.n)
        current = g * self.branch_across(ctx)
        ctx.add_through(ip, in_, current)
        ctx.add_through_jac(ip, in_, ip, g)
        ctx.add_through_jac(ip, in_, in_, -g)

    def stamp_ac(self, ctx: ACStampContext) -> None:
        g = self.conductance
        ip = ctx.node_index(self.p)
        in_ = ctx.node_index(self.n)
        ctx.add(ip, ip, g)
        ctx.add(ip, in_, -g)
        ctx.add(in_, ip, -g)
        ctx.add(in_, in_, g)

    def record(self, ctx: StampContext) -> dict[str, float]:
        return {f"i({self.name})": self.conductance * self.branch_across(ctx)}

    def describe(self) -> str:
        return f"R={self.resistance:g}"


class Capacitor(TwoTerminalDevice):
    """Linear capacitor ``i = C * d(v(p) - v(n))/dt``.

    At DC the capacitor is an open circuit.  ``ic`` optionally records an
    initial voltage used when a transient analysis is started with
    ``use_ic=True`` (skip-OP start).
    """

    _TUNABLE = {"capacitance": "capacitance"}
    batch_safe = True

    def __init__(self, name: str, p: Node, n: Node, capacitance: float,
                 ic: float | None = None) -> None:
        super().__init__(name, p, n)
        if capacitance <= 0.0:
            raise DeviceError(f"capacitor {name!r}: capacitance must be positive")
        self.capacitance = float(capacitance)
        self.ic = None if ic is None else float(ic)

    def _state_key(self):
        return (self.name, "v")

    def stamp(self, ctx: StampContext) -> None:
        ip = ctx.node_index(self.p)
        in_ = ctx.node_index(self.n)
        v = self.branch_across(ctx)
        dvdt = ctx.ddt(self._state_key(), v)
        current = self.capacitance * dvdt
        c0 = ctx.ddt_coefficient()
        ctx.add_through(ip, in_, current)
        geq = self.capacitance * c0
        ctx.add_through_jac(ip, in_, ip, geq)
        ctx.add_through_jac(ip, in_, in_, -geq)

    def stamp_ac(self, ctx: ACStampContext) -> None:
        y = 1j * ctx.omega * self.capacitance
        ip = ctx.node_index(self.p)
        in_ = ctx.node_index(self.n)
        ctx.add(ip, ip, y)
        ctx.add(ip, in_, -y)
        ctx.add(in_, ip, -y)
        ctx.add(in_, in_, y)

    def record(self, ctx: StampContext) -> dict[str, float]:
        v = self.branch_across(ctx)
        return {
            f"v({self.name})": v,
            f"q({self.name})": self.capacitance * v,
        }

    def describe(self) -> str:
        return f"C={self.capacitance:g}"


class Inductor(TwoTerminalDevice):
    """Linear inductor with its branch current as an auxiliary unknown.

    Branch equation: ``v(p) - v(n) - L * di/dt = 0``; the branch current is
    positive flowing from ``p`` through the inductor to ``n``.  At DC the
    inductor is a short circuit.
    """

    _TUNABLE = {"inductance": "inductance"}
    batch_safe = True

    def __init__(self, name: str, p: Node, n: Node, inductance: float,
                 ic: float | None = None) -> None:
        super().__init__(name, p, n)
        if inductance <= 0.0:
            raise DeviceError(f"inductor {name!r}: inductance must be positive")
        self.inductance = float(inductance)
        self.ic = None if ic is None else float(ic)

    def aux_names(self) -> tuple[str, ...]:
        return ("i",)

    def _state_key(self):
        return (self.name, "i")

    def stamp(self, ctx: StampContext) -> None:
        ip = ctx.node_index(self.p)
        in_ = ctx.node_index(self.n)
        ib_index = ctx.aux_index(self, "i")
        current = ctx.unknown_value(ib_index)
        # KCL: branch current leaves p, enters n.
        ctx.add_through(ip, in_, current)
        ctx.add_through_jac(ip, in_, ib_index, 1.0)
        # Branch equation v(p) - v(n) - L di/dt = 0.
        didt = ctx.ddt(self._state_key(), current)
        c0 = ctx.ddt_coefficient()
        residual = self.branch_across(ctx) - self.inductance * didt
        ctx.add_res(ib_index, residual)
        ctx.add_jac(ib_index, ip, 1.0)
        ctx.add_jac(ib_index, in_, -1.0)
        ctx.add_jac(ib_index, ib_index, -self.inductance * c0)

    def stamp_ac(self, ctx: ACStampContext) -> None:
        ip = ctx.node_index(self.p)
        in_ = ctx.node_index(self.n)
        ib_index = ctx.aux_index(self, "i")
        ctx.add(ip, ib_index, 1.0)
        ctx.add(in_, ib_index, -1.0)
        ctx.add(ib_index, ip, 1.0)
        ctx.add(ib_index, in_, -1.0)
        ctx.add(ib_index, ib_index, -1j * ctx.omega * self.inductance)

    def record(self, ctx: StampContext) -> dict[str, float]:
        current = ctx.aux_value(self, "i")
        return {
            f"i({self.name})": current,
            f"flux({self.name})": self.inductance * current,
        }

    def describe(self) -> str:
        return f"L={self.inductance:g}"
