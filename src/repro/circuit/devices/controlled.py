"""Linear controlled sources (VCCS, VCVS, CCCS, CCVS).

The linearized equivalent-circuit transducer of the paper couples the
electrical and mechanical sides with a transduction factor ``Gamma``:
a current ``Gamma * v_elec`` is injected into the mechanical net and a
current ``Gamma * v_mech`` (velocity) back into the electrical net -- i.e. a
pair of VCCS elements.  The current-controlled variants sense the branch
current of a named voltage source (or any device with an ``"i"`` auxiliary
unknown), as in SPICE.
"""

from __future__ import annotations

from ...errors import DeviceError
from ..mna import ACStampContext, StampContext
from ..netlist import Node
from .base import Device, TwoTerminalDevice

__all__ = ["VCCS", "VCVS", "CCCS", "CCVS"]


class VCCS(Device):
    """Voltage-controlled current source: ``i(p->n) = gm * (v(cp) - v(cn))``."""

    def __init__(self, name: str, p: Node, n: Node, cp: Node, cn: Node,
                 transconductance: float) -> None:
        super().__init__(name)
        self.p, self.n, self.cp, self.cn = p, n, cp, cn
        self.transconductance = float(transconductance)

    def nodes(self) -> tuple[Node, ...]:
        return (self.p, self.n, self.cp, self.cn)

    def stamp(self, ctx: StampContext) -> None:
        gm = self.transconductance
        ip, in_ = ctx.node_index(self.p), ctx.node_index(self.n)
        icp, icn = ctx.node_index(self.cp), ctx.node_index(self.cn)
        control = ctx.across(self.cp) - ctx.across(self.cn)
        ctx.add_through(ip, in_, gm * control)
        ctx.add_through_jac(ip, in_, icp, gm)
        ctx.add_through_jac(ip, in_, icn, -gm)

    def stamp_ac(self, ctx: ACStampContext) -> None:
        gm = self.transconductance
        ip, in_ = ctx.node_index(self.p), ctx.node_index(self.n)
        icp, icn = ctx.node_index(self.cp), ctx.node_index(self.cn)
        ctx.add(ip, icp, gm)
        ctx.add(ip, icn, -gm)
        ctx.add(in_, icp, -gm)
        ctx.add(in_, icn, gm)

    def record(self, ctx: StampContext) -> dict[str, float]:
        control = ctx.across(self.cp) - ctx.across(self.cn)
        return {f"i({self.name})": self.transconductance * control}

    def describe(self) -> str:
        return f"gm={self.transconductance:g}"


class VCVS(Device):
    """Voltage-controlled voltage source: ``v(p)-v(n) = mu * (v(cp)-v(cn))``."""

    def __init__(self, name: str, p: Node, n: Node, cp: Node, cn: Node, gain: float) -> None:
        super().__init__(name)
        self.p, self.n, self.cp, self.cn = p, n, cp, cn
        self.gain = float(gain)

    def nodes(self) -> tuple[Node, ...]:
        return (self.p, self.n, self.cp, self.cn)

    def aux_names(self) -> tuple[str, ...]:
        return ("i",)

    def stamp(self, ctx: StampContext) -> None:
        ip, in_ = ctx.node_index(self.p), ctx.node_index(self.n)
        icp, icn = ctx.node_index(self.cp), ctx.node_index(self.cn)
        ib = ctx.aux_index(self, "i")
        current = ctx.unknown_value(ib)
        ctx.add_through(ip, in_, current)
        ctx.add_through_jac(ip, in_, ib, 1.0)
        control = ctx.across(self.cp) - ctx.across(self.cn)
        ctx.add_res(ib, ctx.across(self.p) - ctx.across(self.n) - self.gain * control)
        ctx.add_jac(ib, ip, 1.0)
        ctx.add_jac(ib, in_, -1.0)
        ctx.add_jac(ib, icp, -self.gain)
        ctx.add_jac(ib, icn, self.gain)

    def stamp_ac(self, ctx: ACStampContext) -> None:
        ip, in_ = ctx.node_index(self.p), ctx.node_index(self.n)
        icp, icn = ctx.node_index(self.cp), ctx.node_index(self.cn)
        ib = ctx.aux_index(self, "i")
        ctx.add(ip, ib, 1.0)
        ctx.add(in_, ib, -1.0)
        ctx.add(ib, ip, 1.0)
        ctx.add(ib, in_, -1.0)
        ctx.add(ib, icp, -self.gain)
        ctx.add(ib, icn, self.gain)

    def record(self, ctx: StampContext) -> dict[str, float]:
        return {f"i({self.name})": ctx.aux_value(self, "i")}

    def describe(self) -> str:
        return f"gain={self.gain:g}"


class _CurrentControlled(TwoTerminalDevice):
    """Shared plumbing for CCCS/CCVS: sensing another device's branch current."""

    def __init__(self, name: str, p: Node, n: Node, controlling_source: str, factor: float) -> None:
        super().__init__(name, p, n)
        if not controlling_source:
            raise DeviceError(f"{name!r}: a controlling source name is required")
        self.controlling_source = controlling_source
        self.factor = float(factor)

    def _control_index(self, ctx) -> int:
        return ctx.aux_index(self.controlling_source, "i")


class CCCS(_CurrentControlled):
    """Current-controlled current source: ``i(p->n) = beta * i(control)``."""

    def stamp(self, ctx: StampContext) -> None:
        ip, in_ = ctx.node_index(self.p), ctx.node_index(self.n)
        ic = self._control_index(ctx)
        control = ctx.unknown_value(ic)
        ctx.add_through(ip, in_, self.factor * control)
        ctx.add_through_jac(ip, in_, ic, self.factor)

    def stamp_ac(self, ctx: ACStampContext) -> None:
        ip, in_ = ctx.node_index(self.p), ctx.node_index(self.n)
        ic = self._control_index(ctx)
        ctx.add(ip, ic, self.factor)
        ctx.add(in_, ic, -self.factor)

    def record(self, ctx: StampContext) -> dict[str, float]:
        return {f"i({self.name})": self.factor * ctx.unknown_value(self._control_index(ctx))}

    def describe(self) -> str:
        return f"beta={self.factor:g} ctrl={self.controlling_source}"


class CCVS(_CurrentControlled):
    """Current-controlled voltage source: ``v(p)-v(n) = r * i(control)``."""

    def aux_names(self) -> tuple[str, ...]:
        return ("i",)

    def stamp(self, ctx: StampContext) -> None:
        ip, in_ = ctx.node_index(self.p), ctx.node_index(self.n)
        ib = ctx.aux_index(self, "i")
        ic = self._control_index(ctx)
        current = ctx.unknown_value(ib)
        ctx.add_through(ip, in_, current)
        ctx.add_through_jac(ip, in_, ib, 1.0)
        control = ctx.unknown_value(ic)
        ctx.add_res(ib, ctx.across(self.p) - ctx.across(self.n) - self.factor * control)
        ctx.add_jac(ib, ip, 1.0)
        ctx.add_jac(ib, in_, -1.0)
        ctx.add_jac(ib, ic, -self.factor)

    def stamp_ac(self, ctx: ACStampContext) -> None:
        ip, in_ = ctx.node_index(self.p), ctx.node_index(self.n)
        ib = ctx.aux_index(self, "i")
        ic = self._control_index(ctx)
        ctx.add(ip, ib, 1.0)
        ctx.add(in_, ib, -1.0)
        ctx.add(ib, ip, 1.0)
        ctx.add(ib, in_, -1.0)
        ctx.add(ib, ic, -self.factor)

    def record(self, ctx: StampContext) -> dict[str, float]:
        return {f"i({self.name})": ctx.aux_value(self, "i")}

    def describe(self) -> str:
        return f"r={self.factor:g} ctrl={self.controlling_source}"
