"""Device library for the MNA circuit solver.

The primitives cover what the paper's netlists need: linear passives and
sources for the equivalent-circuit models, controlled sources for the
linearized transducer (transduction factor Gamma), mechanical one-ports in
the force-current analogy for the resonator of figure 3, and the behavioral
device engine that HDL-A models and the energy-method transducers elaborate
into.
"""

from .base import Device, TwoTerminalDevice
from .passive import Resistor, Capacitor, Inductor
from .sources import VoltageSource, CurrentSource
from .controlled import VCCS, VCVS, CCCS, CCVS
from .nonlinear import Diode
from .mechanical import Mass, Spring, Damper, ForceSource, VelocitySource
from .switches import VoltageControlledSwitch
from .behavioral import BehavioralDevice, BehaviorContext, Port
from .rom import ROMDevice

__all__ = [
    "Device",
    "TwoTerminalDevice",
    "Resistor",
    "Capacitor",
    "Inductor",
    "VoltageSource",
    "CurrentSource",
    "VCCS",
    "VCVS",
    "CCCS",
    "CCVS",
    "Diode",
    "Mass",
    "Spring",
    "Damper",
    "ForceSource",
    "VelocitySource",
    "VoltageControlledSwitch",
    "BehavioralDevice",
    "BehaviorContext",
    "Port",
    "ROMDevice",
]
