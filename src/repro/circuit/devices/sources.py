"""Independent voltage and current sources.

Sources carry a :class:`~repro.circuit.waveforms.Waveform` for the
large-signal (DC/transient) value plus an optional AC magnitude/phase used
only by the AC small-signal analysis (the classic SPICE separation).

The ``source_scale`` factor of the stamping context implements source
stepping: when the operating-point Newton iteration fails to converge the
solver ramps every independent source from 0 to its nominal value in steps,
a standard homotopy that the strongly nonlinear electrostatic-transducer
bias points occasionally need.
"""

from __future__ import annotations

import math

from ...errors import DeviceError
from ..mna import ACStampContext, StampContext
from ..netlist import Node
from ..waveforms import DC, Waveform, ensure_waveform
from .base import TwoTerminalDevice

__all__ = ["VoltageSource", "CurrentSource"]


class _DCLevelParameter:
    """Shared ``"dc"`` tunable-parameter implementation for sources.

    Only meaningful while the source carries a :class:`DC` waveform -- the
    level then becomes a design/sensitivity parameter (e.g. the bias voltage
    of an electrostatic transducer).  Time-shaped waveforms expose no
    tunable parameters.
    """

    def parameter_names(self) -> tuple[str, ...]:
        return ("dc",) if isinstance(self.waveform, DC) else ()

    def get_parameter(self, name: str):
        if name != "dc" or not isinstance(self.waveform, DC):
            raise DeviceError(
                f"source {self.name!r} has no tunable parameter {name!r} "
                f"(only DC-waveform sources expose 'dc')")
        return self.waveform.level

    def set_parameter(self, name: str, value) -> None:
        if name != "dc" or not isinstance(self.waveform, DC):
            raise DeviceError(
                f"source {self.name!r} has no tunable parameter {name!r} "
                f"(only DC-waveform sources expose 'dc')")
        # DC is a frozen dataclass with no coercion, so an AD dual survives
        # and flows through ``waveform.value(t)`` into the stamp.
        self.waveform = DC(value)


class VoltageSource(_DCLevelParameter, TwoTerminalDevice):
    """Ideal independent voltage source; branch current is an aux unknown.

    The branch current is positive when flowing from ``p`` through the source
    to ``n`` (SPICE convention: a positive current means the source is
    absorbing power).
    """

    batch_safe = True

    def __init__(self, name: str, p: Node, n: Node, waveform: Waveform | float = 0.0,
                 ac: float = 0.0, ac_phase_deg: float = 0.0) -> None:
        super().__init__(name, p, n)
        self.waveform = ensure_waveform(waveform)
        self.ac = float(ac)
        self.ac_phase_deg = float(ac_phase_deg)

    def aux_names(self) -> tuple[str, ...]:
        return ("i",)

    def value_at(self, t: float) -> float:
        """Large-signal source value at time ``t``."""
        return self.waveform.value(t)

    def stamp(self, ctx: StampContext) -> None:
        ip = ctx.node_index(self.p)
        in_ = ctx.node_index(self.n)
        ib = ctx.aux_index(self, "i")
        current = ctx.unknown_value(ib)
        ctx.add_through(ip, in_, current)
        ctx.add_through_jac(ip, in_, ib, 1.0)
        target = self.waveform.value(ctx.time) * ctx.source_scale
        ctx.add_res(ib, ctx.across(self.p) - ctx.across(self.n) - target)
        ctx.add_jac(ib, ip, 1.0)
        ctx.add_jac(ib, in_, -1.0)

    def stamp_ac(self, ctx: ACStampContext) -> None:
        ip = ctx.node_index(self.p)
        in_ = ctx.node_index(self.n)
        ib = ctx.aux_index(self, "i")
        ctx.add(ip, ib, 1.0)
        ctx.add(in_, ib, -1.0)
        ctx.add(ib, ip, 1.0)
        ctx.add(ib, in_, -1.0)
        if self.ac != 0.0:
            phase = math.radians(self.ac_phase_deg)
            ctx.add_rhs(ib, self.ac * complex(math.cos(phase), math.sin(phase)))

    def record(self, ctx: StampContext) -> dict[str, float]:
        current = ctx.aux_value(self, "i")
        return {
            f"i({self.name})": current,
            f"p({self.name})": current * self.branch_across(ctx),
        }

    def describe(self) -> str:
        return f"V={self.waveform.value(0.0):g} ({type(self.waveform).__name__})"


class CurrentSource(_DCLevelParameter, TwoTerminalDevice):
    """Ideal independent current source; current flows from ``p`` to ``n``."""

    batch_safe = True

    def __init__(self, name: str, p: Node, n: Node, waveform: Waveform | float = 0.0,
                 ac: float = 0.0, ac_phase_deg: float = 0.0) -> None:
        super().__init__(name, p, n)
        self.waveform = ensure_waveform(waveform)
        self.ac = float(ac)
        self.ac_phase_deg = float(ac_phase_deg)

    def value_at(self, t: float) -> float:
        """Large-signal source value at time ``t``."""
        return self.waveform.value(t)

    def stamp(self, ctx: StampContext) -> None:
        ip = ctx.node_index(self.p)
        in_ = ctx.node_index(self.n)
        current = self.waveform.value(ctx.time) * ctx.source_scale
        ctx.add_through(ip, in_, current)

    def stamp_ac(self, ctx: ACStampContext) -> None:
        if self.ac == 0.0:
            return
        ip = ctx.node_index(self.p)
        in_ = ctx.node_index(self.n)
        phase = math.radians(self.ac_phase_deg)
        phasor = self.ac * complex(math.cos(phase), math.sin(phase))
        # The source injects current into node n and removes it from node p
        # (flow from p to n through the source), hence the right-hand side
        # signs below (rhs = -residual contribution).
        ctx.add_rhs(ip, -phasor)
        ctx.add_rhs(in_, phasor)

    def record(self, ctx: StampContext) -> dict[str, float]:
        return {f"i({self.name})": self.waveform.value(ctx.time) * ctx.source_scale}

    def describe(self) -> str:
        return f"I={self.waveform.value(0.0):g} ({type(self.waveform).__name__})"
