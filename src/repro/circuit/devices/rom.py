"""Reduced-order-model (ROM) circuit device.

:class:`ROMDevice` embeds a :class:`~repro.rom.statespace.ReducedModel` --
the projected second-order system ``Mr q'' + Cr q' + Kr q = B f`` -- as a
multi-terminal device of the MNA solver, so a distilled FE structure can sit
in a netlist next to transducers, sources and lumped elements and be swept
through op/ac/tran analyses like any other device.

Each ROM input column becomes one mechanical port in the force-current
analogy: the port through variable is the force ``f_j`` the circuit applies
to the structure's drive DOF and the port across variable is that DOF's
velocity.  The device declares the reduced displacements ``q_i``, the
reduced velocities ``s_i`` and the port forces ``f_j`` as auxiliary MNA
unknowns with the implicit equations

* ``d(q_i)/dt - s_i = 0``                       (definition of velocity),
* ``sum_k Mr[i,k] d(s_k)/dt + Cr[i,:] s + Kr[i,:] q - B[i,:] f = 0``,
* ``sum_i B[i,j] s_i - across(port_j) = 0``     (port velocity consistency),

built on the :class:`~repro.circuit.devices.behavioral.BehavioralDevice`
engine, which supplies exact dual-number Jacobians and the op/ac/tran
operator semantics (``ddt -> 0`` at DC, ``j*omega`` in AC, discretized by the
transient integrator) without any ROM-specific solver code.
"""

from __future__ import annotations

from typing import TYPE_CHECKING, Sequence

import numpy as np

from ...errors import DeviceError
from ...natures import MECHANICAL_TRANSLATION, get_nature
from ..netlist import Node
from .behavioral import BehavioralDevice, BehaviorContext, Port

if TYPE_CHECKING:  # pragma: no cover - import cycle guard (repro.rom -> here)
    from ...rom.statespace import ReducedModel

__all__ = ["ROMDevice"]


class ROMDevice(BehavioralDevice):
    """A reduced-order macromodel as a multi-terminal circuit device.

    Parameters
    ----------
    name:
        Device name.
    rom:
        The :class:`~repro.rom.statespace.ReducedModel` to embed.  One port
        per input column is required.
    ports:
        Sequence of ``(p, n)`` node pairs, one per ROM input, in input-column
        order.
    nature:
        Port nature (default: translational mechanical, i.e. velocity across
        and force through).
    """

    def __init__(self, name: str, rom: "ReducedModel",
                 ports: Sequence[tuple[Node, Node]],
                 nature=MECHANICAL_TRANSLATION) -> None:
        reduced_m = np.asarray(rom.M, dtype=float)
        reduced_c = np.asarray(rom.C, dtype=float)
        reduced_k = np.asarray(rom.K, dtype=float)
        input_map = np.asarray(rom.B, dtype=float)
        output_map = np.asarray(rom.L, dtype=float)
        order = reduced_m.shape[0]
        if len(ports) != input_map.shape[1]:
            raise DeviceError(
                f"ROM device {name!r}: the model has {input_map.shape[1]} "
                f"input(s) but {len(ports)} port(s) were given")
        resolved_nature = get_nature(nature)
        port_objects = [
            Port(f"p{j}", p, n, resolved_nature)
            for j, (p, n) in enumerate(ports)
        ]
        state_names = tuple(f"q{i}" for i in range(order)) \
            + tuple(f"s{i}" for i in range(order)) \
            + tuple(f"f{j}" for j in range(len(ports)))
        self.rom = rom
        self._order = order
        self._num_ports = len(ports)
        self._matrices = (reduced_m, reduced_c, reduced_k, input_map, output_map)

        super().__init__(name, port_objects, self._behavior,
                         params={}, extra_unknowns=state_names)

    # -------------------------------------------------------------- behaviour
    def _behavior(self, ctx: BehaviorContext) -> None:
        reduced_m, reduced_c, reduced_k, input_map, output_map = self._matrices
        order, num_ports = self._order, self._num_ports
        q = [ctx.unknown(f"q{i}") for i in range(order)]
        s = [ctx.unknown(f"s{i}") for i in range(order)]
        f = [ctx.unknown(f"f{j}") for j in range(num_ports)]
        dq = [ctx.ddt(q[i], key=f"dq{i}") for i in range(order)]
        ds = [ctx.ddt(s[i], key=f"ds{i}") for i in range(order)]
        for i in range(order):
            ctx.equation(f"q{i}", dq[i] - s[i])
            residual = 0.0
            for k in range(order):
                if reduced_m[i, k] != 0.0:
                    residual = residual + reduced_m[i, k] * ds[k]
                if reduced_c[i, k] != 0.0:
                    residual = residual + reduced_c[i, k] * s[k]
                if reduced_k[i, k] != 0.0:
                    residual = residual + reduced_k[i, k] * q[k]
            for j in range(num_ports):
                if input_map[i, j] != 0.0:
                    residual = residual - input_map[i, j] * f[j]
            ctx.equation(f"s{i}", residual)
        for j in range(num_ports):
            velocity = 0.0
            for i in range(order):
                if input_map[i, j] != 0.0:
                    velocity = velocity + input_map[i, j] * s[i]
            ctx.equation(f"f{j}", velocity - ctx.across(f"p{j}"))
            ctx.contribute(f"p{j}", f[j])
        # Observed displacements y = L q, recorded as y0, y1, ...  Records
        # carry no Jacobian information, so the superposition runs on plain
        # values -- with a full-DOF output map the dual-number form would
        # cost O(n * r) derivative arithmetic on every Newton iteration.
        q_values = np.array([float(np.real(getattr(qi, "value", qi)))
                             for qi in q])
        for row, value in enumerate(output_map @ q_values):
            ctx.record(f"y{row}", float(value))

    def describe(self) -> str:
        return (f"rom order={self._order} method={self.rom.method} "
                f"ports={self._num_ports}")
