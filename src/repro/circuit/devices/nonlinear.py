"""Nonlinear two-terminal primitives (junction diode).

The diode is not needed by the paper's transducer netlists themselves but it
exercises the Newton machinery (exponential nonlinearity, junction-voltage
limiting, gmin) and is used by the test suite and by the electronics examples
(e.g. a rectifying readout around the transducer).
"""

from __future__ import annotations

import math

import numpy as np

from ...ad import exp as _ad_exp, value_of
from ...constants import THERMAL_VOLTAGE
from ...errors import DeviceError
from ..mna import ACStampContext, StampContext
from ..netlist import Node
from .base import TwoTerminalDevice

__all__ = ["Diode"]

#: Above this junction voltage the exponential is continued linearly to keep
#: the Newton iteration from overflowing (standard SPICE-style limiting).
_EXPLOSION_LIMIT = 80.0


class Diode(TwoTerminalDevice):
    """Ideal exponential junction diode ``i = Is * (exp(v/(n*Vt)) - 1)``."""

    _TUNABLE = {"saturation_current": "saturation_current",
                "emission_coefficient": "emission_coefficient",
                "vt": "vt"}
    batch_safe = True

    def __init__(self, name: str, p: Node, n: Node, saturation_current: float = 1e-14,
                 emission_coefficient: float = 1.0, temperature_voltage: float = THERMAL_VOLTAGE) -> None:
        super().__init__(name, p, n)
        if saturation_current <= 0.0:
            raise DeviceError(f"diode {name!r}: saturation current must be positive")
        if emission_coefficient <= 0.0:
            raise DeviceError(f"diode {name!r}: emission coefficient must be positive")
        self.saturation_current = float(saturation_current)
        self.emission_coefficient = float(emission_coefficient)
        self.vt = float(temperature_voltage)

    def _current_and_conductance(self, v) -> tuple[float, float]:
        # Written on dual-aware arithmetic so seeded sensitivity assemblies
        # (v or the device parameters carrying AD duals) stay exact; plain
        # floats take the identical math.exp path inside ad.exp.
        nvt = self.emission_coefficient * self.vt
        arg = v / nvt
        if isinstance(arg, np.ndarray):
            # Batched lanes: the scalar limiting below vectorizes as a
            # where() blend with the exponent clipped so no lane overflows.
            exp_lim = math.exp(_EXPLOSION_LIMIT)
            over = arg > _EXPLOSION_LIMIT
            exp_term = np.exp(np.where(over, _EXPLOSION_LIMIT, arg))
            current = self.saturation_current * np.where(
                over, exp_lim * (1.0 + arg - _EXPLOSION_LIMIT) - 1.0,
                exp_term - 1.0)
            conductance = np.where(
                over, self.saturation_current * exp_lim / nvt,
                self.saturation_current * exp_term / nvt)
            return current, conductance
        if value_of(arg) > _EXPLOSION_LIMIT:
            # Linear continuation beyond the explosion limit keeps the Newton
            # update finite while preserving C1 continuity.
            exp_lim = math.exp(_EXPLOSION_LIMIT)
            current = self.saturation_current * (exp_lim * (1.0 + arg - _EXPLOSION_LIMIT) - 1.0)
            conductance = self.saturation_current * exp_lim / nvt
        else:
            exp_term = _ad_exp(arg)
            current = self.saturation_current * (exp_term - 1.0)
            conductance = self.saturation_current * exp_term / nvt
        return current, conductance

    def stamp(self, ctx: StampContext) -> None:
        ip, in_ = ctx.node_index(self.p), ctx.node_index(self.n)
        v = self.branch_across(ctx)
        current, conductance = self._current_and_conductance(v)
        ctx.add_through(ip, in_, current)
        ctx.add_through_jac(ip, in_, ip, conductance)
        ctx.add_through_jac(ip, in_, in_, -conductance)

    def stamp_ac(self, ctx: ACStampContext) -> None:
        v = ctx.op_across(self.p) - ctx.op_across(self.n)
        _, conductance = self._current_and_conductance(v)
        ip, in_ = ctx.node_index(self.p), ctx.node_index(self.n)
        ctx.add(ip, ip, conductance)
        ctx.add(ip, in_, -conductance)
        ctx.add(in_, ip, -conductance)
        ctx.add(in_, in_, conductance)

    def record(self, ctx: StampContext) -> dict[str, float]:
        current, _ = self._current_and_conductance(self.branch_across(ctx))
        return {f"i({self.name})": current}

    def describe(self) -> str:
        return f"Is={self.saturation_current:g} n={self.emission_coefficient:g}"
