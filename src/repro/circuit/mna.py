"""Modified nodal analysis (MNA) assembly and integration state.

The solver formulation is residual based: the unknown vector ``x`` holds the
across variables of every non-ground node followed by the auxiliary branch
unknowns requested by devices (voltage-source and inductor currents, HDL
equation-block unknowns, ...).  For a candidate ``x`` every device *stamps*
its contribution to

* ``res`` -- the KCL/branch residual vector ``F(x)``, and
* ``jac`` -- the Jacobian ``dF/dx``,

and the Newton iteration of :mod:`repro.circuit.analysis.op` solves
``jac @ dx = -res``.  Linear devices produce an ``x``-independent Jacobian, so
the same machinery covers linear and behavioral/nonlinear netlists without a
separate linear path.

Sign conventions
----------------
Through variables are positive when flowing from a device's ``p`` pin through
the device to its ``n`` pin; a device therefore adds its through value to the
residual row of ``p`` and subtracts it from the row of ``n``.  This matches
the paper's figure-1 convention that flow entering a port increases the
transducer energy.

Time integration
----------------
:class:`Integrator` implements backward-Euler and trapezoidal discretizations
of ``d/dt`` and of running integrals, with per-key state histories.  Devices
never see the method directly -- they call :meth:`StampContext.ddt` /
:meth:`StampContext.integ` which dispatch on the analysis mode (zero
derivative at DC, ``j*omega`` in AC handled by the separate AC context).
"""

from __future__ import annotations

from time import perf_counter
from typing import TYPE_CHECKING, Hashable, Iterable

import numpy as np

from .. import telemetry
from ..errors import AnalysisError, NetlistError
from ..linalg import StructureCache
from .netlist import Circuit, Node

if TYPE_CHECKING:  # pragma: no cover
    from .analysis.options import SimulationOptions
    from .devices.base import Device

__all__ = ["MNASystem", "Integrator", "StampContext", "BatchStampContext",
           "ACStampContext", "canonical_signal_name"]


def canonical_signal_name(label: str) -> str:
    """Public signal name of a raw unknown label.

    Auxiliary unknowns are labelled ``<device>#<aux>`` internally; the
    result files use the SPICE ``i(<device>)`` convention for plain branch
    currents and ``<device>.<aux>`` for named extra unknowns.  Node labels
    (``v(<node>)``) pass through unchanged.  Shared by the AC sweep and the
    op/transient output collection so the renaming never diverges.
    """
    if "#" not in label:
        return label
    device, aux = label.split("#", 1)
    return f"i({device})" if aux == "i" else f"{device}.{aux}"


class Integrator:
    """Discretized time-derivative / integral bookkeeping for one transient run.

    Each dynamic quantity is identified by a hashable key (devices use
    ``(device_name, local_name)``).  The integrator keeps the committed value
    and derivative of the previous accepted time point and produces the
    discretized derivative/integral of the current iterate.
    """

    BACKWARD_EULER = "backward_euler"
    TRAPEZOIDAL = "trapezoidal"

    def __init__(self, method: str = TRAPEZOIDAL) -> None:
        if method not in (self.BACKWARD_EULER, self.TRAPEZOIDAL):
            raise AnalysisError(f"unknown integration method {method!r}")
        self.method = method
        self.h = 0.0
        #: While True the integrator is being primed with the DC solution:
        #: derivatives evaluate to zero and integrals stay at their initial
        #: values, but the pending states are still registered so that the
        #: first real step has a consistent history.
        self.priming = False
        #: When True, :meth:`differentiate` / :meth:`integrate` additionally
        #: keep the *unstripped* pending expressions (possibly AD duals) so
        #: the sensitivity layer can read the exact dependence of every
        #: dynamic state on the seeded unknowns/parameters.  Off by default:
        #: the production analyses never pay for it.
        self.capture_raw = False
        self._values: dict[Hashable, float] = {}
        self._derivs: dict[Hashable, float] = {}
        self._integrals: dict[Hashable, float] = {}
        self._pending_values: dict[Hashable, float] = {}
        self._pending_derivs: dict[Hashable, float] = {}
        self._pending_integrals: dict[Hashable, float] = {}
        self._raw_values: dict[Hashable, object] = {}
        self._raw_derivs: dict[Hashable, object] = {}
        self._raw_integrals: dict[Hashable, object] = {}
        self._raw_integrands: dict[Hashable, object] = {}

    # ------------------------------------------------------------------ setup
    def set_step(self, h: float) -> None:
        """Set the current timestep (must be positive)."""
        if h <= 0.0:
            raise AnalysisError(f"timestep must be positive, got {h}")
        self.h = h

    def set_initial(self, key: Hashable, value: float, derivative: float = 0.0) -> None:
        """Initialise the committed history of a differentiated quantity."""
        self._values[key] = float(value)
        self._derivs[key] = float(derivative)

    def set_initial_integral(self, key: Hashable, value: float) -> None:
        """Initialise the committed value of an integrated quantity."""
        self._integrals[key] = float(value)

    def previous_value(self, key: Hashable, default: float = 0.0) -> float:
        """Committed value of a differentiated quantity at the last time point."""
        return self._values.get(key, default)

    def previous_integral(self, key: Hashable, default: float = 0.0) -> float:
        """Committed value of an integrated quantity at the last time point."""
        return self._integrals.get(key, default)

    # -------------------------------------------------------------- operators
    def coefficient(self) -> float:
        """Leading coefficient ``c0`` so that ``d/dt x ~= c0*x_new + history``."""
        if self.priming:
            return 0.0
        if self.h <= 0.0:
            raise AnalysisError("integrator step has not been set")
        if self.method == self.BACKWARD_EULER:
            return 1.0 / self.h
        return 2.0 / self.h

    def integral_coefficient(self) -> float:
        """Coefficient ``dI/dx_new`` of the discretized running integral."""
        if self.priming:
            return 0.0
        if self.h <= 0.0:
            raise AnalysisError("integrator step has not been set")
        if self.method == self.BACKWARD_EULER:
            return self.h
        return 0.5 * self.h

    def differentiate(self, key: Hashable, value):
        """Discretized time derivative of ``value`` identified by ``key``.

        ``value`` may be a float or an AD dual; the arithmetic propagates the
        derivative part automatically.  The plain value is remembered as the
        *pending* state so that :meth:`commit` can promote it once the step is
        accepted.
        """
        if self.priming:
            derivative = 0.0 * value
            self._pending_values[key] = _plain(value)
            self._pending_derivs[key] = 0.0
            if self.capture_raw:
                self._raw_values[key] = value
                self._raw_derivs[key] = derivative
            return derivative
        c0 = self.coefficient()
        old_value = self._values.get(key, _plain(value))
        old_deriv = self._derivs.get(key, 0.0)
        if self.method == self.BACKWARD_EULER:
            derivative = (value - old_value) * c0
        else:
            derivative = (value - old_value) * c0 - old_deriv
        self._pending_values[key] = _plain(value)
        self._pending_derivs[key] = _plain(derivative)
        if self.capture_raw:
            self._raw_values[key] = value
            self._raw_derivs[key] = derivative
        return derivative

    def integrate(self, key: Hashable, value, initial: float = 0.0):
        """Discretized running integral of ``value`` identified by ``key``."""
        old_integral = self._integrals.get(key, float(initial))
        if self.priming:
            integral = 0.0 * value + old_integral
            self._pending_values[("integ", key)] = _plain(value)
            self._pending_integrals[key] = _plain(integral)
            if self.capture_raw:
                self._raw_integrands[key] = value
                self._raw_integrals[key] = integral
            return integral
        old_value = self._values.get(("integ", key), _plain(value))
        if self.method == self.BACKWARD_EULER:
            integral = old_integral + self.h * value
        else:
            integral = old_integral + 0.5 * self.h * (value + old_value)
        self._pending_values[("integ", key)] = _plain(value)
        self._pending_integrals[key] = _plain(integral)
        if self.capture_raw:
            self._raw_integrands[key] = value
            self._raw_integrals[key] = integral
        return integral

    def commit(self) -> None:
        """Promote the pending states after a time step has been accepted."""
        self._values.update(self._pending_values)
        self._derivs.update(self._pending_derivs)
        self._integrals.update(self._pending_integrals)
        self._pending_values = {}
        self._pending_derivs = {}
        self._pending_integrals = {}
        self.clear_raw()

    def discard(self) -> None:
        """Drop pending states after a rejected step."""
        self._pending_values = {}
        self._pending_derivs = {}
        self._pending_integrals = {}
        self.clear_raw()

    def state_snapshot(self) -> dict[Hashable, float]:
        """Committed integral states (used to seed AC/record contexts)."""
        return dict(self._integrals)

    # ------------------------------------------------------- sensitivity hooks
    #: Slot kinds of the dynamic-state vector seen by the sensitivity layer:
    #: ``value``/``deriv`` per ``ddt`` key and ``integral``/``integrand`` per
    #: ``integ`` key -- together they are exactly the committed history the
    #: next residual assembly reads.
    STATE_KINDS = ("value", "deriv", "integral", "integrand")

    def clear_raw(self) -> None:
        """Drop the captured raw pending expressions (one assembly's worth)."""
        self._raw_values = {}
        self._raw_derivs = {}
        self._raw_integrals = {}
        self._raw_integrands = {}

    def state_slots(self) -> list[tuple[str, Hashable]]:
        """``(kind, key)`` identity of every captured dynamic-state slot.

        Valid after a ``capture_raw`` assembly; the order is the (stable)
        device stamping order, so repeated assemblies of one circuit
        enumerate identical slots.
        """
        slots: list[tuple[str, Hashable]] = []
        for key in self._raw_values:
            slots.append(("value", key))
            slots.append(("deriv", key))
        for key in self._raw_integrals:
            slots.append(("integral", key))
            slots.append(("integrand", key))
        return slots

    def raw_pending(self, kind: str, key: Hashable):
        """The captured (unstripped) pending expression of one state slot."""
        store = {"value": self._raw_values, "deriv": self._raw_derivs,
                 "integral": self._raw_integrals,
                 "integrand": self._raw_integrands}[kind]
        return store[key]

    def committed_state(self, kind: str, key: Hashable):
        """Read one committed state entry (the counterpart of
        :meth:`override_state`); raises ``KeyError`` for unknown slots."""
        if kind == "value":
            return self._values[key]
        if kind == "deriv":
            return self._derivs[key]
        if kind == "integral":
            return self._integrals[key]
        if kind == "integrand":
            return self._values[("integ", key)]
        raise AnalysisError(f"unknown integrator state kind {kind!r}")

    def override_state(self, kind: str, key: Hashable, value) -> None:
        """Replace one *committed* state entry (sensitivity seeding only).

        ``value`` may be an AD dual; the next assembly then propagates the
        dependence of the residual on this piece of integrator history.
        """
        if kind == "value":
            self._values[key] = value
        elif kind == "deriv":
            self._derivs[key] = value
        elif kind == "integral":
            self._integrals[key] = value
        elif kind == "integrand":
            self._values[("integ", key)] = value
        else:
            raise AnalysisError(f"unknown integrator state kind {kind!r}")


def _plain(value) -> float:
    """Value part of a float or dual."""
    return float(getattr(value, "value", value))


class MNASystem:
    """Unknown numbering and assembly driver for one circuit.

    The unknown vector layout is ``[across(node_0) ... across(node_{N-1}),
    aux_0 ... aux_{M-1}]`` where the auxiliary unknowns are allocated in
    device insertion order using each device's :meth:`aux_names`.
    """

    def __init__(self, circuit: Circuit) -> None:
        circuit.validate()
        self.circuit = circuit
        self.nodes: list[Node] = circuit.nodes
        self._node_index: dict[str, int] = {node.name: i for i, node in enumerate(self.nodes)}
        self._aux_index: dict[tuple[str, str], int] = {}
        offset = len(self.nodes)
        for device in circuit:
            for aux_name in device.aux_names():
                key = (device.name, aux_name)
                if key in self._aux_index:
                    raise NetlistError(
                        f"device {device.name!r} declares auxiliary unknown "
                        f"{aux_name!r} twice")
                self._aux_index[key] = offset
                offset += 1
        self.size = offset
        self.num_nodes = len(self.nodes)
        self.num_aux = offset - len(self.nodes)
        #: COO->CSR pattern cache shared by every sparse assembly of this
        #: system; the stamp stream of a fixed topology repeats its
        #: coordinates, so only the first assembly pays the reduction.
        self.structure_cache = StructureCache()
        self._aux_signal_names: list[str] | None = None

    # ------------------------------------------------------------------ lookups
    def index_of(self, node: Node) -> int:
        """Index of a node's across unknown; -1 for the ground reference."""
        if node.is_ground:
            return -1
        try:
            return self._node_index[node.name]
        except KeyError:
            raise NetlistError(f"node {node.name!r} is not part of this system") from None

    def aux_index(self, device: "Device | str", aux_name: str) -> int:
        """Index of a device's auxiliary unknown."""
        name = device if isinstance(device, str) else device.name
        try:
            return self._aux_index[(name, aux_name)]
        except KeyError:
            raise NetlistError(
                f"device {name!r} has no auxiliary unknown {aux_name!r}") from None

    def unknown_labels(self) -> list[str]:
        """Human-readable labels of the unknowns, in vector order."""
        labels = [f"v({node.name})" for node in self.nodes]
        aux = sorted(self._aux_index.items(), key=lambda item: item[1])
        labels.extend(f"{device}#{name}" for (device, name), _ in aux)
        return labels

    def aux_signal_names(self) -> list[str]:
        """Canonical result names of the auxiliary unknowns, in vector order.

        The unknown layout is fixed at construction, so the list is computed
        once and memoized -- per-step output collection must not re-format
        and re-sort the label map.
        """
        names = self._aux_signal_names
        if names is None:
            names = [canonical_signal_name(label)
                     for label in self.unknown_labels()[self.num_nodes:]]
            self._aux_signal_names = names
        return names

    # ------------------------------------------------------------------ assembly
    def assemble(self, x: np.ndarray, analysis: str, time: float,
                 integrator: Integrator | None, options: "SimulationOptions",
                 source_scale: float = 1.0,
                 want_jacobian: bool = True) -> "StampContext":
        """Build the residual (and, unless disabled, the Jacobian) at ``x``.

        ``want_jacobian=False`` assembles the residual only: Jacobian stamps
        are dropped and behavioral devices evaluate on plain floats instead
        of AD duals.  Used for record passes and chord-Newton iterations,
        where the Jacobian is never read.
        """
        ctx = StampContext(self, x, analysis=analysis, time=time,
                           integrator=integrator, options=options,
                           source_scale=source_scale, want_jacobian=want_jacobian)
        if not telemetry.enabled():
            return self.run_stamps(ctx)
        # The full/residual split is the AD-overhead measurement: a full
        # assembly propagates dual numbers through every behavioral device,
        # a residual-only one evaluates on plain floats.
        t0 = perf_counter()
        ctx = self.run_stamps(ctx)
        kind = "full" if want_jacobian else "residual"
        telemetry.registry.observe(f"mna.assembly.{analysis}.{kind}_s",
                                   perf_counter() - t0)
        return ctx

    def run_stamps(self, ctx: "StampContext") -> "StampContext":
        """Drive every device stamp over an existing (possibly specialised)
        context -- the sensitivity layer assembles through its dual-seeded
        :class:`StampContext` subclasses this way."""
        for device in self.circuit:
            device.stamp(ctx)
        ctx.apply_gmin(ctx.options.gmin)
        return ctx

    def assemble_ac(self, op_values: np.ndarray, omega: float,
                    integrator_states: dict | None,
                    options: "SimulationOptions") -> "ACStampContext":
        """Build the complex small-signal system at angular frequency ``omega``."""
        t0 = perf_counter() if telemetry.enabled() else None
        ctx = ACStampContext(self, op_values, omega=omega,
                             integrator_states=integrator_states or {}, options=options)
        for device in self.circuit:
            device.stamp_ac(ctx)
        ctx.apply_gmin(options.gmin)
        if t0 is not None:
            telemetry.registry.observe("mna.assembly.ac_s", perf_counter() - t0)
        return ctx


class StampContext:
    """Mutable assembly workspace handed to every device's :meth:`stamp`."""

    #: When True (sensitivity assemblies), devices must hand residual
    #: expressions to :meth:`add_res`/:meth:`add_through` *without* stripping
    #: AD duals -- the context separates value and derivative parts itself.
    keep_residual_duals = False

    def __init__(self, system: MNASystem, x: np.ndarray, analysis: str, time: float,
                 integrator: Integrator | None, options: "SimulationOptions",
                 source_scale: float = 1.0, want_jacobian: bool = True) -> None:
        self.system = system
        self.x = np.asarray(x, dtype=float)
        if self.x.shape != (system.size,):
            raise AnalysisError(
                f"solution vector has shape {self.x.shape}, expected ({system.size},)")
        self.analysis = analysis
        self.time = time
        self.integrator = integrator
        self.options = options
        self.source_scale = source_scale
        #: False for residual-only assemblies: ``add_jac`` becomes a no-op
        #: and devices may skip derivative propagation entirely.
        self.want_jacobian = want_jacobian
        n = system.size
        self.res = np.zeros(n)
        #: Above ``options.sparse_threshold`` unknowns (or when forced by
        #: ``options.linear_solver``) the Jacobian is accumulated as COO
        #: triplets instead of a dense array; ``jacobian()`` then yields a
        #: SciPy CSR matrix and ``jac`` stays None.
        self.use_sparse = options.use_sparse(n)
        if self.use_sparse or not want_jacobian:
            self.jac = None
            self._jac_rows: list[int] = []
            self._jac_cols: list[int] = []
            self._jac_vals: list[float] = []
        else:
            self.jac = np.zeros((n, n))

    # ------------------------------------------------------------------ access
    def node_index(self, node: Node) -> int:
        """Unknown index of ``node`` (-1 for ground)."""
        return self.system.index_of(node)

    def aux_index(self, device: "Device | str", name: str) -> int:
        """Unknown index of a device auxiliary variable."""
        return self.system.aux_index(device, name)

    def across(self, node: Node) -> float:
        """Across value (voltage / velocity) of ``node`` at the current iterate."""
        idx = self.system.index_of(node)
        return 0.0 if idx < 0 else float(self.x[idx])

    def across_pair(self, p: Node, n: Node) -> float:
        """Across difference ``across(p) - across(n)``."""
        return self.across(p) - self.across(n)

    def aux_value(self, device: "Device | str", name: str) -> float:
        """Value of a device auxiliary unknown at the current iterate."""
        return float(self.x[self.system.aux_index(device, name)])

    def unknown_value(self, index: int) -> float:
        """Raw unknown value by vector index (-1 yields 0)."""
        return 0.0 if index < 0 else float(self.x[index])

    # --------------------------------------------------------------- stamping
    def add_jac(self, row: int, col: int, value: float) -> None:
        """Accumulate ``d res[row] / d x[col]``; ground rows/cols are ignored."""
        if row < 0 or col < 0 or not self.want_jacobian:
            return
        if self.use_sparse:
            self._jac_rows.append(row)
            self._jac_cols.append(col)
            self._jac_vals.append(value)
        else:
            self.jac[row, col] += value

    def jacobian(self):
        """The assembled Jacobian: dense ndarray, or CSR in sparse mode.

        The sparse path routes through the system's
        :class:`~repro.linalg.StructureCache`: duplicate entries are summed
        in stamp order into the cached CSR pattern, so repeated assemblies
        of an unchanged topology skip the COO sort/deduplicate work.
        """
        if not self.want_jacobian:
            raise AnalysisError(
                "this context was assembled residual-only (want_jacobian=False)")
        if not self.use_sparse:
            return self.jac
        return self.system.structure_cache.assemble(
            self._jac_rows, self._jac_cols, self._jac_vals, self.system.size)

    def jacobian_is_finite(self) -> bool:
        """Whether every accumulated Jacobian entry is finite."""
        if not self.want_jacobian:
            return True
        if self.use_sparse:
            return bool(np.all(np.isfinite(self._jac_vals))) if self._jac_vals \
                else True
        return bool(np.all(np.isfinite(self.jac)))

    def add_res(self, row: int, value: float) -> None:
        """Accumulate into the residual row; the ground row is ignored."""
        if row < 0:
            return
        self.res[row] += value

    def add_through(self, p_index: int, n_index: int, value: float) -> None:
        """Add a through value flowing from index ``p`` to index ``n``."""
        self.add_res(p_index, value)
        self.add_res(n_index, -value)

    def add_through_jac(self, p_index: int, n_index: int, col: int, dvalue: float) -> None:
        """Jacobian counterpart of :meth:`add_through`."""
        self.add_jac(p_index, col, dvalue)
        self.add_jac(n_index, col, -dvalue)

    def apply_gmin(self, gmin: float) -> None:
        """Tie every node to ground with ``gmin`` to avoid singular matrices."""
        if gmin <= 0.0:
            return
        n_nodes = self.system.num_nodes
        if n_nodes == 0:
            return
        if self.want_jacobian:
            diag = range(n_nodes)
            if self.use_sparse:
                self._jac_rows.extend(diag)
                self._jac_cols.extend(diag)
                self._jac_vals.extend([gmin] * n_nodes)
            else:
                idx = np.arange(n_nodes)
                self.jac[idx, idx] += gmin
        self.res[:n_nodes] += gmin * self.x[:n_nodes]

    # ------------------------------------------------------------ time dynamics
    @property
    def is_dc(self) -> bool:
        """True for operating-point and DC-sweep assemblies."""
        return self.analysis in ("op", "dc")

    @property
    def is_transient(self) -> bool:
        """True during transient time stepping."""
        return self.analysis == "tran"

    def ddt_coefficient(self) -> float:
        """``d(ddt(x))/dx`` of the active discretization (0 at DC)."""
        if self.is_dc or self.integrator is None:
            return 0.0
        return self.integrator.coefficient()

    def integ_coefficient(self) -> float:
        """``d(integ(x))/dx`` of the active discretization (0 at DC)."""
        if self.is_dc or self.integrator is None:
            return 0.0
        return self.integrator.integral_coefficient()

    def ddt(self, key: Hashable, value):
        """Discretized time derivative of ``value`` (0 at DC)."""
        if self.is_dc or self.integrator is None:
            return 0.0 * value
        return self.integrator.differentiate(key, value)

    def integ(self, key: Hashable, value, initial: float = 0.0):
        """Running integral of ``value`` (frozen at its initial value at DC)."""
        if self.is_dc or self.integrator is None:
            return 0.0 * value + initial
        return self.integrator.integrate(key, value, initial=initial)

    def state_value(self, key: Hashable, default: float = 0.0) -> float:
        """Committed integral state (used by record passes and DC)."""
        if self.integrator is None:
            return default
        return self.integrator.previous_integral(key, default)


class BatchStampContext(StampContext):
    """Assembly workspace for B stacked DC/OP systems of one circuit.

    ``x`` has shape ``(B, n)``; accessors return ``(B,)`` value lanes and the
    residual/Jacobian accumulate as ``(B, n)`` / ``(B, n, n)`` (dense mode)
    or as one shared triplet pattern with ``(B,)`` values per triplet (sparse
    mode).  Batch-safe devices stamp *once* with their scalar arithmetic
    broadcasting over the lane axis; devices that cannot broadcast (AD-dual
    behavioral models) stamp per lane through :meth:`lane_context`, whose
    genuine serial :class:`StampContext` writes straight into this batch's
    arrays.

    Restricted to DC-class analyses (``op``/``dc``): the lane axis replaces
    the time axis, and no integrator state is threaded through.
    """

    def __init__(self, system: MNASystem, x: np.ndarray, analysis: str,
                 options: "SimulationOptions", source_scale: float = 1.0,
                 want_jacobian: bool = True, force_dense: bool = False) -> None:
        if analysis not in ("op", "dc"):
            raise AnalysisError(
                f"batched assembly supports DC-class analyses only, got "
                f"{analysis!r}")
        self.system = system
        self.x = np.asarray(x, dtype=float)
        if self.x.ndim != 2 or self.x.shape[1] != system.size:
            raise AnalysisError(
                f"batched solution block has shape {self.x.shape}, expected "
                f"(B, {system.size})")
        self.batch = self.x.shape[0]
        self.analysis = analysis
        self.time = 0.0
        self.integrator = None
        self.options = options
        self.source_scale = source_scale
        self.want_jacobian = want_jacobian
        n = system.size
        self.res = np.zeros((self.batch, n))
        self.use_sparse = options.use_sparse(n) and not force_dense
        if self.use_sparse or not want_jacobian:
            self.jac = None
            self._jac_rows = []
            self._jac_cols = []
            self._jac_vals = []
        else:
            self.jac = np.zeros((self.batch, n, n))

    # ------------------------------------------------------------------ access
    def across(self, node: Node):
        idx = self.system.index_of(node)
        return 0.0 if idx < 0 else self.x[:, idx]

    def aux_value(self, device: "Device | str", name: str):
        return self.x[:, self.system.aux_index(device, name)]

    def unknown_value(self, index: int):
        return 0.0 if index < 0 else self.x[:, index]

    # --------------------------------------------------------------- stamping
    def add_res(self, row: int, value) -> None:
        if row < 0:
            return
        self.res[:, row] += value

    def add_jac(self, row: int, col: int, value) -> None:
        if row < 0 or col < 0 or not self.want_jacobian:
            return
        if self.use_sparse:
            self._jac_rows.append(row)
            self._jac_cols.append(col)
            self._jac_vals.append(value)
        else:
            self.jac[:, row, col] += value

    def jacobian(self):
        """``(B, n, n)`` dense stack, or a list of B CSR lanes in sparse mode."""
        if not self.want_jacobian:
            raise AnalysisError(
                "this context was assembled residual-only (want_jacobian=False)")
        if not self.use_sparse:
            return self.jac
        values = np.empty((len(self._jac_vals), self.batch))
        for i, value in enumerate(self._jac_vals):
            values[i] = value
        return self.system.structure_cache.assemble_batch(
            self._jac_rows, self._jac_cols, values, self.system.size)

    def residual_finite_lanes(self) -> np.ndarray:
        """``(B,)`` mask of lanes whose residual is entirely finite."""
        return np.all(np.isfinite(self.res), axis=1)

    def jacobian_finite_lanes(self) -> np.ndarray:
        """``(B,)`` mask of lanes whose Jacobian is entirely finite."""
        if not self.want_jacobian:
            return np.ones(self.batch, dtype=bool)
        if self.use_sparse:
            finite = np.ones(self.batch, dtype=bool)
            for value in self._jac_vals:
                lanes = np.isfinite(value)
                finite &= lanes if np.ndim(lanes) else bool(lanes)
            return finite
        return np.all(np.isfinite(self.jac), axis=(1, 2))

    def apply_gmin(self, gmin: float) -> None:
        if gmin <= 0.0:
            return
        n_nodes = self.system.num_nodes
        if n_nodes == 0:
            return
        if self.want_jacobian:
            if self.use_sparse:
                diag = range(n_nodes)
                self._jac_rows.extend(diag)
                self._jac_cols.extend(diag)
                self._jac_vals.extend([gmin] * n_nodes)
            else:
                idx = np.arange(n_nodes)
                self.jac[:, idx, idx] += gmin
        self.res[:, :n_nodes] += gmin * self.x[:, :n_nodes]

    # ------------------------------------------------------------- lane access
    def lane_context(self, lane: int) -> StampContext:
        """A serial :class:`StampContext` over lane ``lane``.

        Its residual (and, in dense mode, Jacobian) arrays are *views* into
        this batch's arrays, so non-broadcastable devices stamp through their
        unchanged serial code path and land in the right lane.  Only
        available in dense mode -- per-lane triplet streams may diverge
        (behavioral stamps skip exact-zero derivatives), which is exactly why
        mixed circuits assemble dense.
        """
        if self.use_sparse:
            raise AnalysisError(
                "per-lane stamping requires dense batch assembly "
                "(construct the batch context with force_dense=True)")
        ctx = StampContext(self.system, self.x[lane], analysis=self.analysis,
                           time=self.time, integrator=None,
                           options=self.options, source_scale=self.source_scale,
                           want_jacobian=self.want_jacobian)
        ctx.res = self.res[lane]
        if self.want_jacobian:
            ctx.use_sparse = False
            ctx.jac = self.jac[lane]
        return ctx


class ACStampContext:
    """Complex small-signal assembly workspace for AC analysis.

    Devices stamp their linearized admittances into ``matrix`` and AC source
    excitations into ``rhs``; the linearization point is the operating-point
    solution ``op_values`` (same layout as the real unknown vector).
    """

    analysis = "ac"

    def __init__(self, system: MNASystem, op_values: np.ndarray, omega: float,
                 integrator_states: dict, options: "SimulationOptions") -> None:
        self.system = system
        self.op_values = np.asarray(op_values, dtype=float)
        self.omega = float(omega)
        self.integrator_states = integrator_states
        self.options = options
        n = system.size
        self.matrix = np.zeros((n, n), dtype=complex)
        self.rhs = np.zeros(n, dtype=complex)

    def node_index(self, node: Node) -> int:
        """Unknown index of ``node`` (-1 for ground)."""
        return self.system.index_of(node)

    def aux_index(self, device: "Device | str", name: str) -> int:
        """Unknown index of a device auxiliary variable."""
        return self.system.aux_index(device, name)

    def op_across(self, node: Node) -> float:
        """Operating-point across value of ``node``."""
        idx = self.system.index_of(node)
        return 0.0 if idx < 0 else float(self.op_values[idx])

    def op_aux(self, device: "Device | str", name: str) -> float:
        """Operating-point value of an auxiliary unknown."""
        return float(self.op_values[self.system.aux_index(device, name)])

    def op_state(self, key: Hashable, default: float = 0.0) -> float:
        """Committed integral state at the operating point."""
        return float(self.integrator_states.get(key, default))

    def add(self, row: int, col: int, value: complex) -> None:
        """Accumulate a complex admittance entry (ground indices ignored)."""
        if row < 0 or col < 0:
            return
        self.matrix[row, col] += value

    def add_rhs(self, row: int, value: complex) -> None:
        """Accumulate an AC excitation into the right-hand side."""
        if row < 0:
            return
        self.rhs[row] += value

    def apply_gmin(self, gmin: float) -> None:
        """Tie every node to ground with ``gmin`` (numerical conditioning)."""
        if gmin <= 0.0:
            return
        for i in range(self.system.num_nodes):
            self.matrix[i, i] += gmin
