"""Numerical small-signal linearization around an operating point.

The paper contrasts nonlinear behavioral models with *linearized equivalent
circuits*.  This module provides the bridge between the two worlds: given any
circuit (including behavioral transducers), it extracts the small-signal
conductance matrix ``G`` and capacitance/susceptance matrix ``C`` such that
``Y(omega) = G + j*omega*C`` around the DC bias, and computes driving-point
or transfer quantities from them.

The extraction solves the complex small-signal system at two angular
frequencies and separates the real part (frequency independent for the device
classes supported here) from the imaginary part (proportional to ``omega``).
This is exact for circuits whose reactive elements are linear-in-``omega``
admittances -- true for every built-in device and for behavioral models whose
``ddt``/``integ`` operators appear linearly, which covers the paper's
transducers.
"""

from __future__ import annotations

import numpy as np

from ..errors import AnalysisError, LinAlgError
from ..linalg import FactorizedSolver
from .analysis.op import OperatingPointAnalysis
from .analysis.options import SimulationOptions
from .analysis.results import OperatingPoint
from .mna import MNASystem
from .netlist import Circuit, Node

__all__ = ["small_signal_matrices", "input_admittance", "input_impedance",
           "equivalent_capacitance"]


def small_signal_matrices(circuit: Circuit, operating_point: OperatingPoint | None = None,
                          options: SimulationOptions | None = None,
                          probe_frequency: float = 1.0) -> tuple[np.ndarray, np.ndarray, MNASystem]:
    """Extract the (G, C) small-signal matrices of ``circuit`` around its bias.

    Returns ``(G, C, system)`` where the matrices are dense numpy arrays in
    the MNA unknown ordering of ``system``.
    """
    options = options or SimulationOptions()
    system = MNASystem(circuit)
    if operating_point is None:
        operating_point = OperatingPointAnalysis(circuit, options).run()
    if operating_point.raw.shape != (system.size,):
        raise AnalysisError("operating point does not match this circuit")
    states = dict(operating_point.integrator_states)
    omega = 2.0 * np.pi * probe_frequency
    y1 = system.assemble_ac(operating_point.raw, omega, states, options).matrix
    y2 = system.assemble_ac(operating_point.raw, 2.0 * omega, states, options).matrix
    # Y(w) = G + j w C  =>  C = Im(Y2 - Y1) / w,  G = Re(Y1)
    conductance = np.real(y1)
    capacitance = np.imag(y2 - y1) / omega
    return conductance, capacitance, system


def input_admittance(circuit: Circuit, node: str | Node, frequency: float,
                     operating_point: OperatingPoint | None = None,
                     options: SimulationOptions | None = None) -> complex:
    """Driving-point admittance seen from ``node`` to ground at ``frequency``.

    The admittance is computed by injecting a unit AC current into the node
    and reading the resulting node voltage: ``Y = I / V = 1 / V``.
    """
    options = options or SimulationOptions()
    system = MNASystem(circuit)
    if operating_point is None:
        operating_point = OperatingPointAnalysis(circuit, options).run()
    states = dict(operating_point.integrator_states)
    omega = 2.0 * np.pi * float(frequency)
    if omega <= 0.0:
        raise AnalysisError("frequency must be positive")
    ctx = system.assemble_ac(operating_point.raw, omega, states, options)
    node_obj = circuit.node(node) if isinstance(node, str) else node
    index = system.index_of(node_obj)
    if index < 0:
        raise AnalysisError("cannot probe the ground node")
    rhs = np.zeros(system.size, dtype=complex)
    rhs[index] = 1.0
    try:
        solution = FactorizedSolver("dense").solve(ctx.matrix, rhs)
    except LinAlgError as exc:
        raise AnalysisError(f"singular small-signal matrix: {exc}") from exc
    voltage = solution[index]
    if voltage == 0.0:
        raise AnalysisError("node voltage is zero; admittance is unbounded")
    return 1.0 / complex(voltage)


def input_impedance(circuit: Circuit, node: str | Node, frequency: float,
                    operating_point: OperatingPoint | None = None,
                    options: SimulationOptions | None = None) -> complex:
    """Driving-point impedance ``1 / Y`` seen from ``node`` to ground."""
    return 1.0 / input_admittance(circuit, node, frequency, operating_point, options)


def equivalent_capacitance(circuit: Circuit, node: str | Node, frequency: float = 1e3,
                           operating_point: OperatingPoint | None = None,
                           options: SimulationOptions | None = None) -> float:
    """Small-signal capacitance seen from ``node`` to ground.

    Computed from the imaginary part of the driving-point admittance,
    ``C = Im(Y) / omega`` -- exactly how Table 2's input impedances are
    verified against the behavioral transducer models in the benchmarks.
    """
    admittance = input_admittance(circuit, node, frequency, operating_point, options)
    omega = 2.0 * np.pi * float(frequency)
    return float(np.imag(admittance) / omega)
