"""Engineering-unit parsing and formatting.

SPICE decks and HDL-A generics habitually use engineering suffixes
(``100u``, ``5.86p``, ``0.15m``) and the paper's Table 4 mixes plain SI with
scaled notation.  This module provides a small, dependency-free quantity
parser so that netlists, examples and the PXT report generator can accept and
emit the familiar notation.

The parser intentionally follows SPICE conventions:

* suffixes are case-insensitive,
* ``m`` is milli and ``meg`` is mega (the classic SPICE trap),
* trailing unit names after the suffix are ignored (``10pF`` == ``10p``).
"""

from __future__ import annotations

import math
import re

from .errors import UnitError

__all__ = [
    "parse_quantity",
    "format_quantity",
    "format_si",
    "ENGINEERING_SUFFIXES",
]

#: Mapping of SPICE-style suffixes to multipliers, longest first where needed.
ENGINEERING_SUFFIXES: dict[str, float] = {
    "t": 1e12,
    "g": 1e9,
    "meg": 1e6,
    "x": 1e6,
    "k": 1e3,
    "m": 1e-3,
    "u": 1e-6,
    "µ": 1e-6,
    "n": 1e-9,
    "p": 1e-12,
    "f": 1e-15,
    "a": 1e-18,
}

_NUMBER_RE = re.compile(
    r"""^\s*
        (?P<number>[+-]?(?:\d+\.?\d*|\.\d+)(?:[eE][+-]?\d+)?)
        (?P<rest>[a-zA-Zµ%]*)
        \s*$""",
    re.VERBOSE,
)

#: SI prefixes used for human-readable formatting, from large to small.
_FORMAT_PREFIXES = [
    (1e12, "T"),
    (1e9, "G"),
    # "Meg" (not "M") so formatted values round-trip through the SPICE parser,
    # where a leading "m" always means milli.
    (1e6, "Meg"),
    (1e3, "k"),
    (1.0, ""),
    (1e-3, "m"),
    (1e-6, "u"),
    (1e-9, "n"),
    (1e-12, "p"),
    (1e-15, "f"),
    (1e-18, "a"),
]


def parse_quantity(text: str | float | int) -> float:
    """Parse a SPICE/engineering quantity into a float.

    Accepts plain numbers (returned unchanged), strings with exponents and
    strings with engineering suffixes optionally followed by a unit name:

    >>> parse_quantity("0.15m")
    0.00015
    >>> parse_quantity("5.8637pF")
    5.8637e-12
    >>> parse_quantity("2meg")
    2000000.0

    Raises :class:`~repro.errors.UnitError` for malformed input.
    """
    if isinstance(text, (int, float)):
        value = float(text)
        if math.isnan(value):
            raise UnitError("quantity is NaN")
        return value
    if not isinstance(text, str):
        raise UnitError(f"cannot parse quantity from {type(text).__name__}")
    match = _NUMBER_RE.match(text)
    if match is None:
        raise UnitError(f"malformed quantity: {text!r}")
    value = float(match.group("number"))
    rest = match.group("rest").lower()
    if not rest:
        return value
    if rest == "%":
        return value / 100.0
    if rest.startswith("meg"):
        return value * ENGINEERING_SUFFIXES["meg"]
    if rest.startswith("mil"):
        return value * 25.4e-6
    suffix = rest[0]
    if suffix in ENGINEERING_SUFFIXES:
        return value * ENGINEERING_SUFFIXES[suffix]
    # No recognised suffix: treat the trailing characters as a bare unit name
    # ("10V", "200N") and return the number as-is.
    if rest.isalpha():
        return value
    raise UnitError(f"malformed quantity: {text!r}")


def format_quantity(value: float, unit: str = "", digits: int = 4) -> str:
    """Format ``value`` with an engineering prefix and optional unit.

    >>> format_quantity(5.8637e-12, "F")
    '5.864pF'
    >>> format_quantity(0.0, "m")
    '0m'
    """
    if value == 0.0:
        return f"0{unit}"
    if math.isnan(value) or math.isinf(value):
        return f"{value}{unit}"
    magnitude = abs(value)
    for scale, prefix in _FORMAT_PREFIXES:
        if magnitude >= scale:
            scaled = value / scale
            return f"{_trim(scaled, digits)}{prefix}{unit}"
    scale, prefix = _FORMAT_PREFIXES[-1]
    return f"{_trim(value / scale, digits)}{prefix}{unit}"


def format_si(value: float, unit: str = "", digits: int = 6) -> str:
    """Format ``value`` in plain scientific notation with a unit suffix."""
    return f"{value:.{digits}g}{(' ' + unit) if unit else ''}"


def _trim(value: float, digits: int) -> str:
    text = f"{value:.{digits}g}"
    return text
