"""Physical constants and default numerical tolerances.

The values mirror those used in the paper (listing 1 hard-codes
``e0 := 8.8542e-12``); CODATA refinements are irrelevant at the accuracy of
lumped MEMS models, but we keep the full-precision values and expose the
paper's rounded permittivity separately for exact comparisons against the
printed tables.
"""

from __future__ import annotations

import math

#: Vacuum permittivity [F/m] (value used in the paper's Listing 1).
EPSILON_0 = 8.8542e-12

#: Vacuum permittivity [F/m], CODATA 2018.
EPSILON_0_CODATA = 8.8541878128e-12

#: Vacuum permeability [H/m].
MU_0 = 4.0e-7 * math.pi

#: Speed of light in vacuum [m/s].
SPEED_OF_LIGHT = 299_792_458.0

#: Elementary charge [C].
ELEMENTARY_CHARGE = 1.602176634e-19

#: Boltzmann constant [J/K].
BOLTZMANN = 1.380649e-23

#: Standard temperature for device models [K].
T_NOMINAL = 300.15

#: Thermal voltage kT/q at ``T_NOMINAL`` [V].
THERMAL_VOLTAGE = BOLTZMANN * T_NOMINAL / ELEMENTARY_CHARGE

#: Standard gravity [m/s^2].
GRAVITY = 9.80665

# ---------------------------------------------------------------------------
# Default numerical tolerances for the circuit solver.  The names follow the
# SPICE option conventions (RELTOL/ABSTOL/VNTOL) so that anyone familiar with
# ELDO option decks can map them directly.
# ---------------------------------------------------------------------------

#: Relative tolerance on Newton updates and truncation-error control
#: (SPICE default).
RELTOL = 1e-3

#: Absolute tolerance on through variables (currents, forces) [A or N].
ABSTOL = 1e-12

#: Absolute tolerance on across variables (voltages, velocities) [V or m/s].
VNTOL = 1e-6

#: Minimum conductance placed across nonlinear junctions for convergence aid.
GMIN = 1e-12

#: Maximum Newton iterations per solve point.
MAX_NEWTON_ITERATIONS = 100

#: Maximum number of source-stepping levels for difficult operating points.
MAX_SOURCE_STEPS = 64
