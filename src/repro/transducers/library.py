"""Registry of the built-in transducer models.

The library maps short names (the ones used by the paper's figure 2 and by
the HDL code generator) to the model classes, so examples, tests and the PXT
report generator can instantiate devices from configuration data::

    from repro.transducers import create_transducer
    xdcr = create_transducer("transverse_electrostatic", area=1e-4, gap=0.15e-3)
"""

from __future__ import annotations

from typing import Callable

from ..errors import TransducerError
from .base import ConservativeTransducer
from .electrodynamic import ElectrodynamicTransducer
from .electromagnetic import ElectromagneticTransducer
from .electrostatic import LateralElectrostaticTransducer, TransverseElectrostaticTransducer

__all__ = ["TRANSDUCER_LIBRARY", "create_transducer"]

#: Mapping of library names to transducer classes.  The ``fig2*`` aliases
#: mirror the paper's figure labels.
TRANSDUCER_LIBRARY: dict[str, Callable[..., ConservativeTransducer]] = {
    "transverse_electrostatic": TransverseElectrostaticTransducer,
    "lateral_electrostatic": LateralElectrostaticTransducer,
    "parallel_electrostatic": LateralElectrostaticTransducer,
    "electromagnetic": ElectromagneticTransducer,
    "electrodynamic": ElectrodynamicTransducer,
    "fig2a": TransverseElectrostaticTransducer,
    "fig2b": LateralElectrostaticTransducer,
    "fig2c": ElectromagneticTransducer,
    "fig2d": ElectrodynamicTransducer,
}


def create_transducer(kind: str, **parameters) -> ConservativeTransducer:
    """Instantiate a transducer from the library by name.

    Raises :class:`~repro.errors.TransducerError` for unknown names; parameter
    errors propagate from the model constructors.
    """
    try:
        factory = TRANSDUCER_LIBRARY[kind.lower()]
    except KeyError:
        known = ", ".join(sorted(set(TRANSDUCER_LIBRARY)))
        raise TransducerError(f"unknown transducer kind {kind!r}; known kinds: {known}") from None
    return factory(**parameters)
