"""Electrodynamic (voice-coil) transducer -- figure 2d of the paper.

A coil of ``N`` turns and radius ``r`` moves in a constant radial magnetic
field ``B``.  Unlike the other three devices the electromechanical coupling
is a *gyrator*: the coupling coefficient ``Bl = 2*pi*N*r*B`` links the port
efforts and flows directly rather than through a stored field energy.

Table 2/3 of the paper list the coil self-inductance ``L = mu0 N r / 2`` with
stored energy ``L i^2 / 2`` and the force ``2*pi*N*r*B*i``.  The printed
voltage row only contains the inductive term ``L di/dt``; a conservative
model additionally needs the motional back-EMF ``Bl * u`` (otherwise
electrical and mechanical power do not balance), so the behavioral model here
implements the full gyrator::

    v_port = L di/dt + Bl * u
    f_port = - Bl * i        (same port-sign convention as the other models)

This addition is recorded as a documented deviation in EXPERIMENTS.md; the
force magnitude is exactly the paper's ``2 pi N r B i``.
"""

from __future__ import annotations

import math

from ..circuit.devices.behavioral import BehaviorContext
from ..constants import MU_0
from ..errors import TransducerError
from .base import ConservativeTransducer

__all__ = ["ElectrodynamicTransducer"]


class ElectrodynamicTransducer(ConservativeTransducer):
    """Moving-coil (voice-coil) transducer (fig. 2d).

    Parameters
    ----------
    turns:
        Number of coil turns ``N``.
    radius:
        Coil radius ``r`` [m].
    b_field:
        Radial magnetic flux density ``B`` [T] in the coil gap.
    mu_0:
        Vacuum permeability used for the self-inductance ``mu0 N r / 2``.
    """

    drive_kind = "current"
    label = "electrodynamic (voice-coil) transducer (fig. 2d)"

    def __init__(self, turns: float, radius: float, b_field: float,
                 mu_0: float = MU_0) -> None:
        if turns <= 0.0 or radius <= 0.0:
            raise TransducerError("turns and radius must be positive")
        self.turns = float(turns)
        self.radius = float(radius)
        self.b_field = float(b_field)
        self.mu_0 = float(mu_0)

    # ------------------------------------------------------------ analytics
    @property
    def coupling(self) -> float:
        """Gyrator coefficient ``Bl = 2 pi N r B`` [N/A or V*s/m]."""
        return 2.0 * math.pi * self.turns * self.radius * self.b_field

    def inductance(self, displacement=0.0):
        """Coil self-inductance ``mu0 N r / 2`` (Table 2, row d; x-independent)."""
        return 0.5 * self.mu_0 * self.turns * self.radius

    def coenergy(self, drive, displacement):
        """Magnetic co-energy ``L i^2 / 2`` (Table 2, row d).

        The co-energy does not depend on the displacement -- the
        electromechanical coupling of a voice coil is a gyrator, not an
        energy-storage coupling, which is why the energy-method recipe alone
        yields zero force for this device (see module docstring).
        """
        return 0.5 * self.inductance(displacement) * drive * drive

    def charge_or_flux(self, drive, displacement):
        """Flux linkage ``L i`` of the coil self-inductance."""
        return self.inductance(displacement) * drive

    def force(self, drive, displacement):
        """Force contribution ``- Bl * i`` (magnitude = Table 3's ``2 pi N r B i``)."""
        return -self.coupling * drive

    def back_emf(self, velocity) -> float:
        """Motional EMF ``Bl * u`` induced by the coil velocity."""
        return self.coupling * velocity

    def characteristic_scales(self) -> tuple[float, float]:
        return (1.0, self.radius)

    def parameters(self) -> dict[str, float]:
        return {
            "N": self.turns,
            "r": self.radius,
            "B": self.b_field,
            "mu0": self.mu_0,
        }

    def parameter_attributes(self) -> dict[str, str]:
        return {"N": "turns", "r": "radius", "B": "b_field"}

    # ------------------------------------------------------------ behaviour
    def _behavior_current_driven(self, closed_form: bool, x0: float):
        """Gyrator behaviour: overrides the energy-method default.

        ``closed_form`` is accepted for API symmetry but both paths are the
        same here because the coupling is not derivable from the co-energy.
        """
        inductance = self.inductance()
        coupling = self.coupling

        def behavior(ctx: BehaviorContext) -> None:
            voltage = ctx.across("elec")
            velocity = ctx.across("mech")
            displacement = ctx.integ(velocity, key="x", initial=x0)
            current = ctx.unknown("i")
            flux = inductance * current
            ctx.contribute("elec", current)
            ctx.equation("i", voltage - ctx.ddt(flux, key="flux") - coupling * velocity)
            ctx.contribute("mech", -coupling * current)
            ctx.record("x", displacement)
            ctx.record("force", -coupling * current)
            ctx.record("flux", flux)

        return behavior
