"""Linearized equivalent-circuit transducer models (the paper's comparison case).

The classical way to put a transducer into SPICE -- the approach the paper
argues against for large signals -- is to linearize it around a bias point
``(V0, x0)`` and represent it by

* the bias capacitance ``C0 = C(x0)``,
* a transduction factor ``Gamma`` coupling the electrical and mechanical
  sides through a pair of controlled sources,
* optionally an electrostatic spring-softening stiffness ``k_e = dF/dx``.

Two transduction factors are provided because the literature (and the paper
itself) is ambiguous:

``gamma_small_signal``
    ``dF/dV = eps0 epsr A V0 / (d + x0)^2`` -- the textbook (Tilmans)
    small-signal factor, also the formula printed in the paper.
``gamma_effective``
    ``F(V0, x0) / V0 = eps0 epsr A V0 / (2 (d + x0)^2)`` -- the factor that
    makes the *full-signal* linear model agree with the nonlinear model at
    the bias voltage, which is what figure 5 shows (perfect agreement at
    10 V, overshoot below, undershoot above).  The figure-5 comparison
    harness therefore uses this one by default.

EXPERIMENTS.md records the numerical discrepancy between the paper's printed
Gamma value (3.34675e-9 N/V) and both formulas evaluated with the Table 4
parameters.
"""

from __future__ import annotations

import math
from dataclasses import dataclass

from ..circuit.devices.behavioral import BehavioralDevice, BehaviorContext, Port
from ..circuit.netlist import Circuit
from ..errors import TransducerError
from ..natures import MECHANICAL_TRANSLATION
from .electrostatic import TransverseElectrostaticTransducer

__all__ = [
    "LinearizedTransducer",
    "linearize_transverse_electrostatic",
    "add_linearized_equivalent_circuit",
]


@dataclass(frozen=True)
class LinearizedTransducer:
    """Bias-point data of a linearized electrostatic transducer."""

    #: Bias (linearization) voltage [V].
    bias_voltage: float
    #: Bias displacement of the free plate [m].
    bias_displacement: float
    #: Capacitance at the bias point [F].
    c0: float
    #: Electrostatic force at the bias point [N] (magnitude).
    bias_force: float
    #: Small-signal transduction factor dF/dV at the bias [N/V].
    gamma_small_signal: float
    #: Effective through-origin factor F0/V0 [N/V] (figure-5 convention).
    gamma_effective: float
    #: Electrostatic spring softening dF/dx at the bias [N/m].
    electrostatic_stiffness: float

    def gamma(self, convention: str = "effective") -> float:
        """Return the transduction factor for the requested convention."""
        if convention == "effective":
            return self.gamma_effective
        if convention in ("small_signal", "tilmans"):
            return self.gamma_small_signal
        raise TransducerError(
            f"unknown transduction-factor convention {convention!r}")

    def summary(self) -> str:
        """Human-readable bias-point report (used by examples and EXPERIMENTS.md)."""
        return (
            f"V0 = {self.bias_voltage:g} V, x0 = {self.bias_displacement:.4g} m, "
            f"C0 = {self.c0:.5g} F, F0 = {self.bias_force:.5g} N, "
            f"Gamma(dF/dV) = {self.gamma_small_signal:.5g} N/V, "
            f"Gamma(F0/V0) = {self.gamma_effective:.5g} N/V, "
            f"k_e = {self.electrostatic_stiffness:.5g} N/m"
        )


def linearize_transverse_electrostatic(
        transducer: TransverseElectrostaticTransducer,
        bias_voltage: float,
        stiffness: float | None = None,
        bias_displacement: float | None = None,
        max_iterations: int = 100) -> LinearizedTransducer:
    """Linearize a transverse electrostatic transducer around a DC bias.

    Either the bias displacement is given directly, or the suspension
    stiffness is given and the quasi-static equilibrium
    ``k x0 = |F(V0, x0)|`` is solved by fixed-point iteration (the same
    operating point the paper's Table 4 lists as ``x0``).
    """
    if bias_displacement is None:
        if stiffness is None or stiffness <= 0.0:
            raise TransducerError(
                "either bias_displacement or a positive suspension stiffness is required")
        x0 = 0.0
        for _ in range(max_iterations):
            force = abs(transducer.force(bias_voltage, x0))
            x_next = force / stiffness
            if abs(x_next - x0) <= 1e-15 + 1e-12 * abs(x_next):
                x0 = x_next
                break
            x0 = x_next
        bias_displacement = x0
    c0 = float(transducer.capacitance(bias_displacement))
    bias_force = abs(float(transducer.force(bias_voltage, bias_displacement)))
    if bias_voltage == 0.0:
        gamma_small = 0.0
        gamma_effective = 0.0
    else:
        gamma_small = 2.0 * bias_force / abs(bias_voltage)
        gamma_effective = bias_force / abs(bias_voltage)
    # dF/dx by central difference of the closed form (scale: 1e-6 of the gap).
    step = 1e-6 * transducer.gap
    f_plus = float(transducer.force(bias_voltage, bias_displacement + step))
    f_minus = float(transducer.force(bias_voltage, bias_displacement - step))
    k_e = (f_plus - f_minus) / (2.0 * step)
    return LinearizedTransducer(
        bias_voltage=float(bias_voltage),
        bias_displacement=float(bias_displacement),
        c0=c0,
        bias_force=bias_force,
        gamma_small_signal=gamma_small,
        gamma_effective=gamma_effective,
        electrostatic_stiffness=k_e,
    )


def add_linearized_equivalent_circuit(circuit: Circuit, linearized: LinearizedTransducer,
                                      name: str, elec_p: str, elec_n: str,
                                      mech_p: str, mech_n: str,
                                      gamma_convention: str = "effective",
                                      include_spring_softening: bool = False) -> dict[str, object]:
    """Instantiate the linearized equivalent circuit into ``circuit``.

    The model consists of

    * the bias capacitance ``C0`` across the electrical port,
    * a VCCS injecting ``Gamma * v_elec`` as a force into the mechanical
      node ``mech_p`` (drive direction chosen so a positive drive voltage
      displaces the free plate in the positive direction, as in figure 5),
    * a VCCS drawing the motional current ``Gamma * velocity`` from the
      electrical port (the reciprocal branch of the two-port),
    * optionally a behavioral spring-softening element ``f = k_e * x``.

    Returns the created devices keyed by role.
    """
    gamma = linearized.gamma(gamma_convention)
    devices: dict[str, object] = {}
    devices["c0"] = circuit.capacitor(f"{name}_C0", elec_p, elec_n, linearized.c0)
    # Force injection into the mechanical node: current leaves mech_n (usually
    # the mechanical reference) and enters mech_p.
    devices["force"] = circuit.vccs(
        f"{name}_Gf", circuit.mechanical_node(mech_n), circuit.mechanical_node(mech_p),
        circuit.electrical_node(elec_p), circuit.electrical_node(elec_n), gamma)
    # Reciprocal motional current drawn from the electrical port.
    devices["motional"] = circuit.vccs(
        f"{name}_Gi", circuit.electrical_node(elec_p), circuit.electrical_node(elec_n),
        circuit.mechanical_node(mech_p), circuit.mechanical_node(mech_n), gamma)
    if include_spring_softening and linearized.electrostatic_stiffness != 0.0:
        k_e = linearized.electrostatic_stiffness

        def softening_behavior(ctx: BehaviorContext) -> None:
            velocity = ctx.across("mech")
            displacement = ctx.integ(velocity, key="x", initial=0.0)
            # dF/dx < 0 stiffens, > 0 softens the suspension; the contribution
            # opposes the suspension spring accordingly.
            ctx.contribute("mech", -k_e * displacement)
            ctx.record("x", displacement)

        softening = BehavioralDevice(
            f"{name}_ke",
            [Port("mech", circuit.mechanical_node(mech_p), circuit.mechanical_node(mech_n),
                  MECHANICAL_TRANSLATION)],
            softening_behavior,
            params={"k_e": k_e},
        )
        devices["softening"] = circuit.add(softening)
    return devices
