"""Electrostatic transducers: transverse (gap-closing) and lateral (parallel).

These are devices (a) and (b) of the paper's figure 2.

Transverse electrostatic transducer (fig. 2a, Listing 1)
    A parallel-plate capacitor whose *gap* changes with the displacement of
    the free plate: ``C(x) = eps0*epsr*A / (d + x)``.  Table 2 gives the
    co-energy ``C(x) v^2 / 2`` and Table 3 the port efforts::

        v_port  = (d + x)/(eps0 epsr A) * integral(i dt)
        f_port  = - eps0 epsr A v^2 / (2 (d + x)^2)

Lateral (parallel) electrostatic transducer (fig. 2b)
    The plates slide parallel to each other with constant gap ``d`` and
    overlap length ``l - x``: ``C(x) = eps0*epsr*h*(l - x)/d``.  The force is
    independent of the displacement: ``f = - eps0 epsr h v^2 / (2 d)``.

The ``gap_orientation`` option of the transverse device selects between the
paper's literal convention (``d + x``; positive displacement opens the gap)
and the gap-closing convention (``d - x``) used by the pull-in example, where
positive displacement closes the gap and the classic pull-in instability at
``x = d/3`` appears.
"""

from __future__ import annotations

from ..ad import value_of
from ..constants import EPSILON_0
from ..errors import TransducerError
from .base import ConservativeTransducer, numeric_parameter

__all__ = ["TransverseElectrostaticTransducer", "LateralElectrostaticTransducer"]


class TransverseElectrostaticTransducer(ConservativeTransducer):
    """Gap-closing parallel-plate electrostatic transducer (fig. 2a).

    Parameters
    ----------
    area:
        Active plate area ``A`` [m^2].
    gap:
        Rest gap ``d`` [m].
    epsilon_r:
        Relative permittivity of the dielectric (1 for air).
    gap_orientation:
        ``"paper"`` (default): the gap is ``d + x`` exactly as in Table 2 and
        Listing 1.  ``"closing"``: the gap is ``d - x`` so that positive
        displacement closes the gap (physically the attractive direction),
        which is the convention needed to study pull-in.
    epsilon_0:
        Vacuum permittivity; defaults to the paper's 8.8542e-12 F/m.
    """

    drive_kind = "voltage"
    label = "transverse electrostatic transducer (fig. 2a)"

    def __init__(self, area: float, gap: float, epsilon_r: float = 1.0,
                 gap_orientation: str = "paper", epsilon_0: float = EPSILON_0) -> None:
        if value_of(area) <= 0.0 or value_of(gap) <= 0.0 \
                or value_of(epsilon_r) <= 0.0:
            raise TransducerError("area, gap and epsilon_r must be positive")
        if gap_orientation not in ("paper", "closing"):
            raise TransducerError("gap_orientation must be 'paper' or 'closing'")
        # Geometry may be dual-seeded (see base.numeric_parameter): the
        # closed forms below then carry design-parameter sensitivities.
        self.area = numeric_parameter(area)
        self.gap = numeric_parameter(gap)
        self.epsilon_r = numeric_parameter(epsilon_r)
        self.gap_orientation = gap_orientation
        self.epsilon_0 = float(epsilon_0)

    # ------------------------------------------------------------ analytics
    def _effective_gap(self, displacement):
        if self.gap_orientation == "paper":
            return self.gap + displacement
        return self.gap - displacement

    def capacitance(self, displacement=0.0):
        """Input capacitance ``C(x)`` (Table 2, row a)."""
        gap = self._effective_gap(displacement)
        if gap <= 0.0:
            raise TransducerError("plates are in contact: effective gap is not positive")
        return self.epsilon_0 * self.epsilon_r * self.area / gap

    def coenergy(self, drive, displacement):
        """Co-energy ``C(x) v^2 / 2`` (Table 2, row a)."""
        return 0.5 * self.capacitance(displacement) * drive * drive

    def charge_or_flux(self, drive, displacement):
        """Charge ``q = C(x) v``."""
        return self.capacitance(displacement) * drive

    def force(self, drive, displacement):
        """Force contribution at the mechanical port (Table 3, row a).

        In the paper convention this is
        ``- eps0 epsr A v^2 / (2 (d + x)^2)``; with ``gap_orientation="closing"``
        the sign flips because the same attractive force now acts along the
        positive displacement direction.
        """
        gap = self._effective_gap(displacement)
        magnitude = 0.5 * self.epsilon_0 * self.epsilon_r * self.area * drive * drive / (gap * gap)
        return -magnitude if self.gap_orientation == "paper" else magnitude

    def voltage_from_charge(self, charge, displacement=0.0):
        """Port voltage for a given stored charge (Table 3 voltage row)."""
        return charge * self._effective_gap(displacement) / (
            self.epsilon_0 * self.epsilon_r * self.area)

    def stored_energy(self, charge, displacement=0.0):
        """Internal energy ``W(q, x) = q^2 (d + x) / (2 eps0 epsr A)``."""
        return 0.5 * charge * charge * self._effective_gap(displacement) / (
            self.epsilon_0 * self.epsilon_r * self.area)

    def pull_in_voltage(self, stiffness: float) -> float:
        """Classic pull-in voltage ``sqrt(8 k d^3 / (27 eps0 epsr A))``.

        Only meaningful for the gap-closing orientation; provided for the
        pull-in example and the DC-sweep benchmarks.
        """
        if stiffness <= 0.0:
            raise TransducerError("stiffness must be positive")
        return (8.0 * stiffness * self.gap ** 3
                / (27.0 * self.epsilon_0 * self.epsilon_r * self.area)) ** 0.5

    def pull_in_displacement(self) -> float:
        """Displacement at the pull-in fold, ``d / 3`` (gap-closing orientation)."""
        return self.gap / 3.0

    def characteristic_scales(self) -> tuple[float, float]:
        return (1.0, self.gap)

    def parameters(self) -> dict[str, float]:
        return {
            "A": value_of(self.area),
            "d": value_of(self.gap),
            "er": value_of(self.epsilon_r),
            "e0": self.epsilon_0,
        }

    def parameter_attributes(self) -> dict[str, str]:
        return {"A": "area", "d": "gap", "er": "epsilon_r"}


class LateralElectrostaticTransducer(ConservativeTransducer):
    """Parallel (sliding-plate / comb-like) electrostatic transducer (fig. 2b).

    Parameters
    ----------
    depth:
        Structure depth ``h`` [m] (out-of-plane dimension).
    length:
        Electrode overlap length at rest ``l`` [m].
    gap:
        Constant plate separation ``d`` [m].
    epsilon_r:
        Relative permittivity.
    """

    drive_kind = "voltage"
    label = "parallel (lateral) electrostatic transducer (fig. 2b)"

    def __init__(self, depth: float, length: float, gap: float, epsilon_r: float = 1.0,
                 epsilon_0: float = EPSILON_0) -> None:
        if value_of(depth) <= 0.0 or value_of(length) <= 0.0 \
                or value_of(gap) <= 0.0 or value_of(epsilon_r) <= 0.0:
            raise TransducerError("depth, length, gap and epsilon_r must be positive")
        self.depth = numeric_parameter(depth)
        self.length = numeric_parameter(length)
        self.gap = numeric_parameter(gap)
        self.epsilon_r = numeric_parameter(epsilon_r)
        self.epsilon_0 = float(epsilon_0)

    def capacitance(self, displacement=0.0):
        """Input capacitance ``C(x) = eps0 epsr h (l - x) / d`` (Table 2, row b)."""
        overlap = self.length - displacement
        if overlap <= 0.0:
            raise TransducerError("plates have fully disengaged: overlap is not positive")
        return self.epsilon_0 * self.epsilon_r * self.depth * overlap / self.gap

    def coenergy(self, drive, displacement):
        """Co-energy ``C(x) v^2 / 2`` (Table 2, row b)."""
        return 0.5 * self.capacitance(displacement) * drive * drive

    def charge_or_flux(self, drive, displacement):
        """Charge ``q = C(x) v``."""
        return self.capacitance(displacement) * drive

    def force(self, drive, displacement):
        """Force ``- eps0 epsr h v^2 / (2 d)`` -- independent of x (Table 3, row b)."""
        return -0.5 * self.epsilon_0 * self.epsilon_r * self.depth * drive * drive / self.gap

    def voltage_from_charge(self, charge, displacement=0.0):
        """Port voltage ``q d / (eps0 epsr h (l - x))`` (Table 3 voltage row)."""
        return charge * self.gap / (
            self.epsilon_0 * self.epsilon_r * self.depth * (self.length - displacement))

    def characteristic_scales(self) -> tuple[float, float]:
        return (1.0, self.length)

    def parameters(self) -> dict[str, float]:
        return {
            "h": value_of(self.depth),
            "l": value_of(self.length),
            "d": value_of(self.gap),
            "er": value_of(self.epsilon_r),
            "e0": self.epsilon_0,
        }

    def parameter_attributes(self) -> dict[str, str]:
        return {"h": "depth", "l": "length", "d": "gap", "er": "epsilon_r"}
