"""Energy-based lumped-parameter models of electromechanical transducers.

This package is the paper's primary contribution:

* :mod:`repro.transducers.energy_method` mechanises the four-step recipe
  ("express the internal energy, derive it with respect to each port's state
  variable") with automatic differentiation,
* :mod:`repro.transducers.electrostatic`, :mod:`~repro.transducers.electromagnetic`
  and :mod:`~repro.transducers.electrodynamic` implement the four transducers
  of figure 2 / tables 2-3 as nonlinear behavioral devices,
* :mod:`repro.transducers.linearized` builds the classical linearized
  equivalent-circuit models (transduction factor Gamma) the paper compares
  against in figure 5,
* :mod:`repro.transducers.library` is a small registry used by the examples
  and the HDL code generator.
"""

from .base import ConservativeTransducer, TransducerPortSpec
from .energy_method import (
    EnergyDerivation,
    derive_efforts,
    differentiate_coenergy,
    partials_with_sensitivities,
)
from .electrostatic import (
    TransverseElectrostaticTransducer,
    LateralElectrostaticTransducer,
)
from .electromagnetic import ElectromagneticTransducer
from .electrodynamic import ElectrodynamicTransducer
from .linearized import (
    LinearizedTransducer,
    linearize_transverse_electrostatic,
    add_linearized_equivalent_circuit,
)
from .library import TRANSDUCER_LIBRARY, create_transducer

__all__ = [
    "ConservativeTransducer",
    "TransducerPortSpec",
    "EnergyDerivation",
    "derive_efforts",
    "differentiate_coenergy",
    "partials_with_sensitivities",
    "TransverseElectrostaticTransducer",
    "LateralElectrostaticTransducer",
    "ElectromagneticTransducer",
    "ElectrodynamicTransducer",
    "LinearizedTransducer",
    "linearize_transverse_electrostatic",
    "add_linearized_equivalent_circuit",
    "TRANSDUCER_LIBRARY",
    "create_transducer",
]
