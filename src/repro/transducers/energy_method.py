"""The paper's energy-method recipe, mechanised with automatic differentiation.

The paper derives behavioral models of conservative transducers in four
steps:

1. list the effort, flow and state variables of each port,
2. express the total internal energy (or co-energy) of the transducer as a
   function of the state variables,
3. derive the energy with respect to the state variable of each port to
   obtain the corresponding effort,
4. replace time derivatives of state variables by the corresponding flow
   variables.

Steps 2-3 are implemented by :func:`derive_efforts` /
:func:`differentiate_coenergy`: the user supplies the (co-)energy as a plain
Python function and the partial derivatives are evaluated with forward-mode
AD -- no hand-derived expressions required.  The helpers return the efforts
as *circuit-level dual numbers*: when the input state variables carry
sensitivities with respect to the MNA unknowns (because they were produced by
:class:`~repro.circuit.devices.behavioral.BehaviorContext`), the chain rule

``d(effort_k)/d(unknown) = sum_j Hessian[k, j] * d(state_j)/d(unknown)``

is applied so the Newton and AC linearizations of the resulting behavioral
device remain consistent.  The gradient is exact (AD); the Hessian is
obtained by central differences of the AD gradient with per-variable
characteristic scales, which is far better conditioned than double finite
differencing.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable, Sequence

import numpy as np

from ..ad import Dual, gradient
from ..errors import TransducerError

__all__ = [
    "EnergyDerivation",
    "partials_with_sensitivities",
    "differentiate_coenergy",
    "derive_efforts",
    "hessian_scaled",
]


def hessian_scaled(func: Callable[..., object], values: Sequence[float],
                   scales: Sequence[float] | None = None,
                   relative_step: float = 1e-4) -> np.ndarray:
    """Hessian of ``func`` at ``values`` by central differences of the AD gradient.

    ``scales`` provides the characteristic magnitude of each variable so the
    finite-difference step stays meaningful even when the operating value is
    zero (e.g. a displacement of 0 m around a 150 um gap).
    """
    values = np.asarray(list(values), dtype=float)
    n = values.size
    if scales is None:
        scales = np.maximum(np.abs(values), 1.0)
    else:
        scales = np.asarray(list(scales), dtype=float)
        if scales.shape != values.shape:
            raise TransducerError("scales must have one entry per variable")
        if np.any(scales <= 0.0):
            raise TransducerError("characteristic scales must be positive")
    hess = np.zeros((n, n))
    for j in range(n):
        step = relative_step * max(abs(values[j]), scales[j])
        forward = values.copy()
        backward = values.copy()
        forward[j] += step
        backward[j] -= step
        grad_fwd = gradient(func, forward)
        grad_bwd = gradient(func, backward)
        hess[:, j] = (grad_fwd - grad_bwd) / (2.0 * step)
    return 0.5 * (hess + hess.T)


def partials_with_sensitivities(func: Callable[..., object],
                                variables: Sequence[object],
                                scales: Sequence[float] | None = None) -> list[object]:
    """Partial derivatives of ``func`` w.r.t. each variable, chain-rule aware.

    ``variables`` may mix plain floats and :class:`~repro.ad.Dual` values.
    The k-th returned element is ``d func / d variable_k`` evaluated at the
    value parts; when any input is a dual, the result is a dual whose
    derivative part is ``sum_j H[k, j] * variables[j].deriv`` (chain rule
    through the second derivatives of ``func``).
    """
    values = [float(getattr(v, "value", v)) for v in variables]
    grad = gradient(func, values)
    dual_inputs = [v for v in variables if isinstance(v, Dual)]
    if not dual_inputs:
        return [float(g) for g in grad]
    hess = hessian_scaled(func, values, scales=scales)
    template = dual_inputs[0].deriv
    outputs: list[object] = []
    for k in range(len(values)):
        deriv = np.zeros_like(template)
        for j, variable in enumerate(variables):
            if isinstance(variable, Dual) and hess[k, j] != 0.0:
                deriv = deriv + hess[k, j] * variable.deriv
        outputs.append(Dual(float(grad[k]), deriv))
    return outputs


def differentiate_coenergy(coenergy: Callable[[object, object], object],
                           drive: object, displacement: object,
                           scales: tuple[float, float] | None = None) -> tuple[object, object]:
    """Return ``(d W*/d drive, d W*/d x)`` for a two-port co-energy function.

    For a voltage-driven (capacitive) transducer the first partial is the
    charge and the second the force contribution at the mechanical port; for
    a current-driven (inductive) transducer the first partial is the flux
    linkage.  This is exactly the relation behind the paper's Table 3.
    """
    results = partials_with_sensitivities(coenergy, [drive, displacement], scales=scales)
    return results[0], results[1]


@dataclass(frozen=True)
class EnergyDerivation:
    """Record of one energy-method derivation (used for reports and tests).

    Attributes
    ----------
    port_states:
        Names of the state variables in the order passed to the energy
        function (step 1 of the recipe).
    efforts:
        Names of the resulting efforts, one per state (step 3).
    energy_description:
        Human-readable description of the energy expression (step 2).
    """

    port_states: tuple[str, ...]
    efforts: tuple[str, ...]
    energy_description: str

    def summary(self) -> str:
        """One-line summary of the derivation."""
        pairs = ", ".join(
            f"{effort} = dW/d{state}" for state, effort in zip(self.port_states, self.efforts))
        return f"{self.energy_description}: {pairs}"


def derive_efforts(energy: Callable[..., object], states: Sequence[float],
                   scales: Sequence[float] | None = None) -> np.ndarray:
    """Numerically evaluate all port efforts from an internal-energy function.

    This is the plain-number variant of :func:`partials_with_sensitivities`
    used by the tests and benchmarks to check the closed forms of Table 3:
    ``efforts[k] = d energy / d state_k`` evaluated at ``states``.
    """
    if len(states) == 0:
        raise TransducerError("derive_efforts needs at least one state variable")
    return gradient(energy, [float(s) for s in states])
