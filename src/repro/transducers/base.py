"""Common interface of the conservative transducer models.

Each transducer class provides three complementary views of the same device,
mirroring how the paper uses them:

1. **Analytical quantities** -- capacitance/inductance, stored (co-)energy,
   charge/flux and force as plain functions of the drive and displacement
   (Tables 2 and 3), used directly by tests, the PXT reference solutions and
   the quasi-static examples.
2. **A nonlinear behavioral device** (:meth:`ConservativeTransducer.build_device`)
   for the circuit simulator, i.e. what the HDL-A model of Listing 1
   elaborates to.  By default the port contributions are obtained from the
   co-energy with the energy-method AD machinery; ``closed_form=True``
   switches to the hand-derived Table 3 expressions (both are tested to
   agree).
3. **A linearized equivalent circuit** via :mod:`repro.transducers.linearized`.

Port and sign conventions (identical to Listing 1 of the paper):

* the electrical port across variable is the voltage ``v``, the mechanical
  port across variable is the velocity of the free plate,
* the displacement ``x`` is the running integral of that velocity, starting
  from the bias displacement ``x0``,
* the gap of the transverse devices is ``d + x`` (as printed in Table 2),
* the mechanical contribution is the Table 3 force expression, contributed
  with the standard "flow from pin c through the device to pin d"
  convention.  With the drive polarity of the paper's figure-3 system this
  produces positive displacements for positive drive voltages, matching the
  traces of figure 5.
"""

from __future__ import annotations

from abc import ABC, abstractmethod
from dataclasses import dataclass
from typing import Sequence

from ..circuit.devices.behavioral import BehavioralDevice, BehaviorContext, Port
from ..circuit.netlist import Circuit, Node
from ..errors import TransducerError
from ..natures import ELECTRICAL, MECHANICAL_TRANSLATION
from .energy_method import EnergyDerivation, differentiate_coenergy

__all__ = ["TransducerPortSpec", "ConservativeTransducer", "numeric_parameter"]


def numeric_parameter(x):
    """Coerce a constructor parameter to float, but keep duals intact.

    Transducer geometry parameters seeded as :class:`repro.ad.Dual` flow
    through the closed-form evaluation methods (capacitance, force,
    co-energy) by the chain rule, which is how the optimization layer gets
    exact design-parameter gradients.  Dual-seeded instances are for direct
    evaluation only -- circuit devices and HDL code generation need plain
    floats (``parameters()`` strips the derivative part).
    """
    from ..ad import is_dual

    return x if is_dual(x) else float(x)


@dataclass(frozen=True)
class TransducerPortSpec:
    """Description of one transducer port (used for documentation/reports)."""

    name: str
    nature_name: str
    effort: str
    flow: str
    state: str


class ConservativeTransducer(ABC):
    """Base class of the four conservative transducers of figure 2."""

    #: ``"voltage"`` for capacitive devices (electrostatic), ``"current"`` for
    #: inductive devices (electromagnetic, electrodynamic).
    drive_kind: str = "voltage"

    #: Human-readable label used in reports and the transducer library.
    label: str = "conservative transducer"

    # ------------------------------------------------------------ analytics
    @abstractmethod
    def coenergy(self, drive, displacement):
        """Co-energy W*(drive, x) stored in the transducer.

        For capacitive devices the drive is the port voltage and
        ``W* = C(x) v^2 / 2``; for inductive devices the drive is the port
        current and ``W* = L(x) i^2 / 2`` (Table 2 of the paper).  The
        implementation must be written with plain arithmetic so it can be
        evaluated on AD dual numbers.
        """

    @abstractmethod
    def force(self, drive, displacement):
        """Closed-form force contribution at the mechanical port (Table 3)."""

    def charge_or_flux(self, drive, displacement):
        """Closed-form charge (capacitive) or flux linkage (inductive).

        Default implementation differentiates the co-energy; subclasses
        override with the simple closed form ``C(x) v`` / ``L(x) i``.
        """
        partial_drive, _ = differentiate_coenergy(
            self.coenergy, float(drive), float(displacement),
            scales=self.characteristic_scales())
        return partial_drive

    def energy_method_force(self, drive, displacement) -> float:
        """Force obtained from the co-energy by AD (step 3 of the recipe)."""
        _, partial_x = differentiate_coenergy(
            self.coenergy, float(drive), float(displacement),
            scales=self.characteristic_scales())
        return float(partial_x)

    @abstractmethod
    def characteristic_scales(self) -> tuple[float, float]:
        """Characteristic magnitudes of (drive, displacement) for numerics."""

    def derivation(self) -> EnergyDerivation:
        """Describe the energy-method derivation of this transducer."""
        drive_state = "charge q" if self.drive_kind == "voltage" else "flux linkage"
        return EnergyDerivation(
            port_states=(drive_state, "displacement x"),
            efforts=("electrical effort", "mechanical effort"),
            energy_description=self.label,
        )

    def port_specs(self) -> tuple[TransducerPortSpec, TransducerPortSpec]:
        """Port descriptions (electrical + mechanical translation)."""
        return (
            TransducerPortSpec("elec", ELECTRICAL.name, "voltage", "current", "charge"),
            TransducerPortSpec("mech", MECHANICAL_TRANSLATION.name, "force",
                               "velocity", "displacement"),
        )

    # ------------------------------------------------------------ behaviour
    def _behavior_voltage_driven(self, closed_form: bool, x0: float):
        """Behaviour callable for capacitive (voltage-driven) transducers."""
        scales = self.characteristic_scales()

        def behavior(ctx: BehaviorContext) -> None:
            voltage = ctx.across("elec")
            velocity = ctx.across("mech")
            displacement = ctx.integ(velocity, key="x", initial=x0)
            if closed_form:
                charge = self.charge_or_flux(voltage, displacement)
                force = self.force(voltage, displacement)
            else:
                charge, force = differentiate_coenergy(
                    self.coenergy, voltage, displacement, scales=scales)
            ctx.contribute("elec", ctx.ddt(charge, key="q"))
            ctx.contribute("mech", force)
            ctx.record("x", displacement)
            ctx.record("force", force)
            ctx.record("charge", charge)

        return behavior

    def _behavior_current_driven(self, closed_form: bool, x0: float):
        """Behaviour callable for inductive (current-driven) transducers.

        The port current is an extra unknown ``i``; the implicit branch
        equation ``v - d(flux)/dt = 0`` plays the role of the HDL-A equation
        block.
        """
        scales = self.characteristic_scales()

        def behavior(ctx: BehaviorContext) -> None:
            voltage = ctx.across("elec")
            velocity = ctx.across("mech")
            displacement = ctx.integ(velocity, key="x", initial=x0)
            current = ctx.unknown("i")
            if closed_form:
                flux = self.charge_or_flux(current, displacement)
                force = self.force(current, displacement)
            else:
                flux, force = differentiate_coenergy(
                    self.coenergy, current, displacement, scales=scales)
            ctx.contribute("elec", current)
            ctx.equation("i", voltage - ctx.ddt(flux, key="flux"))
            ctx.contribute("mech", force)
            ctx.record("x", displacement)
            ctx.record("force", force)
            ctx.record("flux", flux)

        return behavior

    def build_device(self, name: str, elec_p: Node, elec_n: Node,
                     mech_p: Node, mech_n: Node, *, x0: float = 0.0,
                     closed_form: bool = False) -> BehavioralDevice:
        """Elaborate this transducer into a behavioral circuit device.

        Parameters
        ----------
        name:
            Device name in the netlist.
        elec_p, elec_n:
            Electrical terminal nodes (pins a, b of Listing 1).
        mech_p, mech_n:
            Mechanical terminal nodes (pins c, d of Listing 1); ``mech_n`` is
            normally the mechanical reference frame.
        x0:
            Initial/bias displacement of the free plate [m].
        closed_form:
            Use the hand-derived Table 3 expressions instead of the
            energy-method AD derivation (the default).  The two agree to the
            accuracy of the Hessian chain rule and are cross-checked in the
            test-suite.
        """
        ports = [
            Port(name="elec", p=elec_p, n=elec_n, nature=ELECTRICAL),
            Port(name="mech", p=mech_p, n=mech_n, nature=MECHANICAL_TRANSLATION),
        ]
        if self.drive_kind == "voltage":
            behavior = self._behavior_voltage_driven(closed_form, x0)
            extra: Sequence[str] = ()
        elif self.drive_kind == "current":
            behavior = self._behavior_current_driven(closed_form, x0)
            extra = ("i",)
        else:
            raise TransducerError(f"unknown drive kind {self.drive_kind!r}")
        device = BehavioralDevice(
            name,
            ports,
            behavior,
            params=self.parameters(),
            state_initials={"x": float(x0)},
            extra_unknowns=extra,
            parameter_bindings={
                generic: (self, attribute)
                for generic, attribute in self.parameter_attributes().items()
            },
        )
        #: Back-reference for introspection (which transducer produced this
        #: device); the parameter bindings above keep the device's tunable
        #: parameters and the transducer attributes in lock-step.
        device.transducer = self
        #: The energy-method behaviour differentiates the co-energy with its
        #: own dual/Hessian machinery and cannot carry foreign parameter
        #: seeds; only the closed-form behaviour is exactly dual-seedable.
        device.dual_parameter_safe = bool(closed_form)
        return device

    def add_to_circuit(self, circuit: Circuit, name: str, elec_p: str, elec_n: str,
                       mech_p: str, mech_n: str, **kwargs) -> BehavioralDevice:
        """Convenience wrapper: create nodes by name and add the device."""
        device = self.build_device(
            name,
            circuit.electrical_node(elec_p), circuit.electrical_node(elec_n),
            circuit.mechanical_node(mech_p), circuit.mechanical_node(mech_n),
            **kwargs)
        circuit.add(device)
        return device

    # -------------------------------------------------------------- metadata
    @abstractmethod
    def parameters(self) -> dict[str, float]:
        """Constructor parameters (the HDL-A generics) as a dictionary."""

    def parameter_attributes(self) -> dict[str, str]:
        """Tunable generic name -> instance attribute mapping.

        These are the parameters the sensitivity layer can seed with AD
        duals on a built device (physical constants like ``e0``/``mu0`` are
        deliberately excluded).  The behaviour closures read the attributes
        directly, so a seeded attribute flows through the closed-form
        evaluation by the chain rule -- which requires the device to be
        built with ``closed_form=True`` (the energy-method path
        finite-differences its Hessian on plain floats and cannot carry
        foreign seeds).
        """
        return {}

    def __repr__(self) -> str:
        params = ", ".join(f"{k}={v:g}" for k, v in self.parameters().items())
        return f"{type(self).__name__}({params})"
