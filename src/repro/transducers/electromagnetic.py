"""Electromagnetic (reluctance) transducer -- figure 2c of the paper.

A coil of ``N`` turns on a fixed yoke attracts a movable plate across an air
gap ``d + x``.  Table 2 gives the inductance and co-energy::

    L(x)  = mu0 * A * N^2 / (2 (d + x))
    W*    = mu0 * A * N^2 * i^2 / (4 (d + x))

and Table 3 the port efforts::

    v_port = d/dt [ L(x) i ]          (the paper prints the L(x) di/dt term)
    f_port = - mu0 A N^2 i^2 / (4 (d + x)^2)

The electrical port of the behavioral model is current-driven: the branch
current is an extra MNA unknown and the implicit equation
``v - d(flux)/dt = 0`` is the HDL-A equation block.  At DC the port is a
short circuit (as an inductor must be) and the force settles to the constant
reluctance force of the bias current.
"""

from __future__ import annotations

from ..constants import MU_0
from ..errors import TransducerError
from .base import ConservativeTransducer

__all__ = ["ElectromagneticTransducer"]


class ElectromagneticTransducer(ConservativeTransducer):
    """Variable-gap reluctance actuator (fig. 2c).

    Parameters
    ----------
    area:
        Magnetic cross-section area ``A`` [m^2].
    turns:
        Number of coil turns ``N``.
    gap:
        Rest air gap ``d`` [m] (the total gap is ``2*(d+x)``; the factor two
        for the two gap crossings is what produces the ``/2`` in ``L``).
    mu_0:
        Vacuum permeability (exposed for unit tests).
    """

    drive_kind = "current"
    label = "electromagnetic (reluctance) transducer (fig. 2c)"

    def __init__(self, area: float, turns: float, gap: float, mu_0: float = MU_0) -> None:
        if area <= 0.0 or turns <= 0.0 or gap <= 0.0:
            raise TransducerError("area, turns and gap must be positive")
        self.area = float(area)
        self.turns = float(turns)
        self.gap = float(gap)
        self.mu_0 = float(mu_0)

    def inductance(self, displacement=0.0):
        """Input inductance ``L(x) = mu0 A N^2 / (2 (d + x))`` (Table 2, row c)."""
        gap = self.gap + displacement
        if gap <= 0.0:
            raise TransducerError("armature is in contact: effective gap is not positive")
        return self.mu_0 * self.area * self.turns ** 2 / (2.0 * gap)

    def coenergy(self, drive, displacement):
        """Co-energy ``L(x) i^2 / 2 = mu0 A N^2 i^2 / (4 (d + x))`` (Table 2, row c)."""
        return 0.5 * self.inductance(displacement) * drive * drive

    def charge_or_flux(self, drive, displacement):
        """Flux linkage ``lambda = L(x) i``."""
        return self.inductance(displacement) * drive

    def force(self, drive, displacement):
        """Force ``- mu0 A N^2 i^2 / (4 (d + x)^2)`` (Table 3, row c)."""
        gap = self.gap + displacement
        return -self.mu_0 * self.area * self.turns ** 2 * drive * drive / (4.0 * gap * gap)

    def voltage(self, current, didt, displacement=0.0):
        """Quasi-static port voltage ``L(x) di/dt`` as printed in Table 3."""
        return self.inductance(displacement) * didt

    def characteristic_scales(self) -> tuple[float, float]:
        return (1.0, self.gap)

    def parameters(self) -> dict[str, float]:
        return {
            "A": self.area,
            "N": self.turns,
            "d": self.gap,
            "mu0": self.mu_0,
        }

    def parameter_attributes(self) -> dict[str, str]:
        return {"A": "area", "N": "turns", "d": "gap"}
