"""repro -- behavioral modeling and simulation of electromechanical transducers.

Reproduction of Romanowicz et al., "Modeling and Simulation of
Electromechanical Transducers in Microsystems using an Analog Hardware
Description Language" (ED&TC / DATE 1997).

The package provides, entirely in Python:

* :mod:`repro.natures` -- physical domains, generalized variables and the
  force-current / force-voltage analogies (the paper's Table 1),
* :mod:`repro.ad` -- forward-mode automatic differentiation used to derive
  port efforts from transducer internal energies,
* :mod:`repro.circuit` -- a SPICE-class multi-domain circuit simulator
  (MNA, DC/AC/transient, behavioral devices),
* :mod:`repro.hdl` -- an HDL-A-like analog hardware description language
  front-end that elaborates entities into simulatable behavioral devices,
* :mod:`repro.transducers` -- the four conservative electromechanical
  transducers of the paper (Tables 2/3) in energy-based, closed-form and
  linearized equivalent-circuit forms,
* :mod:`repro.linalg` -- the shared factorization-caching linear-solver
  core (dense LU / SuperLU / CG backends, fingerprint-keyed factorization
  reuse, sparsity-pattern caching) behind every analysis layer,
* :mod:`repro.fem` -- a 2D electrostatic finite-element solver standing in
  for ANSYS, plus structural beam/chain models and harmonic analysis,
* :mod:`repro.pxt` -- the parameter extraction and HDL model generation tool,
* :mod:`repro.campaign` -- the simulation-campaign engine: declarative
  grid/Monte-Carlo/corner sweeps executed serially or on a process pool,
  with content-addressed result caching and columnar yield statistics,
* :mod:`repro.optim` -- the design-optimization and calibration engine:
  bounded/log parameter spaces, AD/finite-difference gradient objectives
  with content-addressed memoization, Nelder-Mead / projected gradient
  descent / multi-start solvers on the campaign backends, ROM-surrogate
  acceleration and Monte-Carlo yield optimization,
* :mod:`repro.system` -- the transducer + resonator microsystem of Figs. 3-5
  and the behavioral-versus-linearized comparison harness.

Quickstart::

    from repro.circuit import Circuit, Pulse, TransientAnalysis
    from repro.transducers import TransverseElectrostaticTransducer

    ckt = Circuit("electrostatic drive")
    ckt.voltage_source("VS", "a", "0", Pulse(0, 10, rise=2e-3, width=35e-3))
    TransverseElectrostaticTransducer(area=1e-4, gap=0.15e-3).add_to_circuit(
        ckt, "XDCR", "a", "0", "m", "0")
    ckt.mass("M1", "m", 1e-4)
    ckt.spring("K1", "m", "0", 200.0)
    ckt.damper("D1", "m", "0", 40e-3)
    result = TransientAnalysis(ckt, t_stop=60e-3, t_step=2e-4).run()
    displacement = result.signal("x(XDCR)")
"""

from __future__ import annotations

__version__ = "1.4.0"

from . import constants, errors, units
from .campaign import (
    CampaignResult,
    CampaignRunner,
    CircuitEvaluator,
    CornerSet,
    GridSweep,
    MonteCarlo,
    Normal,
    PointList,
    ResultCache,
    Uniform,
)
from .circuit import (
    ACAnalysis,
    BehavioralDevice,
    Circuit,
    DCSweepAnalysis,
    OperatingPointAnalysis,
    Pulse,
    Sine,
    SimulationOptions,
    TransientAnalysis,
)
from .linalg import FactorizationCache, FactorizedSolver, StructureCache
from .natures import ELECTRICAL, MECHANICAL_TRANSLATION, get_nature
from .optim import (
    GradientDescent,
    MultiStart,
    NelderMead,
    Objective,
    OptimResult,
    Parameter,
    ParameterSpace,
    SurrogateStrategy,
    YieldOptimizer,
)
from .rom import (
    BeamROMEvaluator,
    ReducedModel,
    krylov_rom,
    modal_rom,
    rom_from_beam,
    rom_from_chain,
    rom_from_matrices,
    rom_to_hdl,
)
from .system import (
    PAPER_PARAMETERS,
    MechanicalResonator,
    Table4Parameters,
    build_behavioral_system,
    build_linearized_system,
    run_figure5_comparison,
)
from .transducers import (
    ElectrodynamicTransducer,
    ElectromagneticTransducer,
    LateralElectrostaticTransducer,
    TransverseElectrostaticTransducer,
    create_transducer,
    linearize_transverse_electrostatic,
)

__all__ = [
    "__version__",
    "constants",
    "errors",
    "units",
    "Circuit",
    "Pulse",
    "Sine",
    "SimulationOptions",
    "OperatingPointAnalysis",
    "DCSweepAnalysis",
    "ACAnalysis",
    "TransientAnalysis",
    "BehavioralDevice",
    "CampaignRunner",
    "CampaignResult",
    "CircuitEvaluator",
    "GridSweep",
    "MonteCarlo",
    "CornerSet",
    "PointList",
    "Uniform",
    "Normal",
    "ResultCache",
    "FactorizedSolver",
    "FactorizationCache",
    "StructureCache",
    "ELECTRICAL",
    "MECHANICAL_TRANSLATION",
    "get_nature",
    "ReducedModel",
    "modal_rom",
    "krylov_rom",
    "rom_from_matrices",
    "rom_from_beam",
    "rom_from_chain",
    "rom_to_hdl",
    "BeamROMEvaluator",
    "Parameter",
    "ParameterSpace",
    "Objective",
    "OptimResult",
    "NelderMead",
    "GradientDescent",
    "MultiStart",
    "SurrogateStrategy",
    "YieldOptimizer",
    "TransverseElectrostaticTransducer",
    "LateralElectrostaticTransducer",
    "ElectromagneticTransducer",
    "ElectrodynamicTransducer",
    "create_transducer",
    "linearize_transverse_electrostatic",
    "MechanicalResonator",
    "Table4Parameters",
    "PAPER_PARAMETERS",
    "build_behavioral_system",
    "build_linearized_system",
    "run_figure5_comparison",
]
