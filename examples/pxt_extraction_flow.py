#!/usr/bin/env python3
"""The full PXT workflow: FE characterization -> HDL-A model -> system simulation.

This example reproduces the tool flow of the paper's figure 6:

1. the electrostatic field in the transducer gap is solved with the built-in
   finite-element solver for a sweep of electrode displacements and voltages,
2. PXT integrates the Maxwell stress and the field energy over the terminal
   surface to extract the force and capacitance macromodels,
3. an HDL-A behavioral model is generated from the piecewise-linear tables,
4. the generated model is parsed, elaborated and simulated inside the
   transducer + resonator system, and compared against the analytic
   behavioral model.

Run with::

    python examples/pxt_extraction_flow.py
"""

from __future__ import annotations

import numpy as np

from repro.circuit import Circuit, Pulse, TransientAnalysis
from repro.hdl import instantiate, parse
from repro.pxt import ParameterExtractor, generate_electrostatic_macromodel
from repro.pxt.macromodel import PiecewiseLinearModel
from repro.pxt.report import ExtractionReport
from repro.system import PAPER_PARAMETERS


def main() -> None:
    parameters = PAPER_PARAMETERS
    extractor = ParameterExtractor(area=parameters.area, gap=parameters.gap,
                                   epsilon_r=parameters.epsilon_r, nx=16, ny=12)

    # --- step 1 & 2: FE sweep and macro-parameter extraction -------------------
    displacements = sorted(np.linspace(-0.3 * parameters.gap, 0.3 * parameters.gap, 9))
    voltages = [2.0, 5.0, 10.0, 15.0]
    sweep = extractor.sweep([0.0], voltages)
    report = ExtractionReport(extractor, sweep,
                              title="PXT extraction (figure-6 workflow)")
    print(report.render())
    print()
    print(f"worst force deviation from the Table 3 closed form: "
          f"{100.0 * report.worst_force_deviation():.4f} %")
    print()

    capacitance_model = extractor.capacitance_model(displacements)
    force_model = PiecewiseLinearModel(
        tuple(displacements),
        tuple(extractor.solve_point(x, parameters.dc_voltage).force for x in displacements),
        quantity="force", unit="N")

    # --- step 3: HDL-A model generation ----------------------------------------
    source = generate_electrostatic_macromodel(
        "pxt_eletran", capacitance_model, force_model, parameters.dc_voltage)
    print("Generated HDL-A model:")
    print(source)

    # --- step 4: system simulation with the generated model --------------------
    circuit = Circuit("PXT-generated transducer + resonator")
    drive = Pulse(0.0, 10.0, delay=2e-3, rise=2e-3, width=40e-3)
    circuit.voltage_source("VS", "a", "0", drive)
    module = parse(source)
    device = instantiate(
        module, "pxt_eletran", name="XDCR", generics={"vref": parameters.dc_voltage},
        pins={"a": circuit.electrical_node("a"), "b": circuit.ground,
              "c": circuit.mechanical_node("m"), "e": circuit.ground})
    circuit.add(device)
    parameters.resonator().add_to_circuit(circuit, "m")

    result = TransientAnalysis(circuit, t_stop=45e-3, t_step=2e-4).run()
    plateau = result.final("x(res_m)")
    analytic = abs(parameters.transducer().force(10.0, 0.0)) / parameters.stiffness
    print("System simulation with the PXT-generated model:")
    print(f"  plateau displacement (PXT model) : {plateau:.4e} m")
    print(f"  analytic quasi-static value      : {analytic:.4e} m")
    print(f"  deviation                        : {abs(plateau - analytic) / analytic * 100:.3f} %")


if __name__ == "__main__":
    main()
