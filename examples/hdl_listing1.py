#!/usr/bin/env python3
"""Parse the paper's Listing 1 and simulate it in the figure-3 system.

The HDL-A source of the transverse electrostatic transducer (Listing 1 of the
paper) is parsed by the built-in HDL front-end, elaborated into a behavioral
device, connected to the Table-4 resonator, and excited with the three pulse
amplitudes of figure 5.  The displacement plateaus demonstrate the V^2 force
law directly from the HDL text.

Run with::

    python examples/hdl_listing1.py
"""

from __future__ import annotations

from repro.circuit import Circuit, TransientAnalysis
from repro.hdl import instantiate, parse
from repro.hdl.codegen import LISTING1_SOURCE
from repro.system import PAPER_PARAMETERS
from repro.system.microsystem import build_drive_waveform


def main() -> None:
    print("Listing 1 (HDL-A source of the transverse electrostatic transducer):")
    print(LISTING1_SOURCE)

    module = parse(LISTING1_SOURCE)
    entity = module.entity("eletran")
    print(f"parsed entity {entity.name!r}: generics {entity.generic_names()}, "
          f"pins {entity.pin_names()}")
    print()

    print(" drive   plateau displacement   ratio to 10 V value")
    reference = None
    for amplitude in (5.0, 10.0, 15.0):
        circuit = Circuit("listing-1 system")
        drive = build_drive_waveform(amplitude)
        circuit.voltage_source("VS", "a", "0", drive)
        device = instantiate(
            module, "eletran", name="XDCR",
            generics={"A": PAPER_PARAMETERS.area, "d": PAPER_PARAMETERS.gap,
                      "er": PAPER_PARAMETERS.epsilon_r},
            pins={"a": circuit.electrical_node("a"), "b": circuit.ground,
                  "c": circuit.mechanical_node("m"), "e": circuit.ground})
        circuit.add(device)
        PAPER_PARAMETERS.resonator().add_to_circuit(circuit, "m")
        t_plateau = drive.delay + drive.rise + drive.width
        result = TransientAnalysis(circuit, t_stop=t_plateau, t_step=2e-4).run()
        plateau = result.final("x(XDCR)")
        if amplitude == 10.0:
            reference = plateau
        ratio = plateau / reference if reference else float("nan")
        print(f"  {amplitude:4.1f} V   {plateau:.4e} m        "
              f"{ratio:.3f}" if reference else
              f"  {amplitude:4.1f} V   {plateau:.4e} m")
    print()
    print("the 5/10/15 V plateaus scale as (V/10)^2 = 0.25 / 1.0 / 2.25, i.e. the")
    print("large-signal V^2 force law comes straight out of the parsed HDL model.")


if __name__ == "__main__":
    main()
