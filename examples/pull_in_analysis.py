#!/usr/bin/env python3
"""Pull-in analysis of a gap-closing electrostatic actuator.

The classic large-signal effect that linearized transducer models cannot
capture is electrostatic pull-in: beyond one third of the gap the attractive
force grows faster than the suspension can restore and the plates snap
together.  This example uses the gap-closing orientation of the transverse
electrostatic transducer, sweeps the drive voltage with a DC sweep, and
compares the onset of instability with the closed-form pull-in voltage
``sqrt(8 k d^3 / (27 eps0 A))``.

Run with::

    python examples/pull_in_analysis.py
"""

from __future__ import annotations

import numpy as np

from repro.circuit import Circuit, DCSweepAnalysis
from repro.transducers import TransverseElectrostaticTransducer

AREA = 4e-8        # 200 um x 200 um plate
GAP = 2e-6         # 2 um gap
STIFFNESS = 2.0    # N/m suspension
MASS = 1e-9        # kg
DAMPING = 1e-5     # N*s/m


def main() -> None:
    transducer = TransverseElectrostaticTransducer(
        area=AREA, gap=GAP, gap_orientation="closing")
    pull_in_voltage = transducer.pull_in_voltage(STIFFNESS)
    pull_in_displacement = transducer.pull_in_displacement()
    print("Gap-closing electrostatic actuator")
    print(f"  plate area          : {AREA:.2e} m^2")
    print(f"  gap                 : {GAP:.2e} m")
    print(f"  suspension stiffness: {STIFFNESS:.2f} N/m")
    print(f"  analytic pull-in    : {pull_in_voltage:.3f} V at x = d/3 = "
          f"{pull_in_displacement:.2e} m")
    print()

    circuit = Circuit("pull-in sweep")
    circuit.voltage_source("VS", "a", "0", 0.0)
    transducer.add_to_circuit(circuit, "XDCR", "a", "0", "m", "0")
    circuit.mass("M1", "m", MASS)
    circuit.spring("K1", "m", "0", STIFFNESS)
    circuit.damper("D1", "m", "0", DAMPING)

    voltages = np.linspace(0.0, 1.05 * pull_in_voltage, 60)
    sweep = DCSweepAnalysis(circuit, "VS", voltages, continue_on_failure=True).run()
    forces = sweep.column("force(XDCR)")

    print("  V [V]    electrostatic force [N]   equilibrium displacement [m]")
    last_stable = 0.0
    for voltage, force in zip(voltages, forces):
        if np.isnan(force):
            print(f"  {voltage:6.2f}   (no stable quasi-static solution -- pulled in)")
            continue
        displacement = abs(force) / STIFFNESS
        marker = ""
        if displacement > pull_in_displacement:
            marker = "  <-- beyond d/3: unstable branch"
        else:
            last_stable = voltage
        print(f"  {voltage:6.2f}   {abs(force):.3e}              {displacement:.3e}{marker}")

    print()
    print(f"last voltage with a stable equilibrium below d/3: {last_stable:.2f} V")
    print(f"analytic pull-in voltage                        : {pull_in_voltage:.2f} V")
    print("(the DC solver follows the equilibrium branch; the deviation from the")
    print(" analytic value reflects the sweep resolution and the gmin conductance)")


if __name__ == "__main__":
    main()
