#!/usr/bin/env python3
"""Electromagnetic and electrodynamic actuators (figure 2c and 2d).

Two magnetic transducer examples on the same mechanical resonator:

* a **reluctance actuator** (figure 2c) driven by a stepped coil current
  through a series resistor -- the armature deflects proportionally to the
  square of the coil current, and the coil behaves as an RL circuit
  electrically;
* a **voice-coil (electrodynamic) actuator** (figure 2d) driven by a sine
  voltage -- the gyrator coupling produces a force proportional to the
  current and a back-EMF proportional to the velocity, and the mechanical
  resonance is clearly visible when the drive frequency is swept through it.

Run with::

    python examples/electromagnetic_actuators.py
"""

from __future__ import annotations

import numpy as np

from repro.circuit import ACAnalysis, Circuit, Sine, Step, TransientAnalysis, frequency_grid
from repro.transducers import ElectrodynamicTransducer, ElectromagneticTransducer


def reluctance_actuator() -> None:
    print("=== Reluctance actuator (figure 2c) ===")
    xdcr = ElectromagneticTransducer(area=4e-6, turns=400.0, gap=0.3e-3)
    circuit = Circuit("reluctance actuator")
    circuit.voltage_source("VS", "in", "0", Step(0.0, 5.0, time=1e-3, ramp=1e-5))
    circuit.resistor("R1", "in", "coil", 50.0)
    xdcr.add_to_circuit(circuit, "XEM", "coil", "0", "m", "0")
    circuit.mass("M1", "m", 2e-4)
    circuit.spring("K1", "m", "0", 500.0)
    circuit.damper("D1", "m", "0", 0.2)

    inductance = xdcr.inductance(0.0)
    print(f"  coil inductance L(0)    : {inductance * 1e3:.3f} mH")
    print(f"  electrical time constant: {inductance / 50.0 * 1e3:.3f} ms")

    result = TransientAnalysis(circuit, t_stop=60e-3, t_step=1e-4).run()
    bias_current = 5.0 / 50.0
    expected_force = abs(xdcr.force(bias_current, 0.0))
    print(f"  final coil current      : {result.final('i(XEM.elec)'):.4f} A "
          f"(expected {bias_current:.4f} A)")
    print(f"  final armature force    : {abs(result.final('force(XEM)')):.3e} N "
          f"(expected {expected_force:.3e} N)")
    print(f"  final armature position : {result.final('x(XEM)'):.3e} m "
          f"(expected {expected_force / 500.0:.3e} m)")
    print()


def voice_coil_actuator() -> None:
    print("=== Voice-coil actuator (figure 2d) ===")
    xdcr = ElectrodynamicTransducer(turns=80.0, radius=4e-3, b_field=1.1)
    print(f"  coupling Bl = 2*pi*N*r*B = {xdcr.coupling:.3f} N/A")

    def build(drive):
        circuit = Circuit("voice coil")
        circuit.voltage_source("VS", "in", "0", drive, ac=1.0)
        circuit.resistor("R1", "in", "coil", 8.0)
        xdcr.add_to_circuit(circuit, "XVC", "coil", "0", "m", "0")
        circuit.mass("M1", "m", 2e-3)
        circuit.spring("K1", "m", "0", 800.0)
        circuit.damper("D1", "m", "0", 0.4)
        return circuit

    resonance = np.sqrt(800.0 / 2e-3) / (2.0 * np.pi)
    print(f"  mechanical resonance    : {resonance:.1f} Hz")

    # Small-signal frequency response of the plate velocity.
    ac = ACAnalysis(build(0.0), frequency_grid(resonance / 10, resonance * 10, 30)).run()
    peak_frequency = ac.resonance_frequency("v(m)")
    print(f"  AC velocity peak        : {peak_frequency:.1f} Hz")

    # Time-domain drive at resonance.
    result = TransientAnalysis(build(Sine(amplitude=2.0, frequency=resonance)),
                               t_stop=0.1, t_step=1e-4).run()
    print(f"  displacement amplitude at resonance: "
          f"{np.max(np.abs(result.signal('x(XVC)'))):.3e} m")
    print(f"  coil current amplitude             : "
          f"{np.max(np.abs(result.signal('i(XVC.elec)'))):.3f} A "
          f"(back-EMF limits it below {2.0 / 8.0:.3f} A)")
    print()


def main() -> None:
    reluctance_actuator()
    voice_coil_actuator()


if __name__ == "__main__":
    main()
