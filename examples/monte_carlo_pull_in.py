#!/usr/bin/env python3
"""Monte Carlo pull-in yield of a gap-closing electrostatic actuator.

Process variation turns the single pull-in voltage of
``examples/pull_in_analysis.py`` into a distribution: the sacrificial-layer
thickness sets the gap, and the structural-layer thickness sets the
suspension stiffness (beam bending stiffness scales with thickness cubed).
This example runs a seeded Monte Carlo campaign over both, estimates each
sample's pull-in voltage from a DC drive sweep of the full nonlinear
transducer circuit, and reports the yield against a minimum operating
voltage -- the paper's boundary-condition iteration, scaled out to a
process-variation study on the campaign engine.

Run with::

    python examples/monte_carlo_pull_in.py
"""

from __future__ import annotations

import os
import time

import numpy as np

from repro.campaign import CampaignRunner, CircuitEvaluator, MonteCarlo, Normal, ResultCache
from repro.circuit import Circuit
from repro.transducers import TransverseElectrostaticTransducer

AREA = 4e-8                 # 200 um x 200 um plate
GAP_NOM = 2e-6              # nominal 2 um gap (sacrificial-layer thickness)
GAP_SIGMA = 0.08e-6         # 4 % process sigma on the gap
THICKNESS_NOM = 2e-6        # nominal structural-layer thickness
THICKNESS_SIGMA = 0.10e-6   # 5 % process sigma on the thickness
STIFFNESS_NOM = 2.0         # N/m at nominal thickness
MASS = 1e-9                 # kg
DAMPING = 1e-5              # N*s/m

SAMPLES = 40
SEED = 1997                 # the paper's year; any seed reproduces exactly
V_MIN_SPEC = 3.2            # yield spec: pull-in must stay above this [V]

#: DC drive grid the pull-in voltage is read from (generous upper margin so
#: fast-corner samples still pull in inside the swept range).
DRIVE_VOLTAGES = np.linspace(0.0, 6.0, 61)


def stiffness_from_thickness(thickness: float) -> float:
    """Suspension stiffness: bending stiffness scales with thickness cubed."""
    return STIFFNESS_NOM * (thickness / THICKNESS_NOM) ** 3


def build_actuator(params: dict) -> Circuit:
    """Per-sample netlist: gap-closing transducer + suspension (picklable)."""
    circuit = Circuit("mc pull-in sample")
    circuit.voltage_source("VS", "a", "0", 0.0)
    transducer = TransverseElectrostaticTransducer(
        area=AREA, gap=params["gap"], gap_orientation="closing")
    transducer.add_to_circuit(circuit, "XDCR", "a", "0", "m", "0")
    circuit.mass("M1", "m", MASS)
    circuit.spring("K1", "m", "0", stiffness_from_thickness(params["thickness"]))
    circuit.damper("D1", "m", "0", DAMPING)
    return circuit


def pull_in_from_sweep(result, params: dict) -> dict:
    """Reduce a DC drive sweep to the sample's pull-in voltage estimate.

    The sweep yields the simulated electrostatic force ``F0(V)`` at rest
    (at DC the plate displacement is an integral state held at zero).  The
    static balance ``k*x = F0(V) * d^2 / (d - x)^2`` has a stable
    equilibrium (root below ``d/3``) iff ``k*d/3 >= 2.25 * F0(V)``; the
    pull-in estimate is the last swept voltage that satisfies it.
    """
    gap = params["gap"]
    stiffness = stiffness_from_thickness(params["thickness"])
    forces = np.abs(result.column("force(XDCR)"))
    if not np.all(np.isfinite(forces)):
        raise ValueError("drive sweep failed to converge")
    stable = stiffness * gap / 3.0 >= 2.25 * forces
    if not stable[0]:
        raise ValueError("no stable operating point even at zero drive")
    last = int(np.max(np.nonzero(stable)))
    if last == len(forces) - 1:
        raise ValueError("pull-in above the swept drive range")
    return {"pull_in_v": float(result.sweep_values[last]),
            "force_at_pull_in": float(forces[last])}


#: Batched execution maps campaign parameters straight onto device
#: parameters, so all samples share one netlist and solve in lockstep
#: block-factorized Newton steps.  The thickness -> stiffness closed form
#: rides along as a transform.
PARAM_MAP = {"gap": "XDCR.d",
             "thickness": ("K1.stiffness", stiffness_from_thickness)}


def analytic_pull_in(gap: float, thickness: float) -> float:
    """Closed-form ``sqrt(8 k d^3 / (27 eps0 A))`` for cross-checking."""
    transducer = TransverseElectrostaticTransducer(
        area=AREA, gap=gap, gap_orientation="closing")
    return transducer.pull_in_voltage(stiffness_from_thickness(thickness))


def main() -> None:
    spec = MonteCarlo(
        {"gap": Normal(GAP_NOM, GAP_SIGMA, low=0.5 * GAP_NOM),
         "thickness": Normal(THICKNESS_NOM, THICKNESS_SIGMA,
                             low=0.5 * THICKNESS_NOM)},
        samples=SAMPLES, seed=SEED)
    evaluator = CircuitEvaluator(
        build_actuator, analysis="dc",
        analysis_args={"source_name": "VS", "values": DRIVE_VOLTAGES.tolist(),
                       "continue_on_failure": True},
        reduce=pull_in_from_sweep)

    processes = min(4, os.cpu_count() or 1)
    cache = ResultCache()
    runner = CampaignRunner(backend="pool", processes=processes, cache=cache)

    print(f"Monte Carlo pull-in study: {SAMPLES} samples, seed {SEED}, "
          f"{processes} worker(s)")
    print(f"  gap       ~ N({GAP_NOM * 1e6:.2f} um, {GAP_SIGMA * 1e6:.2f} um)")
    print(f"  thickness ~ N({THICKNESS_NOM * 1e6:.2f} um, "
          f"{THICKNESS_SIGMA * 1e6:.2f} um)")
    print(f"  analytic nominal pull-in: "
          f"{analytic_pull_in(GAP_NOM, THICKNESS_NOM):.3f} V")
    print()

    start = time.perf_counter()
    result = runner.run(spec, evaluator)
    elapsed = time.perf_counter() - start
    rerun_start = time.perf_counter()
    runner.run(spec, evaluator)  # every point served from the result cache
    rerun_elapsed = time.perf_counter() - rerun_start

    print("  sample   gap [um]  thickness [um]   V_pullin [V]   analytic [V]")
    for row in list(result)[:10]:
        analytic = analytic_pull_in(row["gap"], row["thickness"])
        print(f"  {row.index:4d}     {row['gap'] * 1e6:7.3f}   "
              f"{row['thickness'] * 1e6:9.3f}       {row['pull_in_v']:7.3f} "
              f"       {analytic:7.3f}")
    if len(result) > 10:
        print(f"  ... ({len(result) - 10} more)")
    print()

    summary = result.summary("pull_in_v")
    spread = result.percentile("pull_in_v", [5.0, 95.0])
    yield_ok = result.yield_fraction(lambda row: row["pull_in_v"] >= V_MIN_SPEC)
    print(f"pull-in voltage: mean {summary['mean']:.3f} V, "
          f"std {summary['std']:.3f} V, "
          f"p5/p95 {spread[0]:.3f}/{spread[1]:.3f} V")
    print(f"failed samples : {result.num_failures} of {len(result)}")
    print(f"yield (V_pullin >= {V_MIN_SPEC} V): {100.0 * yield_ok:.1f} %")
    print()
    print(f"campaign wall time : {elapsed:.2f} s "
          f"({len(result) / elapsed:.1f} samples/s)")
    print(f"cached rerun       : {rerun_elapsed * 1e3:.1f} ms "
          f"({cache.stats()['hits']} cache hits)")

    # Same study again, batched: param_map lets the runner stack all
    # samples into block-factorized solves instead of one netlist each.
    batched_evaluator = CircuitEvaluator(
        build_actuator, analysis="dc",
        analysis_args={"source_name": "VS", "values": DRIVE_VOLTAGES.tolist(),
                       "continue_on_failure": True},
        reduce=pull_in_from_sweep, param_map=PARAM_MAP)
    batch_start = time.perf_counter()
    batch_result = CampaignRunner(backend="batch").run(spec, batched_evaluator)
    batch_elapsed = time.perf_counter() - batch_start
    worst = max(abs(a["pull_in_v"] - b["pull_in_v"])
                for a, b in zip(result, batch_result)
                if a.error is None and b.error is None)
    print(f"batched rerun      : {batch_elapsed:.2f} s "
          f"({len(batch_result) / batch_elapsed:.1f} samples/s, "
          f"{elapsed / batch_elapsed:.1f}x the {processes}-worker pool; "
          f"max |dV_pullin| = {worst:.2e} V)")


if __name__ == "__main__":
    main()
