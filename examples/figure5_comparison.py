#!/usr/bin/env python3
"""Reproduce the paper's figure 5: behavioral model versus linearized circuit.

The experiment excites the transducer + resonator system with 5 V, 10 V and
15 V pulses and compares the displacement predicted by

* the nonlinear behavioral (HDL-A style) transducer model, and
* the linearized equivalent-circuit model (bias capacitance + transduction
  factor Gamma),

exactly as the paper does.  The expected outcome (and what this script
prints): the two agree at the 10 V linearization point, the linear model
overshoots by ~2x at 5 V and undershoots by ~1.5x at 15 V, and the
behavioral model costs roughly an order of magnitude more simulation time.

Run with::

    python examples/figure5_comparison.py
"""

from __future__ import annotations

import numpy as np

from repro.system import run_figure5_comparison
from repro.system.comparison import measure_runtime_penalty


def main() -> None:
    comparison = run_figure5_comparison(amplitudes=(5.0, 10.0, 15.0), t_step=2e-4)
    print(comparison.summary())
    print()

    # ASCII rendition of the figure-5 lower panel for the 10 V pulse.
    run = comparison.run_for(10.0)
    time = run.behavioral.time
    x_beh = run.behavioral.signal("x(XDCR)")
    x_lin = run.linearized.signal("x(res_m)")
    print("10 V pulse, displacement versus time (B = behavioral, L = linearized):")
    scale = max(x_beh.max(), x_lin.max())
    for t_probe in np.linspace(0.0, time[-1], 25):
        b = np.interp(t_probe, time, x_beh)
        l = np.interp(t_probe, run.linearized.time, x_lin)
        width = 50
        column_b = int(round(b / scale * (width - 1))) if scale > 0 else 0
        column_l = int(round(l / scale * (width - 1))) if scale > 0 else 0
        line = [" "] * width
        line[max(column_l, 0)] = "L"
        line[max(column_b, 0)] = "B"
        print(f"  {t_probe * 1e3:6.1f} ms |{''.join(line)}| {b:.2e} m")
    print()

    timing = measure_runtime_penalty(t_step=2e-4, repeats=2)
    print("Runtime penalty of the behavioral model (paper reports ~10x):")
    print(f"  behavioral : {timing['behavioral_s'] * 1e3:8.1f} ms")
    print(f"  linearized : {timing['linearized_s'] * 1e3:8.1f} ms")
    print(f"  penalty    : {timing['penalty']:.1f}x")


if __name__ == "__main__":
    main()
