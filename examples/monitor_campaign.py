#!/usr/bin/env python3
"""Watch a campaign live, then autopsy (and replay) a forced failure.

The diagnostics loop of PR 7 in one script:

1. a parameter campaign over a current-driven diode ladder runs with a
   live progress reporter installed -- per-point events with ETA land on
   stdout through the stdlib-logging bridge;
2. one sweep point is poisoned (iteration budget starved far below what
   the exponential needs), so its operating point diverges: the campaign
   row carries the forensic digest naming the offending unknown;
3. the failure is re-run standalone with forensics on, the structured
   ``FailureReport`` post-mortem is printed, dumped as a self-contained
   reproduction bundle and replayed from the JSON to prove the bundle
   reproduces the same failure deterministically.

Run with::

    python examples/monitor_campaign.py
"""

from __future__ import annotations

import logging
import os
import tempfile

from repro import telemetry
from repro.campaign import CampaignRunner, GridSweep
from repro.circuit import Circuit, SimulationOptions
from repro.circuit.analysis.op import OperatingPointAnalysis
from repro.errors import ConvergenceError

#: Iteration budget per point: generous except for the poisoned drive.
POISONED_DRIVE = 0.75


def build_diode_ladder(drive: float = 0.1) -> Circuit:
    """A current-driven diode with a series resistor (picklable factory)."""
    circuit = Circuit("monitored ladder")
    circuit.current_source("I1", "0", "a", drive)
    circuit.resistor("R1", "a", "d", 10.0)
    circuit.diode("D1", "d", "0")
    return circuit


def options_for(drive: float) -> SimulationOptions:
    """Starve the poisoned point's Newton budget so it genuinely diverges."""
    if drive == POISONED_DRIVE:
        return SimulationOptions(forensics=True, max_newton_iterations=4,
                                 max_source_steps=1)
    return SimulationOptions(forensics=True)


def evaluate(point: dict) -> dict:
    drive = point["drive"]
    result = OperatingPointAnalysis(build_diode_ladder(drive),
                                    options_for(drive)).run()
    return {"v_diode": result["v(d)"]}


def main() -> None:
    logging.basicConfig(level=logging.INFO,
                        format="%(levelname)s %(name)s: %(message)s")

    # --- 1. live progress ------------------------------------------------
    drives = [0.01, 0.05, 0.1, 0.25, 0.5, POISONED_DRIVE, 1.0, 2.0]
    spec = GridSweep(drive=drives)
    print(f"== running a {len(drives)}-point campaign with live progress ==")
    reporter = telemetry.LoggingProgressReporter()
    with telemetry.reporting(reporter):
        result = CampaignRunner(backend="serial").run(spec, evaluate)

    # --- 2. the poisoned row carries its own post-mortem -----------------
    print(f"\n{len(result)} points, {result.num_failures} failure(s)")
    for summary in result.forensic_summaries():
        print(f"row {summary['index']}: {summary['kind']} failure in "
              f"{summary['analysis']} -- offending unknown "
              f"{summary['offending_unknown']}")
    assert result.num_failures == 1, "exactly the poisoned point must fail"

    # --- 3. standalone autopsy, bundle dump and replay -------------------
    print("\n== standalone autopsy of the poisoned point ==")
    circuit = build_diode_ladder(POISONED_DRIVE)
    options = options_for(POISONED_DRIVE)
    try:
        OperatingPointAnalysis(circuit, options).run()
    except ConvergenceError as exc:
        report = exc.report
    print(report.describe())

    bundle_path = os.path.join(tempfile.mkdtemp(prefix="repro-forensics-"),
                               "poisoned_point.json")
    telemetry.forensics.dump_bundle(
        bundle_path, analysis="op", options=options,
        build=build_diode_ladder, params={"drive": POISONED_DRIVE},
        circuit=circuit, report=report)
    print(f"\nreproduction bundle written: {bundle_path}")

    outcome = telemetry.forensics.replay(bundle_path, build=build_diode_ladder)
    assert outcome.reproduced, "the bundled failure must reproduce"
    assert outcome.fingerprint_match, "the rebuilt circuit must match"
    assert outcome.report.offending_unknown == report.offending_unknown
    print(f"replay reproduced the failure: {type(outcome.error).__name__} "
          f"on {outcome.report.offending_unknown}")


if __name__ == "__main__":
    main()
