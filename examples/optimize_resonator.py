#!/usr/bin/env python3
"""Design a cantilever resonator: hit a target resonance with a ROM surrogate.

The paper closes the loop between device geometry and system behavior --
FE extraction feeding macromodels a designer iterates on.  This example
automates the iteration with :mod:`repro.optim`: find the beam thickness
whose *measured* fundamental resonance (peak of the damped full-order FE
harmonic response, two-stage frequency refinement, exactly what the paper's
fig. 5 flow would measure) hits a 25 kHz target within 1 %.

The search runs almost entirely on a cheap surrogate -- an order-6 modal ROM
of the same beam swept over the same refined grids (one small eigensolve +
6x6 solves instead of ~120 full 80x80 factorizations per design):

1. a seeded :class:`~repro.optim.multistart.MultiStart` fans Nelder-Mead
   starts over the campaign runner (``serial`` and ``pool`` backends give
   bit-identical results) on the *surrogate* objective,
2. a :class:`~repro.optim.surrogate.SurrogateStrategy` verifies the winner
   against the full model, re-anchoring or falling back if they disagree.

The script asserts the optimized geometry lands within 1 % of the target and
that both backends select the same design.  ``benchmarks/bench_optim.py``
pins the >= 5x full-evaluation saving of the same flow.

Run with::

    python examples/optimize_resonator.py
"""

from __future__ import annotations

import numpy as np

from repro.campaign import CampaignRunner
from repro.fem.harmonic import harmonic_response, interpolate_peak_frequency
from repro.fem.structural import CantileverBeam
from repro.optim import MultiStart, NelderMead, Objective, ParameterSpace, SurrogateStrategy
from repro.rom import rom_from_matrices

# Fixed beam recipe (polysilicon-class material, paper-scale geometry).
LENGTH = 400e-6          # m
WIDTH = 20e-6            # m
YOUNGS_MODULUS = 160e9   # Pa
DENSITY = 2330.0         # kg/m^3
ELEMENTS = 40            # 80 free DOFs
RAYLEIGH_BETA = 2.1e-7   # stiffness-proportional damping (Q ~ 30 at 25 kHz)

TARGET_HZ = 25e3
TOLERANCE = 0.01         # land within 1 % of the target
ROM_ORDER = 6

#: Coarse survey grid; the peak is then refined on a +-15 % linear window.
COARSE_GRID = np.geomspace(5e3, 3e5, 60)

SPACE = ParameterSpace(thickness=(1.0e-6, 10.0e-6, "log"))


def _beam_matrices(thickness: float):
    beam = CantileverBeam(length=LENGTH, width=WIDTH, thickness=thickness,
                          youngs_modulus=YOUNGS_MODULUS, density=DENSITY,
                          elements=ELEMENTS)
    stiffness, mass = beam.assemble()
    return mass, RAYLEIGH_BETA * stiffness, stiffness


def _refined_peak(magnitude_of) -> float:
    """Two-stage resonance measurement: coarse survey, then a fine window."""
    coarse = magnitude_of(COARSE_GRID)
    f0 = float(COARSE_GRID[int(np.argmax(coarse))])
    window = np.linspace(0.85 * f0, 1.15 * f0, 61)
    return interpolate_peak_frequency(window, magnitude_of(window))


def full_resonance(params: dict) -> dict[str, float]:
    """Fundamental resonance from the full-order damped FE harmonic sweep."""
    mass, damping, stiffness = _beam_matrices(float(params["thickness"]))

    def magnitude(frequencies: np.ndarray) -> np.ndarray:
        response = harmonic_response(mass, damping, stiffness, frequencies,
                                     drive_dof=-2)
        return response.magnitude(-2)

    return {"resonance_hz": _refined_peak(magnitude)}


def rom_resonance(params: dict) -> dict[str, float]:
    """The same measurement on an order-6 modal ROM (the cheap surrogate)."""
    mass, damping, stiffness = _beam_matrices(float(params["thickness"]))
    rom = rom_from_matrices(mass, stiffness, order=ROM_ORDER, method="modal",
                            drive_dof=-2, output_dofs=[-2],
                            rayleigh=(0.0, RAYLEIGH_BETA))

    def magnitude(frequencies: np.ndarray) -> np.ndarray:
        return np.abs(rom.harmonic(frequencies)[:, 0])

    return {"resonance_hz": _refined_peak(magnitude)}


def objectives() -> tuple[Objective, Objective]:
    """(full, surrogate) squared-relative-miss objectives for the target."""
    full = Objective(full_resonance, SPACE, output="resonance_hz",
                     target=TARGET_HZ)
    surrogate = Objective(rom_resonance, SPACE, output="resonance_hz",
                          target=TARGET_HZ)
    return full, surrogate


def optimize(backend: str = "serial", starts: int = 4, seed: int = 11):
    """The full design flow on one campaign backend."""
    full, surrogate = objectives()
    solver = NelderMead(max_iterations=80, xtol=1e-7, ftol=1e-14)
    fan_out = MultiStart(solver=solver, starts=starts, seed=seed,
                         runner=CampaignRunner(backend=backend))
    survey = fan_out.minimize(surrogate)
    strategy = SurrogateStrategy(solver=solver, fun_tol=TOLERANCE ** 2,
                                 agree_rtol=5e-2)
    final = strategy.minimize(full, surrogate, x0=survey.best.x)
    return survey, final, full, surrogate


def main() -> int:
    print("=== resonance-targeting design: cantilever thickness ===")
    print(f"target: {TARGET_HZ / 1e3:.1f} kHz (+- {100 * TOLERANCE:.0f} %), "
          f"space: {SPACE.names} in "
          f"[{SPACE.parameters[0].lower * 1e6:.1f}, "
          f"{SPACE.parameters[0].upper * 1e6:.1f}] um (log)")

    selected: dict[str, float] = {}
    for backend in ("serial", "pool"):
        survey, final, full, surrogate = optimize(backend=backend)
        miss = abs(full_resonance(final.params)["resonance_hz"] - TARGET_HZ) \
            / TARGET_HZ
        selected[backend] = final.params["thickness"]
        print(f"\n[{backend}] multi-start surrogate survey: "
              f"{survey.total_evaluations()} surrogate evaluations, "
              f"best miss^2 = {survey.best.fun:.3e}")
        print(f"[{backend}] surrogate strategy: thickness = "
              f"{final.params['thickness'] * 1e6:.4f} um, "
              f"resonance miss = {100 * miss:.4f} % "
              f"({final.full_evaluations} full-model evaluations, "
              f"{final.surrogate_evaluations} surrogate evaluations, "
              f"fallback={final.fallback_used})")
        if miss > TOLERANCE:
            raise SystemExit(
                f"[{backend}] optimized design misses the target by "
                f"{100 * miss:.2f} % (> {100 * TOLERANCE:.0f} %)")
        if not final.converged:
            raise SystemExit(f"[{backend}] strategy did not converge: "
                             f"{final.message}")

    if selected["serial"] != selected["pool"]:
        raise SystemExit(
            f"serial/pool backends disagree: {selected['serial']!r} vs "
            f"{selected['pool']!r} (determinism regression)")
    print("\nserial and pool backends selected the identical design -- "
          "deterministic fan-out confirmed.")
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
