#!/usr/bin/env python3
"""Quickstart: electrostatic transducer driving a mechanical resonator.

This is the paper's figure-3 system in a few lines: a transverse
electrostatic transducer (Table 4 geometry) excited by a 10 V pulse with
finite rise/fall times, loaded by a mass-spring-damper resonator.  The script
prints the operating point, the quasi-static displacement and a small table
of the transient displacement response.

Run with::

    python examples/quickstart.py
"""

from __future__ import annotations

import numpy as np

from repro.circuit import Circuit, OperatingPointAnalysis, Pulse, TransientAnalysis
from repro.transducers import TransverseElectrostaticTransducer
from repro.units import format_quantity


def main() -> None:
    # --- build the netlist ---------------------------------------------------
    circuit = Circuit("quickstart: electrostatic transducer + resonator")
    drive = Pulse(v1=0.0, v2=10.0, delay=5e-3, rise=2e-3, fall=2e-3, width=35e-3)
    circuit.voltage_source("VS", "a", "0", drive)

    transducer = TransverseElectrostaticTransducer(area=1e-4, gap=0.15e-3, epsilon_r=1.0)
    transducer.add_to_circuit(circuit, "XDCR", "a", "0", "m", "0")

    circuit.mass("M1", "m", 1e-4)          # kg
    circuit.spring("K1", "m", "0", 200.0)  # N/m
    circuit.damper("D1", "m", "0", 40e-3)  # N*s/m

    print(circuit.summary())
    print()

    # --- DC operating point ---------------------------------------------------
    op = OperatingPointAnalysis(circuit).run()
    print("Operating point (drive held at its t=0 value, 0 V):")
    print(f"  v(a)        = {op.voltage('a'):.3f} V")
    print(f"  force(XDCR) = {format_quantity(op['force(XDCR)'], 'N')}")
    print()

    # --- transient -------------------------------------------------------------
    result = TransientAnalysis(circuit, t_stop=60e-3, t_step=2e-4).run()
    displacement = result.signal("x(XDCR)")
    print("Transient displacement of the free plate:")
    for t_probe in np.linspace(5e-3, 55e-3, 11):
        print(f"  t = {t_probe * 1e3:6.1f} ms   x = {result.at('x(XDCR)', t_probe):.3e} m")
    print()

    quasi_static = abs(transducer.force(10.0, 0.0)) / 200.0
    print(f"peak displacement        : {displacement.max():.3e} m")
    print(f"plateau displacement     : {result.at('x(XDCR)', 40e-3):.3e} m")
    print(f"expected quasi-static x0 : {quasi_static:.3e} m (paper Table 4: 1.0e-8 m)")
    print(f"solver statistics        : {result.statistics}")


if __name__ == "__main__":
    main()
