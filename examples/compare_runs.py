#!/usr/bin/env python3
"""Record two figure-5 runs in a run ledger and diff them.

The experiment: reproduce the paper's figure-5 transient twice, once with
Jacobian reuse disabled (every Newton iteration refactorizes) and once with
the chord policy (reuse until convergence degrades), each under a summary
telemetry session.  Both runs land in a run ledger as
:class:`repro.telemetry.ledger.RunRecord`\\ s, and the structured diff shows
what the policy bought: fewer factorizations (counter family) against
near-identical Newton iteration counts and wall time (time family).

This is the whole cross-run observability loop in one script -- the same
record/compare machinery ``python -m repro.telemetry.ledger`` and the CI
regression gate use.

Run with::

    python examples/compare_runs.py
"""

from __future__ import annotations

import tempfile

from repro import telemetry
from repro.circuit import SimulationOptions
from repro.system import run_figure5_comparison
from repro.telemetry.ledger import RunLedger, RunRecord, diff


def record_run(ledger: RunLedger, jacobian_reuse: str) -> str:
    """Run figure 5 under one Jacobian-reuse policy; append a RunRecord."""
    options = SimulationOptions(trtol=10.0, jacobian_reuse=jacobian_reuse)
    with telemetry.session(mode="summary") as sess:
        comparison = run_figure5_comparison(
            amplitudes=(5.0, 10.0, 15.0), t_step=4e-4, options=options)
    record = RunRecord.from_report(
        sess.report, label="figure5",
        options_fingerprint=f"jacobian_reuse={jacobian_reuse}")
    record_id = ledger.append(record)
    print(f"recorded jacobian_reuse={jacobian_reuse!r}: {record_id} "
          f"(wall {record.wall_s:.2f} s, "
          f"{len(comparison.runs)} amplitudes)")
    return record_id


def main() -> None:
    with tempfile.TemporaryDirectory() as directory:
        ledger = RunLedger(directory)
        baseline_id = record_run(ledger, jacobian_reuse="off")
        current_id = record_run(ledger, jacobian_reuse="chord")
        print()
        delta_view = diff(ledger.load(baseline_id), ledger.load(current_id))
        print(delta_view.format_table(limit=15))


if __name__ == "__main__":
    main()
