"""Numerical health monitoring: condition estimates and singularity forensics."""

from __future__ import annotations

import numpy as np
import pytest
import scipy.sparse as sp

from repro import telemetry
from repro.circuit import Circuit, SimulationOptions
from repro.circuit.analysis.op import OperatingPointAnalysis
from repro.linalg import FactorizedSolver
from repro.telemetry import health, registry


def _spd(n: int = 6, scale: float = 1.0) -> np.ndarray:
    rng = np.random.default_rng(7)
    a = rng.standard_normal((n, n))
    return a @ a.T + scale * n * np.eye(n)


class TestConditionEstimate:
    def test_dense_matches_true_condition(self):
        matrix = np.diag([1.0, 10.0, 100.0])
        cond = FactorizedSolver("dense").factorize(matrix).condition_estimate()
        assert cond == pytest.approx(100.0, rel=0.1)

    def test_backends_agree_on_the_same_matrix(self):
        matrix = _spd()
        dense = FactorizedSolver("dense").factorize(matrix)
        sparse = FactorizedSolver("superlu").factorize(sp.csr_matrix(matrix))
        cg = FactorizedSolver("cg").factorize(sp.csr_matrix(matrix))
        reference = dense.condition_estimate()
        assert sparse.condition_estimate() == pytest.approx(reference, rel=0.5)
        assert cg.condition_estimate() == pytest.approx(reference, rel=0.5)

    def test_estimate_is_cached(self):
        factorization = FactorizedSolver("dense").factorize(_spd())
        assert factorization.condition_estimate() \
            == factorization.condition_estimate()

    def test_near_singular_matrix_yields_huge_estimate(self):
        matrix = np.array([[1.0, 1.0], [1.0, 1.0 + 1e-13]])
        cond = FactorizedSolver("dense").factorize(matrix).condition_estimate()
        assert cond > 1e12

    def test_complex_matrix_supported(self):
        matrix = _spd().astype(complex) + 1j * np.eye(6)
        cond = FactorizedSolver("dense").factorize(matrix).condition_estimate()
        assert np.isfinite(cond) and cond >= 1.0

    def test_deterministic(self):
        matrix = _spd()
        values = {FactorizedSolver("superlu").factorize(
            sp.csr_matrix(matrix)).condition_estimate() for _ in range(3)}
        assert len(values) == 1


class TestCheckFactorization:
    def test_healthy_matrix_records_quietly(self):
        factorization = FactorizedSolver("dense").factorize(np.eye(3))
        before = registry.counter_value("health.near_singular")
        record = health.check_factorization(factorization, limit=1e12)
        assert not record.near_singular
        assert record.condition == pytest.approx(1.0, rel=0.1)
        assert registry.counter_value("health.near_singular") == before

    def test_near_singular_warns_and_counts(self):
        matrix = np.array([[1.0, 1.0], [1.0, 1.0 + 1e-13]])
        factorization = FactorizedSolver("dense").factorize(matrix)
        before = registry.counter_value("health.near_singular")
        with pytest.warns(telemetry.NumericalHealthWarning,
                          match="condition estimate"):
            record = health.check_factorization(factorization, limit=1e6,
                                                context="unit test")
        assert record.near_singular
        assert registry.counter_value("health.near_singular") == before + 1

    def test_warn_false_stays_silent(self):
        import warnings

        matrix = np.array([[1.0, 1.0], [1.0, 1.0 + 1e-13]])
        factorization = FactorizedSolver("dense").factorize(matrix)
        with warnings.catch_warnings():
            warnings.simplefilter("error")
            record = health.check_factorization(factorization, limit=1e6,
                                                warn=False)
        assert record.near_singular

    def test_record_round_trips_to_json(self):
        factorization = FactorizedSolver("dense").factorize(np.eye(2))
        payload = health.check_factorization(factorization).to_json()
        assert payload["size"] == 2 and payload["near_singular"] is False


class TestAttributeResidual:
    def test_ranks_by_magnitude(self):
        ranked = health.attribute_residual(["a", "b", "c"], [1.0, -5.0, 2.0],
                                           top=2)
        assert ranked == [("b", -5.0), ("c", 2.0)]

    def test_non_finite_entries_rank_first(self):
        ranked = health.attribute_residual(["a", "b"], [3.0, np.nan])
        assert ranked[0][0] == "b"

    def test_length_mismatch_raises(self):
        with pytest.raises(ValueError):
            health.attribute_residual(["a"], [1.0, 2.0])


class TestSingularDiagnosis:
    def test_names_the_empty_row_and_column(self):
        matrix = np.array([[1.0, 0.0], [0.0, 0.0]])
        diagnosis = health.singular_diagnosis(matrix, ["v(a)", "v(b)"])
        assert diagnosis["zero_rows"] == ["v(b)"]
        assert diagnosis["zero_cols"] == ["v(b)"]
        assert diagnosis["suspects"] == ["v(b)"]
        assert "v(b)" in diagnosis["message"]

    def test_sparse_input_and_default_labels(self):
        matrix = sp.csr_matrix(np.array([[0.0, 0.0], [1.0, 2.0]]))
        diagnosis = health.singular_diagnosis(matrix)
        assert diagnosis["zero_rows"] == ["unknown[0]"]

    def test_clean_matrix_has_no_suspects(self):
        diagnosis = health.singular_diagnosis(np.eye(3))
        assert diagnosis["suspects"] == []


class TestAnalysisIntegration:
    def test_health_check_knob_runs_during_op(self):
        circuit = Circuit()
        circuit.voltage_source("V1", "in", "0", 1.0)
        circuit.resistor("R1", "in", "out", 1e3)
        circuit.resistor("R2", "out", "0", 1e3)
        before = registry.counter_value("health.condition_checks")
        OperatingPointAnalysis(
            circuit, SimulationOptions(health_check=True)).run()
        assert registry.counter_value("health.condition_checks") > before

    def test_off_by_default(self):
        circuit = Circuit()
        circuit.voltage_source("V1", "in", "0", 1.0)
        circuit.resistor("R1", "in", "0", 1e3)
        before = registry.counter_value("health.condition_checks")
        OperatingPointAnalysis(circuit).run()
        assert registry.counter_value("health.condition_checks") == before

    def test_ill_conditioned_circuit_warns(self):
        # A current-driven 1 mΩ / 1 TΩ ladder: the nodal matrix mixes 1e3 S
        # against 1e-12 S, so its condition (~4e15) is far past the limit.
        circuit = Circuit()
        circuit.current_source("I1", "a", "0", 1e-9)
        circuit.resistor("R1", "a", "b", 1e-3)
        circuit.resistor("R2", "b", "0", 1e12)
        options = SimulationOptions(health_check=True, gmin=0.0)
        with pytest.warns(telemetry.NumericalHealthWarning):
            OperatingPointAnalysis(circuit, options).run()
