"""The ``python -m repro.telemetry.ledger`` command line."""

from __future__ import annotations

import json

import pytest

from repro.telemetry.ledger import RunLedger
from repro.telemetry.ledger.cli import main

from test_ledger import make_record  # noqa: E402 -- sibling test module


@pytest.fixture
def ledger_dir(tmp_path):
    """A ledger directory pre-seeded with a baseline and a slowed run."""
    ledger = RunLedger(tmp_path)
    baseline_id = ledger.append(make_record(wall_s=1.0))
    slowed_id = ledger.append(make_record(wall_s=2.0))
    return tmp_path, baseline_id, slowed_id


def bench_payload(duration_s=1.5):
    return {
        "schema": "repro-bench-ledger/2",
        "provenance": {"git_sha": "d" * 40,
                       "created_utc": "2026-08-07T01:00:00+00:00",
                       "host": "h", "platform": "p",
                       "versions": {"python": "3.11"}},
        "results": [{"test": "bench.py::test_fig5", "outcome": "passed",
                     "duration_s": duration_s,
                     "benchmark": {"rounds": 3, "min_s": duration_s * 0.9,
                                   "mean_s": duration_s,
                                   "max_s": duration_s * 1.1}}],
    }


class TestRecord:
    def test_ingests_bench_ledger_and_prints_id(self, tmp_path, capsys):
        bench = tmp_path / "BENCH.json"
        bench.write_text(json.dumps(bench_payload()))
        ledger_path = tmp_path / "ledger"
        out_path = tmp_path / "record.json"
        code = main(["record", "--ledger", str(ledger_path),
                     "--bench", str(bench), "--out", str(out_path)])
        assert code == 0
        record_id = capsys.readouterr().out.strip()
        ledger = RunLedger(ledger_path)
        record = ledger.load(record_id)
        assert record.label == "bench"
        assert record.provenance["git_sha"] == "d" * 40
        assert out_path.exists()

    def test_requires_ledger_and_a_source(self, tmp_path, capsys):
        assert main(["record", "--bench", "x.json"]) == 2
        assert main(["record", "--ledger", str(tmp_path)]) == 2
        assert "record:" in capsys.readouterr().err

    def test_from_report_ingests_telemetry_json(self, tmp_path, capsys):
        report = {"mode": "summary", "wall_s": 0.5,
                  "span_totals": {"op.run": {"count": 2, "total_s": 0.4,
                                             "self_s": 0.3}},
                  "metrics": {"counters": {"linalg.factorizations": 2},
                              "gauges": {}, "histograms": {}}}
        path = tmp_path / "report.json"
        path.write_text(json.dumps(report))
        code = main(["record", "--ledger", str(tmp_path / "ledger"),
                     "--from-report", str(path), "--label", "figure5",
                     "--options-fingerprint", "cafe1234"])
        assert code == 0
        record = RunLedger(tmp_path / "ledger").load("latest")
        assert record.label == "figure5"
        assert record.options_fingerprint == "cafe1234"
        assert record.span_totals["op.run"]["count"] == 2


class TestShow:
    def test_lists_ledger(self, ledger_dir, capsys):
        path, baseline_id, slowed_id = ledger_dir
        assert main(["show", "--ledger", str(path)]) == 0
        out = capsys.readouterr().out
        assert baseline_id in out and slowed_id in out
        assert "2 record(s)" in out

    def test_renders_one_record(self, ledger_dir, capsys):
        path, baseline_id, _ = ledger_dir
        assert main(["show", "--ledger", str(path), baseline_id[:6]]) == 0
        out = capsys.readouterr().out
        assert "tran.run" in out          # profile table
        assert "bench_a.py::test_fig5" in out  # benchmark table
        assert "ci-host" in out           # provenance

    def test_json_mode_round_trips(self, ledger_dir, capsys):
        path, baseline_id, _ = ledger_dir
        assert main(["show", "--ledger", str(path), baseline_id,
                     "--json"]) == 0
        payload = json.loads(capsys.readouterr().out)
        assert payload["schema"] == "repro-run-record/1"


class TestCompare:
    def test_reports_wall_time_and_newton_deltas(self, ledger_dir, capsys):
        path, baseline_id, slowed_id = ledger_dir
        assert main(["compare", "--ledger", str(path),
                     baseline_id, slowed_id]) == 0
        out = capsys.readouterr().out
        assert "wall_s" in out
        assert "conv.newton_iterations" in out

    def test_compare_against_standalone_file(self, ledger_dir, tmp_path,
                                             capsys):
        path, _, slowed_id = ledger_dir
        baseline_file = tmp_path / "BASELINE.json"
        make_record(wall_s=1.0).dump(baseline_file)
        assert main(["compare", "--ledger", str(path),
                     str(baseline_file), slowed_id]) == 0
        assert "wall_s" in capsys.readouterr().out

    def test_json_output(self, ledger_dir, capsys):
        path, baseline_id, slowed_id = ledger_dir
        assert main(["compare", "--ledger", str(path), baseline_id,
                     slowed_id, "--json"]) == 0
        payload = json.loads(capsys.readouterr().out)
        names = {delta["name"] for delta in payload["deltas"]}
        assert "wall_s" in names


class TestCheck:
    def test_ok_exits_zero(self, ledger_dir, capsys):
        path, baseline_id, _ = ledger_dir
        assert main(["check", baseline_id, "--ledger", str(path),
                     "--baseline", baseline_id]) == 0
        assert "verdict: ok" in capsys.readouterr().out

    def test_regression_exits_one_and_names_family(self, ledger_dir, capsys):
        path, baseline_id, slowed_id = ledger_dir
        code = main(["check", slowed_id, "--ledger", str(path),
                     "--baseline", baseline_id])
        assert code == 1
        out = capsys.readouterr().out
        assert "verdict: regressed" in out
        assert "time" in out

    def test_json_verdict(self, ledger_dir, capsys):
        path, baseline_id, slowed_id = ledger_dir
        code = main(["check", slowed_id, "--ledger", str(path),
                     "--baseline", baseline_id, "--json"])
        assert code == 1
        payload = json.loads(capsys.readouterr().out)
        assert payload["status"] == "regressed"
        assert "time" in payload["families"]

    def test_generous_tolerance_passes_the_same_pair(self, ledger_dir):
        path, baseline_id, slowed_id = ledger_dir
        assert main(["check", slowed_id, "--ledger", str(path),
                     "--baseline", baseline_id,
                     "--time-tol", "3.0"]) == 0

    def test_baseline_file_reference(self, ledger_dir, tmp_path):
        path, _, slowed_id = ledger_dir
        baseline_file = tmp_path / "BASELINE.json"
        make_record(wall_s=1.0).dump(baseline_file)
        assert main(["check", slowed_id, "--ledger", str(path),
                     "--baseline", str(baseline_file)]) == 1


class TestGcAndErrors:
    def test_gc_tightens_retention(self, ledger_dir, capsys):
        path, _, slowed_id = ledger_dir
        assert main(["gc", "--ledger", str(path), "--keep", "1"]) == 0
        assert "removed 1" in capsys.readouterr().out
        assert RunLedger(path).ids() == [slowed_id]

    def test_unknown_ref_exits_two(self, ledger_dir, capsys):
        path, _, _ = ledger_dir
        assert main(["show", "--ledger", str(path), "zzzzzz"]) == 2
        assert "error:" in capsys.readouterr().err

    def test_missing_ledger_for_compare_exits_two(self, capsys):
        assert main(["compare", "latest", "latest"]) == 2
        assert "error:" in capsys.readouterr().err

    def test_module_is_executable(self, ledger_dir):
        import subprocess
        import sys
        path, baseline_id, _ = ledger_dir
        proc = subprocess.run(
            [sys.executable, "-m", "repro.telemetry.ledger", "show",
             "--ledger", str(path)],
            capture_output=True, text=True)
        assert proc.returncode == 0
        assert baseline_id in proc.stdout
