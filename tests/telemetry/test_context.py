"""Spans, sessions, nesting, exception safety and the disabled fast path."""

from __future__ import annotations

import threading

import pytest

from repro import telemetry
from repro.telemetry.context import _NULL_SPAN


class TestDisabledPath:
    def test_span_is_shared_null_object_without_session(self):
        assert telemetry.span("anything") is _NULL_SPAN
        assert telemetry.detail_span("anything") is _NULL_SPAN
        assert not telemetry.enabled()
        assert not telemetry.detail_enabled()

    def test_null_span_is_inert(self):
        with telemetry.span("x") as s:
            s.set("a", 1)
            s.bump("b")
            s.annotate(c=2)
        assert s is _NULL_SPAN
        assert s.attrs == {} and s.children == []

    def test_current_without_open_span(self):
        assert telemetry.current() is _NULL_SPAN


class TestNesting:
    def test_children_attach_to_enclosing_span(self):
        with telemetry.session() as sess:
            with telemetry.span("outer"):
                with telemetry.span("inner.a"):
                    pass
                with telemetry.span("inner.b"):
                    with telemetry.span("leaf"):
                        pass
        (root,) = sess.report.spans
        assert root.name == "outer"
        assert [c.name for c in root.children] == ["inner.a", "inner.b"]
        assert [c.name for c in root.children[1].children] == ["leaf"]

    def test_durations_nest_and_self_time_is_nonnegative(self):
        with telemetry.session() as sess:
            with telemetry.span("outer"):
                with telemetry.span("inner"):
                    pass
        (root,) = sess.report.spans
        inner = root.children[0]
        assert root.duration_s >= inner.duration_s >= 0.0
        assert root.self_s >= 0.0

    def test_attributes_recorded(self):
        with telemetry.session() as sess:
            with telemetry.span("work", tag="x") as s:
                s.set("n", 3)
                s.bump("hits")
                s.bump("hits")
        (root,) = sess.report.spans
        assert root.attrs == {"tag": "x", "n": 3, "hits": 2}

    def test_sibling_roots_collected_in_order(self):
        with telemetry.session() as sess:
            for name in ("a", "b", "c"):
                with telemetry.span(name):
                    pass
        assert [s.name for s in sess.report.spans] == ["a", "b", "c"]


class TestExceptionSafety:
    def test_exception_closes_span_and_propagates(self):
        with telemetry.session() as sess:
            with pytest.raises(ValueError):
                with telemetry.span("failing"):
                    raise ValueError("boom")
        (root,) = sess.report.spans
        assert root.attrs["error"] == "ValueError"
        assert root.duration_s >= 0.0

    def test_stack_unwinds_past_skipped_inner_exits(self):
        from repro.telemetry.context import _state

        with telemetry.session() as sess:
            with pytest.raises(RuntimeError):
                with telemetry.span("outer"):
                    inner = telemetry.span("inner")
                    inner.__enter__()  # never exited: the error skips it
                    raise RuntimeError("skipped inner exit")
        assert _state.stack == []
        (root,) = sess.report.spans
        assert root.name == "outer"

    def test_session_exits_cleanly_on_exception(self):
        with pytest.raises(KeyError):
            with telemetry.session():
                raise KeyError("x")
        assert not telemetry.enabled()


class TestSessions:
    def test_report_wall_time_and_totals(self):
        with telemetry.session() as sess:
            with telemetry.span("a"):
                with telemetry.span("b"):
                    pass
            with telemetry.span("b"):
                pass
        report = sess.report
        assert report.wall_s > 0.0
        assert report.span_totals["a"]["count"] == 1
        assert report.span_totals["b"]["count"] == 2
        assert report.span_totals["b"]["total_s"] >= 0.0

    def test_invalid_mode_rejected(self):
        with pytest.raises(ValueError):
            telemetry.session(mode="verbose")

    def test_detail_span_only_in_full_mode(self):
        with telemetry.session(mode="summary") as sess:
            assert telemetry.detail_span("fine") is _NULL_SPAN
            assert not telemetry.detail_enabled()
        assert sess.report.spans == []
        with telemetry.session(mode="full") as sess:
            assert telemetry.detail_enabled()
            with telemetry.detail_span("fine"):
                pass
        assert [s.name for s in sess.report.spans] == ["fine"]

    def test_nested_sessions_fold_totals_outward(self):
        with telemetry.session() as outer:
            with telemetry.span("outer.work"):
                pass
            with telemetry.session() as inner:
                with telemetry.span("inner.work"):
                    pass
        assert [s.name for s in inner.report.spans] == ["inner.work"]
        # The outer report still accounts for the inner session's spans in
        # its aggregate totals (but does not own the span tree).
        assert [s.name for s in outer.report.spans] == ["outer.work"]
        assert outer.report.span_totals["inner.work"]["count"] == 1

    def test_aggregate_only_session_keeps_totals_not_trees(self):
        with telemetry.session(keep_spans=False) as sess:
            for _ in range(3):
                with telemetry.span("chunk"):
                    with telemetry.span("leaf"):
                        pass
        report = sess.report
        assert report.spans == []
        assert report.span_totals["chunk"]["count"] == 3
        assert report.span_totals["leaf"]["count"] == 3
        payload = report.aggregate_payload()
        assert set(payload) == {"span_totals", "metrics", "wall_s"}

    def test_sessions_are_thread_local(self):
        seen = {}

        def worker():
            seen["enabled"] = telemetry.enabled()
            seen["span"] = telemetry.span("w")

        with telemetry.session():
            thread = threading.Thread(target=worker)
            thread.start()
            thread.join()
        assert seen["enabled"] is False
        assert seen["span"] is _NULL_SPAN


class TestAggregation:
    def test_merge_span_totals(self):
        a = {"x": {"count": 1, "total_s": 1.0, "self_s": 0.5}}
        b = {"x": {"count": 2, "total_s": 2.0, "self_s": 1.0},
             "y": {"count": 1, "total_s": 0.25, "self_s": 0.25}}
        merged = telemetry.merge_span_totals(a, b)
        assert merged is a
        assert a["x"] == {"count": 3, "total_s": 3.0, "self_s": 1.5}
        assert a["y"] == {"count": 1, "total_s": 0.25, "self_s": 0.25}
        # The source mapping must not be aliased into the target.
        b["y"]["count"] = 99
        assert a["y"]["count"] == 1
