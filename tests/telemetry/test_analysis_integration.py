"""Telemetry through the analyses: figure-5 traces, coverage, overhead.

The acceptance bar of the observability work: running the paper's figure-5
transient with ``telemetry="full"`` must yield a loadable Perfetto trace
whose depth-1 span tree covers >= 95% of the run's wall time, and the
``telemetry="off"`` path must cost no more than 5% over a build with the
instrumentation stubbed out entirely.
"""

from __future__ import annotations

import json
import time

import pytest

from repro import telemetry
from repro.circuit import Circuit, SimulationOptions
from repro.circuit.analysis.ac import ACAnalysis
from repro.circuit.analysis.dcsweep import DCSweepAnalysis
from repro.circuit.analysis.op import OperatingPointAnalysis
from repro.circuit.analysis.transient import TransientAnalysis
from repro.circuit.devices.passive import Capacitor, Resistor
from repro.circuit.devices.sources import VoltageSource
from repro.errors import AnalysisError
from repro.system.microsystem import (PAPER_PARAMETERS,
                                      build_behavioral_system,
                                      build_drive_waveform)
from repro.telemetry.context import _NULL_SPAN


def _figure5_transient(options: SimulationOptions):
    drive = build_drive_waveform(10.0)
    t_stop = drive.delay + drive.rise + drive.width + drive.fall + 15e-3
    circuit = build_behavioral_system(PAPER_PARAMETERS, drive)
    return TransientAnalysis(circuit, t_stop=t_stop, t_step=4e-4,
                             options=options).run()


def _rc_circuit() -> Circuit:
    circuit = Circuit()
    n_in = circuit.electrical_node("in")
    n_out = circuit.electrical_node("out")
    circuit.add(VoltageSource("V1", n_in, circuit.ground, 1.0))
    circuit.add(Resistor("R1", n_in, n_out, 1e3))
    circuit.add(Capacitor("C1", n_out, circuit.ground, 1e-9))
    return circuit


class TestFigure5FullTrace:
    @pytest.fixture(scope="class")
    def report(self):
        result = _figure5_transient(
            SimulationOptions(trtol=10.0, telemetry="full"))
        return result.telemetry

    def test_result_carries_report(self, report):
        assert report is not None
        assert report.mode == "full"
        (root,) = report.spans
        assert root.name == "transient.run"

    def test_depth1_coverage_at_least_95_percent(self, report):
        (root,) = report.spans
        covered = sum(child.duration_s for child in root.children)
        assert root.duration_s > 0.0
        assert covered / root.duration_s >= 0.95

    def test_chrome_trace_loadable_and_complete(self, report, tmp_path):
        path = report.write_chrome_trace(tmp_path / "figure5.json")
        with open(path, "r", encoding="utf-8") as handle:
            payload = json.load(handle)
        events = payload["traceEvents"]
        assert events and all(event["ph"] == "X" for event in events)
        names = {event["name"] for event in events}
        assert {"transient.run", "transient.op", "transient.step"} <= names

    def test_convergence_diagnostics_attached(self, report):
        diag = report.convergence
        assert diag is not None
        summary = diag.summary()
        assert summary["newton_solves"] > 0
        assert summary["steps"] > 0
        assert diag.steps[0].dt > 0.0
        assert diag.newton[0].residuals  # residual trajectory recorded

    def test_solve_timing_histograms_recorded(self, report):
        histograms = report.metrics["histograms"]
        assert "newton.tran.solve_s" in histograms
        assert any(name.startswith("mna.assembly.tran.")
                   for name in histograms)
        assert any(name.startswith("linalg.factorize.")
                   for name in histograms)


class TestDisabledOverhead:
    def test_off_within_5_percent_of_stubbed_out_baseline(self, monkeypatch):
        """telemetry="off" must cost <= 5% over no instrumentation at all."""
        options = SimulationOptions(trtol=10.0)
        _figure5_transient(options)  # warm caches/JIT-ish costs once

        def timed() -> float:
            start = time.perf_counter()
            _figure5_transient(options)
            return time.perf_counter() - start

        def timed_baseline() -> float:
            with monkeypatch.context() as patch:
                patch.setattr(telemetry, "span",
                              lambda name, **attrs: _NULL_SPAN)
                patch.setattr(telemetry, "detail_span",
                              lambda name, **attrs: _NULL_SPAN)
                patch.setattr(telemetry, "enabled", lambda: False)
                return timed()

        # Machine-load drift on the (1-CPU) CI box dwarfs the overhead being
        # measured, so compare back-to-back pairs (same load window) and
        # alternate the order within each pair; the best pair ratio
        # converges on the true relative cost.
        ratios = []
        for round_index in range(8):
            if round_index % 2:
                off = timed()
                baseline = timed_baseline()
            else:
                baseline = timed_baseline()
                off = timed()
            ratios.append(off / baseline)
        assert min(ratios) <= 1.05


class TestAnalysisReports:
    def test_op_summary_report(self):
        result = OperatingPointAnalysis(
            _rc_circuit(), options=SimulationOptions(telemetry="summary")).run()
        report = result.telemetry
        assert report.span_totals["op.run"]["count"] == 1
        assert report.convergence.summary()["newton_solves"] >= 1

    def test_op_off_has_no_report(self):
        result = OperatingPointAnalysis(_rc_circuit()).run()
        assert result.telemetry is None
        assert not telemetry.enabled()  # session fully unwound

    def test_dcsweep_detail_spans_only_in_full_mode(self):
        for mode, expect_points in (("summary", False), ("full", True)):
            analysis = DCSweepAnalysis(_rc_circuit(), "V1", [0.0, 0.5, 1.0],
                                       options=SimulationOptions(telemetry=mode))
            report = analysis.run().telemetry
            assert ("dcsweep.point" in report.span_totals) is expect_points
            if expect_points:
                assert report.span_totals["dcsweep.point"]["count"] == 3

    def test_ac_detail_spans_count_frequencies(self):
        analysis = ACAnalysis(_rc_circuit(), [1e3, 1e4, 1e5],
                              options=SimulationOptions(telemetry="full"))
        result = analysis.run()
        report = result.telemetry
        assert report.span_totals["ac.run"]["count"] == 1
        assert report.span_totals["ac.point"]["count"] == len(result.frequencies)

    def test_invalid_mode_rejected_by_options(self):
        with pytest.raises(AnalysisError):
            SimulationOptions(telemetry="loud")
