"""The metrics registry: counters, gauges, histograms, delta/merge/reset."""

from __future__ import annotations

import pytest

from repro.linalg import metrics
from repro.telemetry import registry


@pytest.fixture(autouse=True)
def _clean_registry():
    registry.reset(prefix="test.")
    yield
    registry.reset(prefix="test.")


class TestPrimitives:
    def test_counter_inc_and_read(self):
        assert registry.counter_value("test.c") == 0
        registry.inc("test.c")
        registry.inc("test.c", 2.5)
        assert registry.counter_value("test.c") == 3.5

    def test_gauge_last_write_wins(self):
        registry.set_gauge("test.g", 1.0)
        registry.set_gauge("test.g", -4.0)
        assert registry.gauge_value("test.g") == -4.0

    def test_histogram_digest(self):
        assert registry.histogram_value("test.h") is None
        for value in (3.0, 1.0, 2.0):
            registry.observe("test.h", value)
        digest = registry.histogram_value("test.h")
        assert digest == {"count": 3, "sum": 6.0, "min": 1.0, "max": 3.0}

    def test_snapshot_is_detached_copy(self):
        registry.inc("test.c")
        snap = registry.snapshot()
        registry.inc("test.c")
        assert snap["counters"]["test.c"] == 1
        assert registry.counter_value("test.c") == 2


class TestDeltaMerge:
    def test_delta_drops_unchanged(self):
        registry.inc("test.stable")
        before = registry.snapshot()
        registry.inc("test.changed", 2)
        registry.observe("test.h_s", 0.5)
        diff = registry.delta(before)
        assert diff["counters"] == {"test.changed": 2}
        assert "test.stable" not in diff["counters"]
        assert diff["histograms"]["test.h_s"]["count"] == 1

    def test_delta_of_histogram_growth(self):
        registry.observe("test.h_s", 1.0)
        before = registry.snapshot()
        registry.observe("test.h_s", 3.0)
        diff = registry.delta(before)
        digest = diff["histograms"]["test.h_s"]
        assert digest["count"] == 1 and digest["sum"] == 3.0

    def test_merge_accumulates(self):
        total = {}
        registry.merge(total, {"counters": {"test.c": 1},
                               "histograms": {"test.h": {"count": 1, "sum": 2.0,
                                                         "min": 2.0, "max": 2.0}}})
        registry.merge(total, {"counters": {"test.c": 2},
                               "gauges": {"test.g": 7.0},
                               "histograms": {"test.h": {"count": 2, "sum": 1.0,
                                                         "min": 0.5, "max": 0.5}}})
        assert total["counters"]["test.c"] == 3
        assert total["gauges"]["test.g"] == 7.0
        assert total["histograms"]["test.h"] == {"count": 3, "sum": 3.0,
                                                 "min": 0.5, "max": 2.0}

    def test_serial_equals_merged_chunks(self):
        """Splitting a stream of observations into deltas loses nothing."""
        base = registry.snapshot()
        registry.inc("test.c", 5)
        registry.observe("test.h", 1.0)
        mid = registry.snapshot()
        registry.inc("test.c", 7)
        registry.observe("test.h", 9.0)
        merged = registry.merge(registry.merge({}, registry.delta(base, mid)),
                                registry.delta(mid))
        whole = registry.delta(base)
        assert merged["counters"] == whole["counters"]
        assert merged["histograms"]["test.h"]["count"] == \
            whole["histograms"]["test.h"]["count"]
        assert merged["histograms"]["test.h"]["sum"] == \
            whole["histograms"]["test.h"]["sum"]

    def test_reset_filters(self):
        registry.inc("test.a")
        registry.inc("test.b")
        registry.set_gauge("test.g", 1.0)
        registry.reset(names=["test.a"])
        assert registry.counter_value("test.a") == 0
        assert registry.counter_value("test.b") == 1
        registry.reset(prefix="test.")
        assert registry.counter_value("test.b") == 0
        assert registry.gauge_value("test.g") == 0.0


class TestLinalgMetricsShim:
    """repro.linalg.metrics keeps its exact legacy contract over the registry."""

    def test_record_lands_in_registry(self):
        metrics.reset()
        metrics.record("factorizations")
        assert metrics.snapshot()["factorizations"] == 1
        assert registry.counter_value("linalg.factorizations") == 1

    def test_unknown_name_still_rejected(self):
        with pytest.raises(KeyError):
            metrics.record("bogus")

    def test_session_delta_sees_linalg_counters(self):
        from repro import telemetry

        metrics.reset()
        with telemetry.session() as sess:
            metrics.record("factorizations", 3)
        assert sess.report.metrics["counters"]["linalg.factorizations"] == 3
