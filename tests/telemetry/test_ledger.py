"""Run records, the persistent ledger store, diffing and regression gating."""

from __future__ import annotations

import json

import pytest

from repro.telemetry.ledger import (LedgerError, LedgerSchemaError,
                                    RegressionPolicy, RunLedger, RunRecord,
                                    SCHEMA, canonical_json, check_regressions,
                                    content_id, diff)


def make_record(label="run", wall_s=1.0, newton_iterations=40,
                solve_s_sum=0.8, counter=12, git_sha="a" * 40,
                created="2026-08-07T00:00:00+00:00"):
    """A fully populated record with deterministic provenance."""
    return RunRecord(
        label,
        span_totals={
            "tran.run": {"count": 1, "total_s": wall_s, "self_s": 0.1},
            "newton.solve": {"count": newton_iterations,
                             "total_s": solve_s_sum, "self_s": solve_s_sum},
        },
        metrics={
            "counters": {"linalg.factorizations": counter},
            "gauges": {"step.size": 2e-4},
            "histograms": {
                "batch.size": {"count": 4, "sum": 64.0, "min": 8.0,
                               "max": 32.0},
                "batch.solve_s": {"count": 4, "sum": solve_s_sum,
                                  "min": 0.01, "max": 0.5},
            },
        },
        convergence={"newton_solves": 10,
                     "newton_iterations": newton_iterations,
                     "step_rejection_rate": 0.125},
        benchmarks={"bench_a.py::test_fig5": {
            "outcome": "passed", "duration_s": wall_s,
            "benchmark": {"rounds": 5, "min_s": 0.9 * wall_s,
                          "mean_s": wall_s, "max_s": 1.1 * wall_s}}},
        wall_s=wall_s,
        options_fingerprint="deadbeef",
        provenance={"git_sha": git_sha, "created_utc": created,
                    "host": "ci-host", "platform": "linux",
                    "versions": {"python": "3.11", "numpy": "2.4",
                                 "scipy": "1.17"}},
    )


class TestRoundTrip:
    def test_serialize_load_is_identity(self, tmp_path):
        record = make_record()
        path = record.dump(tmp_path / "record.json")
        loaded = RunRecord.load(path)
        assert loaded.to_json() == record.to_json()
        assert loaded.record_id == record.record_id

    def test_record_id_is_deterministic_and_content_addressed(self):
        a, b = make_record(), make_record()
        assert a.record_id == b.record_id
        assert a.record_id == content_id(a.to_json())
        # Any payload change moves the ID.
        assert make_record(wall_s=2.0).record_id != a.record_id

    def test_diff_of_round_tripped_record_is_empty(self, tmp_path):
        record = make_record()
        path = record.dump(tmp_path / "record.json")
        delta_view = diff(record, RunRecord.load(path))
        assert delta_view.structurally_identical
        assert not delta_view.changed()

    def test_records_never_alias_nested_state(self):
        record = make_record()
        clone = RunRecord.from_json(record.to_json())
        clone.benchmarks["bench_a.py::test_fig5"]["benchmark"]["mean_s"] = 99.0
        assert record.benchmarks["bench_a.py::test_fig5"]["benchmark"][
            "mean_s"] == 1.0

    def test_schema_mismatch_raises_clearly(self):
        payload = make_record().to_json()
        payload["schema"] = "repro-run-record/999"
        with pytest.raises(LedgerSchemaError, match="repro-run-record/999"):
            RunRecord.from_json(payload)
        assert issubclass(LedgerSchemaError, LedgerError)

    def test_bench_ledger_schema_mismatch_raises(self):
        with pytest.raises(LedgerSchemaError, match="nonsense"):
            RunRecord.from_bench_ledger({"schema": "nonsense", "results": []})

    def test_canonical_json_is_stable_under_key_order(self):
        assert canonical_json({"b": 1, "a": 2}) == canonical_json(
            {"a": 2, "b": 1})


class TestFromReport:
    def test_accepts_campaign_profile_mapping(self):
        profile = {"mode": "summary",
                   "span_totals": {"op.run": {"count": 3, "total_s": 0.3,
                                              "self_s": 0.2}},
                   "metrics": {"counters": {"linalg.factorizations": 3},
                               "gauges": {}, "histograms": {}},
                   "wall_s": 0.3}
        record = RunRecord.from_report(profile, label="campaign")
        assert record.label == "campaign"
        assert record.span_totals["op.run"]["count"] == 3
        assert record.wall_s == pytest.approx(0.3)

    def test_newton_iterations_derived_from_solve_histograms(self):
        # Session-level reports drop per-analysis convergence diagnostics;
        # the record derives Newton work from the solve-time histogram
        # counts (one linear solve per iteration) so figure-5 records
        # always diff on conv.newton_iterations.
        report = {"mode": "summary", "span_totals": {}, "wall_s": 1.0,
                  "metrics": {"counters": {}, "gauges": {}, "histograms": {
                      "newton.op.solve_s": {"count": 7, "sum": 0.1,
                                            "min": 0.01, "max": 0.02},
                      "newton.tran.solve_s": {"count": 35, "sum": 0.5,
                                              "min": 0.01, "max": 0.02},
                      "linalg.factorize.dense_s": {"count": 9, "sum": 0.1,
                                                   "min": 0.01, "max": 0.02},
                  }}}
        record = RunRecord.from_report(report, label="figure5")
        assert record.convergence == {"newton_iterations": 42}
        # An attached convergence summary always wins over the derivation.
        explicit = dict(report, convergence={"newton_iterations": 5})
        assert RunRecord.from_report(explicit).convergence == \
            {"newton_iterations": 5}

    def test_from_bench_ledger_ingests_v2_payload(self):
        payload = {
            "schema": "repro-bench-ledger/2",
            "provenance": {"git_sha": "c" * 40,
                           "created_utc": "2026-08-07T00:00:00+00:00",
                           "host": "h", "platform": "p",
                           "versions": {"python": "3.11"}},
            "results": [{"test": "b.py::t1", "outcome": "passed",
                         "duration_s": 2.0,
                         "benchmark": {"rounds": 3, "min_s": 1.8,
                                       "mean_s": 2.0, "max_s": 2.2}},
                        {"test": "b.py::t2", "outcome": "passed",
                         "duration_s": 1.0, "benchmark": None}],
        }
        record = RunRecord.from_bench_ledger(payload)
        assert record.label == "bench"
        assert record.wall_s == pytest.approx(3.0)
        assert record.benchmarks["b.py::t1"]["benchmark"]["mean_s"] == 2.0
        assert record.provenance["git_sha"] == "c" * 40


class TestDiff:
    def test_reports_wall_time_and_newton_iteration_deltas(self):
        baseline = make_record(wall_s=1.0, newton_iterations=40)
        current = make_record(wall_s=1.5, newton_iterations=48)
        delta_view = diff(baseline, current)

        wall = delta_view.get("wall_s")
        assert wall.family == "time"
        assert wall.absolute == pytest.approx(0.5)
        assert wall.relative == pytest.approx(0.5)

        newton = delta_view.get("conv.newton_iterations")
        assert newton.family == "counter"
        assert newton.absolute == pytest.approx(8)

        table = delta_view.format_table()
        assert "wall_s" in table
        assert "conv.newton_iterations" in table

    def test_headline_rows_present_even_when_unchanged(self):
        table = diff(make_record(), make_record()).format_table()
        assert "wall_s" in table
        assert "conv.newton_iterations" in table
        assert "no changed metrics" in table

    def test_histogram_digests_compare_by_mean_not_point_value(self):
        baseline = make_record(solve_s_sum=0.8)
        current = make_record(solve_s_sum=1.6)
        delta_view = diff(baseline, current)
        mean = delta_view.get("hist.batch.solve_s.mean")
        assert mean.family == "time"
        assert mean.baseline == pytest.approx(0.2)
        assert mean.current == pytest.approx(0.4)
        count = delta_view.get("hist.batch.solve_s.count")
        assert count.family == "counter"
        assert not count.changed

    def test_non_seconds_histogram_mean_is_gauge_family(self):
        delta_view = diff(make_record(), make_record())
        assert delta_view.get("hist.batch.size.mean").family == "gauge"

    def test_structural_changes_are_listed_not_judged(self):
        baseline = make_record()
        current = make_record()
        current.span_totals["new.phase"] = {"count": 1, "total_s": 0.1,
                                            "self_s": 0.1}
        del current.metrics["counters"]["linalg.factorizations"]
        delta_view = diff(baseline, current)
        assert "span.new.phase" in delta_view.added
        assert "counter.linalg.factorizations" in delta_view.removed
        assert not delta_view.structurally_identical

    def test_convergence_ints_are_counters_floats_are_gauges(self):
        delta_view = diff(make_record(), make_record())
        assert delta_view.get("conv.newton_iterations").family == "counter"
        assert delta_view.get("conv.step_rejection_rate").family == "gauge"

    def test_label_mismatch_is_called_out(self):
        table = diff(make_record(label="a"),
                     make_record(label="b")).format_table()
        assert "WARNING" in table


class TestRegressionGate:
    def test_identical_records_pass(self):
        verdict = check_regressions(make_record(), make_record())
        assert verdict.ok
        assert verdict.status == "ok"
        assert verdict.families == []

    def test_injected_2x_slowdown_fails_and_names_the_time_family(self):
        baseline = make_record(wall_s=1.0)
        slowed = make_record(wall_s=2.0)  # 2x the wall-time metric family
        verdict = check_regressions(slowed, baseline)
        assert not verdict.ok
        assert "time" in verdict.families
        names = {failure["name"] for failure in verdict.failures}
        assert "wall_s" in names
        # The rendered verdict names the family too (what CI logs show).
        assert "time" in verdict.format()
        assert verdict.to_json()["families"] == verdict.families

    def test_counter_drift_is_exact_by_default(self):
        baseline = make_record(newton_iterations=40)
        drifted = make_record(newton_iterations=41)
        verdict = check_regressions(drifted, baseline)
        assert not verdict.ok
        assert verdict.families == ["counter"]

    def test_time_noise_within_tolerance_passes(self):
        baseline = make_record(wall_s=1.0)
        noisy = make_record(wall_s=1.2)  # +20% < default 25% tolerance
        # Only perturb wall_s; keep span timings equal so the single
        # perturbed metric is the one under test.
        noisy.span_totals = dict(baseline.span_totals)
        assert check_regressions(noisy, baseline).ok

    def test_absolute_floor_ignores_microsecond_jitter(self):
        baseline = make_record(wall_s=1e-4)
        jittery = make_record(wall_s=3e-4)  # 3x, but well under the 5 ms floor
        jittery.span_totals = dict(baseline.span_totals)
        assert check_regressions(jittery, baseline).ok

    def test_speedups_never_fail_time_checks(self):
        baseline = make_record(wall_s=2.0)
        faster = make_record(wall_s=0.5)
        faster.span_totals = dict(baseline.span_totals)
        assert check_regressions(faster, baseline).ok

    def test_gauges_unchecked_unless_opted_in(self):
        baseline = make_record()
        drifted = make_record()
        drifted.metrics["gauges"]["step.size"] = 1.0  # huge drift
        assert check_regressions(drifted, baseline).ok
        strict = RegressionPolicy(check_gauges=True)
        verdict = check_regressions(drifted, baseline, strict)
        assert not verdict.ok
        assert verdict.families == ["gauge"]

    def test_structural_failure_is_opt_in(self):
        baseline = make_record()
        current = make_record()
        current.span_totals["new.phase"] = {"count": 1, "total_s": 0.0,
                                            "self_s": 0.0}
        assert check_regressions(current, baseline).ok
        policy = RegressionPolicy(fail_on_structural=True)
        verdict = check_regressions(current, baseline, policy)
        assert not verdict.ok
        assert any("new.phase" in name for name in verdict.structural)


class TestRunLedger:
    def test_append_load_latest(self, tmp_path):
        ledger = RunLedger(tmp_path)
        record = make_record()
        record_id = ledger.append(record)
        assert record_id == record.record_id
        assert ledger.load("latest").record_id == record_id
        assert ledger.load(record_id[:6]).record_id == record_id
        assert len(ledger) == 1

    def test_append_deduplicates_by_content(self, tmp_path):
        ledger = RunLedger(tmp_path)
        ledger.append(make_record())
        ledger.append(make_record())
        assert len(ledger) == 1
        ledger.append(make_record(wall_s=2.0))
        assert len(ledger) == 2

    def test_retention_bound_trims_oldest_on_append(self, tmp_path):
        ledger = RunLedger(tmp_path, retain=3)
        ids = [ledger.append(make_record(wall_s=1.0 + i)) for i in range(5)]
        assert len(ledger) == 3
        assert ledger.ids() == ids[-3:]  # oldest two dropped, order kept

    def test_gc_respects_retention_and_reports_removals(self, tmp_path):
        ledger = RunLedger(tmp_path, retain=10)
        for i in range(6):
            ledger.append(make_record(wall_s=1.0 + i))
        assert ledger.gc() == 0  # within bound: nothing to do
        assert ledger.gc(keep=2) == 4
        assert len(ledger) == 2
        assert ledger.gc(keep=0) == 2
        assert len(ledger) == 0

    def test_unknown_and_ambiguous_refs_raise(self, tmp_path):
        ledger = RunLedger(tmp_path)
        with pytest.raises(LedgerError, match="no records"):
            ledger.load("latest")
        ledger.append(make_record())
        with pytest.raises(LedgerError, match="no record with id prefix"):
            ledger.load("zzzzzz")

    def test_corrupt_line_fails_loudly(self, tmp_path):
        ledger = RunLedger(tmp_path)
        ledger.append(make_record())
        with open(ledger.path, "a", encoding="utf-8") as handle:
            handle.write("{not json\n")
        with pytest.raises(LedgerError, match="corrupt"):
            ledger.load("latest")

    def test_empty_ledger_latest_is_none(self, tmp_path):
        assert RunLedger(tmp_path).latest() is None

    def test_retain_must_be_positive(self, tmp_path):
        with pytest.raises(LedgerError):
            RunLedger(tmp_path, retain=0)


class TestSummary:
    def test_summary_has_identity_and_headlines(self):
        summary = make_record().summary()
        assert summary["id"] == make_record().record_id
        assert summary["git_sha"] == "a" * 12
        assert summary["newton_iterations"] == 40
        assert summary["benchmarks"] == 1
        json.dumps(summary)  # JSON-serializable

    def test_schema_tag_is_stamped(self):
        assert make_record().to_json()["schema"] == SCHEMA

    def test_telemetry_report_renders_profile_with_histograms(self):
        text = make_record().telemetry_report().profile_summary()
        assert "tran.run" in text
        assert "batch.solve_s" in text
        assert text.splitlines()[-1].startswith("wall time:")
