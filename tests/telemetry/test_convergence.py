"""Convergence diagnostics: record types, caps, summary digests."""

from __future__ import annotations

from repro.telemetry import (ConvergenceDiagnostics, IterateRecord,
                             NewtonTrace, StepRecord)


class TestRecords:
    def test_newton_trace(self):
        trace = NewtonTrace("transient", [1.0, 1e-3, 1e-10],
                            converged=True, time=0.5)
        assert trace.iterations == 3
        payload = trace.to_json()
        assert payload["context"] == "transient" and payload["time"] == 0.5

    def test_step_and_iterate_records(self):
        step = StepRecord(time=1e-3, dt=1e-4, accepted=False, error_ratio=3.0)
        assert step.to_json()["accepted"] is False
        iterate = IterateRecord(2, 0.5, {"gap": 1e-6})
        assert iterate.to_json() == {"iteration": 2, "objective": 0.5,
                                     "params": {"gap": 1e-6}}


class TestDiagnostics:
    def test_summary_digest(self):
        diag = ConvergenceDiagnostics()
        diag.add_newton(NewtonTrace("op", [1.0, 1e-9], converged=True))
        diag.add_newton(NewtonTrace("op", [1.0] * 5, converged=False))
        diag.add_step(StepRecord(0.0, 1e-4, accepted=True))
        diag.add_step(StepRecord(1e-4, 2e-4, accepted=True))
        diag.add_step(StepRecord(3e-4, 4e-4, accepted=False, error_ratio=2.0))
        diag.add_iterate(IterateRecord(1, 1.0))
        summary = diag.summary()
        assert summary["newton_solves"] == 2
        assert summary["newton_iterations"] == 7
        assert summary["newton_max_iterations"] == 5
        assert summary["newton_failures"] == 1
        assert summary["steps"] == 3
        assert summary["steps_rejected"] == 1
        assert summary["step_rejection_rate"] == 1.0 / 3.0
        assert summary["step_size_min"] == 1e-4
        assert summary["step_size_max"] == 2e-4
        assert summary["optimizer_iterates"] == 1

    def test_cap_keeps_counting_but_stops_storing(self):
        diag = ConvergenceDiagnostics(max_records=3)
        for i in range(10):
            diag.add_step(StepRecord(i * 1e-4, 1e-4, accepted=True))
        assert len(diag.steps) == 3
        assert diag.steps_total == 10
        assert diag.summary()["steps"] == 10

    def test_to_json_round_trip_shape(self):
        import json

        diag = ConvergenceDiagnostics()
        diag.add_newton(NewtonTrace("dc", [1.0], converged=True))
        payload = json.loads(json.dumps(diag.to_json()))
        assert set(payload) == {"summary", "newton", "steps", "iterates"}
