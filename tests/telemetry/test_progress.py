"""Progress reporting: events, trackers, throttling and the logging bridge."""

from __future__ import annotations

import logging

import pytest

from repro import telemetry
from repro.circuit import Circuit, SimulationOptions
from repro.circuit.analysis.dcsweep import DCSweepAnalysis
from repro.circuit.analysis.transient import TransientAnalysis
from repro.telemetry import progress


class TestProgressEvent:
    def test_fraction_and_str(self):
        event = progress.ProgressEvent(phase="campaign", completed=25.0,
                                       total=100.0, unit="points", eta_s=3.0)
        assert event.fraction == pytest.approx(0.25)
        text = str(event)
        assert "campaign" in text and "25.0%" in text
        assert "(25/100 points)" in text and "eta 3.0s" in text

    def test_unknown_total_has_no_fraction(self):
        event = progress.ProgressEvent(phase="tran", completed=7.0, total=None)
        assert event.fraction is None
        assert "(7)" in str(event)

    def test_fraction_clamps_to_one(self):
        event = progress.ProgressEvent(phase="x", completed=12.0, total=10.0)
        assert event.fraction == 1.0


class TestReportingScope:
    def test_plain_callable_is_adapted(self):
        events = []
        with progress.reporting(events.append):
            progress.tracker("unit", total=2).update(1)
        assert [e.completed for e in events] == [1.0]

    def test_tracker_is_null_without_reporter(self):
        assert progress.tracker("unit") is progress._NULL_TRACKER
        assert not progress.active()
        # The null tracker swallows updates without error.
        progress.tracker("unit").update(1)
        progress.tracker("unit").finish()

    def test_scope_installs_and_removes(self):
        with progress.reporting(lambda event: None):
            assert progress.active()
            assert isinstance(progress.tracker("unit"),
                              progress.ProgressTracker)
        assert not progress.active()

    def test_nested_scopes_latest_wins(self):
        outer, inner = [], []
        with progress.reporting(outer.append):
            with progress.reporting(inner.append):
                progress.tracker("unit").update(1)
            progress.tracker("unit").update(2)
        assert [e.completed for e in inner] == [1.0]
        assert [e.completed for e in outer] == [2.0]

    def test_close_called_on_exit(self):
        class Closing(progress.ProgressReporter):
            closed = False

            def update(self, event):
                pass

            def close(self):
                self.closed = True

        reporter = Closing()
        with progress.reporting(reporter):
            pass
        assert reporter.closed

    def test_failing_close_does_not_raise(self):
        class Exploding(progress.ProgressReporter):
            def update(self, event):
                pass

            def close(self):
                raise RuntimeError("boom")

        with progress.reporting(Exploding()):
            pass  # the scope exit must swallow the close() failure


class TestTracker:
    def test_eta_shrinks_with_progress(self):
        events = []
        with progress.reporting(events.append):
            track = progress.tracker("unit", total=4, unit="steps")
            track.update(1)
            track.update(3)
        first, second = events
        assert first.eta_s >= 0.0 and second.eta_s >= 0.0
        assert first.total == 4.0 and first.unit == "steps"

    def test_throttle_drops_intermediate_events(self):
        events = []
        with progress.reporting(events.append, min_interval_s=3600.0):
            track = progress.tracker("unit", total=100)
            for index in range(50):
                track.update(index + 1)
            track.finish(100, message="all done")
        # First update always fires; the rest throttle; finish never does.
        assert len(events) == 2
        assert events[0].completed == 1.0
        assert events[-1].done and events[-1].message == "all done"

    def test_force_bypasses_the_throttle(self):
        events = []
        with progress.reporting(events.append, min_interval_s=3600.0):
            track = progress.tracker("unit", total=10)
            track.update(1)
            track.update(2, force=True)
        assert [e.completed for e in events] == [1.0, 2.0]

    def test_broken_reporter_never_breaks_the_loop(self):
        def explode(event):
            raise RuntimeError("observer bug")

        with progress.reporting(explode):
            track = progress.tracker("unit", total=2)
            track.update(1)
            track.finish(2)

    def test_data_kwargs_ride_on_the_event(self):
        events = []
        with progress.reporting(events.append):
            progress.tracker("unit").update(1, step_size=1e-9)
        assert events[0].data == {"step_size": 1e-9}

    def test_finish_defaults_to_the_total(self):
        events = []
        with progress.reporting(events.append):
            progress.tracker("unit", total=8).finish()
        assert events[0].completed == 8.0 and events[0].eta_s == 0.0


class TestDegenerateTotals:
    def test_zero_total_completes_immediately(self):
        events = []
        with progress.reporting(events.append):
            track = progress.tracker("sweep", total=0, unit="points")
            # The instrumented loop never runs; later calls are no-ops.
            track.update(0)
            track.finish()
        assert len(events) == 1
        event = events[0]
        assert event.done and event.total == 0.0
        assert event.eta_s == 0.0
        assert event.fraction == 1.0

    def test_negative_total_is_degenerate_too(self):
        events = []
        with progress.reporting(events.append):
            progress.tracker("sweep", total=-3)
        assert len(events) == 1 and events[0].done

    def test_zero_total_fraction_never_divides(self):
        intermediate = progress.ProgressEvent(phase="x", completed=0.0,
                                              total=0.0)
        assert intermediate.fraction is None
        final = progress.ProgressEvent(phase="x", completed=0.0, total=0.0,
                                       done=True)
        assert final.fraction == 1.0
        str(intermediate), str(final)  # formatting never divides either

    def test_finish_is_at_most_once(self):
        events = []
        with progress.reporting(events.append):
            track = progress.tracker("unit", total=4)
            track.finish(4)
            track.finish(4)
            track.update(5)
        assert len(events) == 1 and events[0].done

    def test_explicit_zero_total_finish_reports_zero_eta(self):
        events = []
        with progress.reporting(events.append):
            progress.tracker("unit", total=0.0)
        assert events[0].eta_s == 0.0


class TestLoggingBridge:
    def test_events_become_span_tagged_records(self, caplog):
        target = logging.getLogger("test.progress.bridge")
        reporter = progress.LoggingProgressReporter(target, level=logging.INFO)
        with caplog.at_level(logging.INFO, logger="test.progress.bridge"):
            with progress.reporting(reporter):
                with telemetry.session(mode="summary"):
                    with telemetry.span("outer"):
                        progress.tracker("unit", total=2).update(1)
        assert len(caplog.records) == 1
        record = caplog.records[0]
        assert "unit" in record.getMessage() and "50.0%" in record.getMessage()
        assert record.span_path == "outer"


class TestAnalysisIntegration:
    @staticmethod
    def _rc() -> Circuit:
        circuit = Circuit()
        circuit.voltage_source("V1", "in", "0", 1.0)
        circuit.resistor("R1", "in", "out", 1e3)
        circuit.capacitor("C1", "out", "0", 1e-9)
        return circuit

    def test_transient_reports_simulated_time(self):
        events = []
        with telemetry.reporting(events.append):
            TransientAnalysis(self._rc(), t_stop=1e-6, t_step=1e-7,
                              options=SimulationOptions(reltol=1e-3)).run()
        tran = [e for e in events if e.phase == "transient"]
        assert tran, "transient must emit progress events"
        assert tran[-1].done
        assert tran[-1].completed == pytest.approx(1e-6, rel=0.2)

    def test_dc_sweep_reports_points(self):
        events = []
        with telemetry.reporting(events.append):
            DCSweepAnalysis(self._rc(), "V1", [0.0, 0.5, 1.0]).run()
        sweep = [e for e in events if e.phase == "dcsweep"]
        assert sweep and sweep[-1].done
        assert sweep[-1].completed == 3.0 and sweep[-1].total == 3.0

    def test_quiet_without_a_reporter(self):
        # No reporter installed: analyses run exactly as before.
        result = DCSweepAnalysis(self._rc(), "V1", [0.0, 1.0]).run()
        assert len(result["v(out)"]) == 2
