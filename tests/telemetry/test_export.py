"""Exporters: Chrome trace_event files, structured JSON, profile tables."""

from __future__ import annotations

import json

import pytest

from repro import telemetry


def _collect_tree():
    with telemetry.session() as sess:
        with telemetry.span("run", kind="test") as run:
            with telemetry.span("run.phase_a"):
                pass
            with telemetry.span("run.phase_b"):
                with telemetry.span("run.leaf", n=3):
                    pass
            run.set("steps", 2)
    return sess.report


class TestChromeTrace:
    def test_events_are_complete_events_with_microsecond_units(self):
        report = _collect_tree()
        events = report.chrome_trace()
        assert len(events) == 4
        assert all(event["ph"] == "X" for event in events)
        assert all(set(event) >= {"name", "ph", "ts", "dur", "pid", "tid", "cat"}
                   for event in events)
        by_name = {event["name"]: event for event in events}
        assert by_name["run"]["cat"] == "run"
        assert by_name["run"]["args"]["steps"] == 2
        assert by_name["run.leaf"]["args"]["n"] == 3

    def test_children_nest_within_parents(self):
        report = _collect_tree()
        by_name = {e["name"]: e for e in report.chrome_trace()}
        parent = by_name["run"]
        for child_name in ("run.phase_a", "run.phase_b"):
            child = by_name[child_name]
            assert child["ts"] >= parent["ts"]
            assert child["ts"] + child["dur"] <= \
                parent["ts"] + parent["dur"] + 1e-3  # rounding slack (µs)
        leaf = by_name["run.leaf"]
        phase_b = by_name["run.phase_b"]
        assert leaf["ts"] >= phase_b["ts"]

    def test_written_file_is_loadable_json(self, tmp_path):
        report = _collect_tree()
        path = report.write_chrome_trace(tmp_path / "trace.json")
        with open(path, "r", encoding="utf-8") as handle:
            payload = json.load(handle)
        assert payload["displayTimeUnit"] == "ms"
        assert isinstance(payload["traceEvents"], list)
        assert all(event["ph"] == "X" for event in payload["traceEvents"])
        # Every value must already be JSON-primitive (round trip is lossless).
        assert payload["traceEvents"] == report.chrome_trace()


class TestStructuredJson:
    def test_report_to_json_round_trips_through_json(self):
        report = _collect_tree()
        payload = report.to_json()
        restored = json.loads(json.dumps(payload))
        assert restored["mode"] == "full"
        assert restored["spans"][0]["name"] == "run"
        names = {child["name"] for child in restored["spans"][0]["children"]}
        assert names == {"run.phase_a", "run.phase_b"}
        assert restored["span_totals"]["run"]["count"] == 1

    def test_convergence_included_when_attached(self):
        report = _collect_tree()
        diag = telemetry.ConvergenceDiagnostics()
        diag.add_newton(telemetry.NewtonTrace("op", [1.0, 1e-9], converged=True))
        report.convergence = diag
        payload = report.to_json()
        assert payload["convergence"]["summary"]["newton_solves"] == 1
        assert payload["convergence"]["newton"][0]["residuals"] == [1.0, 1e-9]


class TestProfileSummary:
    def test_table_lists_heaviest_spans(self):
        report = _collect_tree()
        table = report.profile_summary()
        lines = table.splitlines()
        assert lines[0].startswith("span")
        assert any("run.leaf" in line for line in lines)
        assert lines[-1].startswith("wall time:")

    def test_limit_caps_rows_and_reports_omissions(self):
        report = _collect_tree()
        short = report.profile_summary(limit=1)
        lines = short.splitlines()
        # header + rule + 1 row + omission footer + wall-time footer
        assert len(lines) == 5
        assert "3 rows omitted" in lines[-2]
        # An untruncated table has no omission footer.
        full = report.profile_summary(limit=100)
        assert "omitted" not in full

    def test_sort_keys_reorder_rows(self):
        report = _collect_tree()
        # Inflate one span's count so count-order differs from self-order.
        report.span_totals["run.leaf"]["count"] = 99
        by_count = report.profile_summary(sort="count").splitlines()
        assert by_count[2].startswith("run.leaf")
        by_total = report.profile_summary(sort="total").splitlines()
        assert by_total[2].startswith("run ")
        with pytest.raises(ValueError):
            report.profile_summary(sort="bogus")

    def test_percent_of_total_column_present(self):
        report = _collect_tree()
        header = report.profile_summary().splitlines()[0]
        assert "total %" in header and "self %" in header


class TestProfileHistograms:
    def _report_with_histograms(self):
        report = _collect_tree()
        report.metrics = {
            "counters": {}, "gauges": {},
            "histograms": {
                "batch.size": {"count": 4, "sum": 64.0, "min": 8.0,
                               "max": 32.0},
                "batch.solve_s": {"count": 4, "sum": 0.08, "min": 0.01,
                                  "max": 0.03},
            },
        }
        return report

    def test_histogram_section_appended(self):
        table = self._report_with_histograms().profile_summary()
        assert "histogram" in table
        assert "batch.size" in table and "batch.solve_s" in table
        # The wall-time footer stays the very last line.
        assert table.splitlines()[-1].startswith("wall time:")

    def test_digest_mean_and_units(self):
        table = self._report_with_histograms().profile_summary()
        size_line = next(line for line in table.splitlines()
                         if line.startswith("batch.size"))
        assert "16" in size_line  # mean = 64/4, plain number
        solve_line = next(line for line in table.splitlines()
                          if line.startswith("batch.solve_s"))
        assert "ms" in solve_line  # _s names format as durations

    def test_no_histograms_no_section(self):
        table = _collect_tree().profile_summary()
        assert "histogram" not in table

    def test_zero_count_digest_never_divides(self):
        report = self._report_with_histograms()
        report.metrics["histograms"]["empty_s"] = \
            {"count": 0, "sum": 0.0, "min": 0.0, "max": 0.0}
        table = report.profile_summary()
        assert "empty_s" in table


class TestProfileCounters:
    def _report_with_counters(self):
        report = _collect_tree()
        report.metrics = {
            "counters": {"hdl.compile.count": 2.0,
                         "hdl.compile.cache_hits": 14.0,
                         "linalg.factorizations": 5.0},
            "gauges": {}, "histograms": {},
        }
        return report

    def test_counter_section_appended(self):
        table = self._report_with_counters().profile_summary()
        assert "counter" in table
        assert "hdl.compile.count" in table
        assert "hdl.compile.cache_hits" in table
        # Values print as plain numbers; the footer stays last.
        hits = next(line for line in table.splitlines()
                    if line.startswith("hdl.compile.cache_hits"))
        assert hits.split()[-1] == "14"
        assert table.splitlines()[-1].startswith("wall time:")

    def test_no_counters_no_section(self):
        table = _collect_tree().profile_summary()
        assert "counter" not in table
