"""Failure forensics: reports, the ring buffer and replayable bundles.

The two acceptance scenarios live here: a structurally singular MNA matrix
(current source into a floating node with ``gmin=0``) and a genuinely
diverging Newton solve (current-driven diode with a starved iteration
budget) must each yield a :class:`FailureReport` that names the offending
unknown, and a dumped reproduction bundle must :func:`replay` to the same
failure deterministically.
"""

from __future__ import annotations

import json

import numpy as np
import pytest

from repro import telemetry
from repro.circuit import Circuit, SimulationOptions
from repro.circuit.analysis.op import OperatingPointAnalysis
from repro.errors import ConvergenceError
from repro.telemetry import forensics, registry


@pytest.fixture(autouse=True)
def clean_ring():
    forensics.clear()
    yield
    forensics.clear()


def build_floating_node(value: float = 1e-3) -> Circuit:
    """A current source into a node with no DC path: singular without gmin."""
    circuit = Circuit()
    circuit.current_source("I1", "n1", "0", value)
    circuit.capacitor("C1", "n1", "0", 1e-12)
    return circuit


def build_starved_diode(drive: float = 0.5) -> Circuit:
    """A current-driven diode: Newton from zero crawls up the exponential
    roughly one thermal voltage per iteration, so a starved iteration budget
    cannot reach the ~0.8 V operating point."""
    circuit = Circuit()
    circuit.current_source("I1", "0", "n1", drive)
    circuit.diode("D1", "n1", "0")
    return circuit


def _singular_options() -> SimulationOptions:
    return SimulationOptions(forensics=True, gmin=0.0, max_source_steps=1)


def _diverging_options() -> SimulationOptions:
    return SimulationOptions(forensics=True, max_newton_iterations=4,
                             max_source_steps=1)


class TestFailureReport:
    def test_offending_unknown_prefers_residual_ranking(self):
        report = forensics.FailureReport(
            kind="newton", analysis="op", message="boom",
            offending=[("v(b)", -3.0), ("v(a)", 1.0)],
            diagnosis={"suspects": ["v(z)"]})
        assert report.offending_unknown == "v(b)"

    def test_offending_unknown_falls_back_to_diagnosis(self):
        report = forensics.FailureReport(
            kind="singular", analysis="op", message="boom",
            diagnosis={"suspects": ["v(z)"], "message": ""})
        assert report.offending_unknown == "v(z)"
        assert forensics.FailureReport(
            kind="newton", analysis="op", message="x").offending_unknown is None

    def test_json_round_trip(self):
        report = forensics.FailureReport(
            kind="newton", analysis="tran", message="diverged",
            error_type="ConvergenceError", time=1e-6, iterations=7,
            residual_norm=4.5, residual_trajectory=[1.0, 2.0, 4.5],
            offending=[("v(n1)", 4.5)], condition_estimate=1e9,
            last_good={"time": 9e-7, "values": {"v(n1)": 0.1}},
            context={"size": 3})
        clone = forensics.FailureReport.from_json(
            json.loads(json.dumps(report.to_json())))
        assert clone == report

    def test_describe_mentions_the_key_facts(self):
        report = forensics.FailureReport(
            kind="newton", analysis="op", message="diverged", time=2.0,
            iterations=5, residual_trajectory=[1.0, 8.0],
            offending=[("v(n1)", 8.0)], condition_estimate=3e7)
        text = report.describe()
        assert "diverged" in text and "v(n1)" in text
        assert "t=2" in text and "3.000e+07" in text

    def test_summary_is_flat_and_picklable_shaped(self):
        report = forensics.FailureReport(
            kind="singular", analysis="dc", message="zero pivot",
            diagnosis={"suspects": ["v(a)"]})
        summary = report.summary()
        assert summary["offending_unknown"] == "v(a)"
        assert all(isinstance(key, str) for key in summary)


class TestRingBuffer:
    def _report(self, tag: str) -> forensics.FailureReport:
        return forensics.FailureReport(kind="newton", analysis="op", message=tag)

    def test_record_last_and_recent(self):
        before = registry.counter_value("forensics.reports")
        first = forensics.record(self._report("first"))
        second = forensics.record(self._report("second"))
        assert forensics.last_failure() is second
        assert forensics.recent_failures() == [first, second]
        assert registry.counter_value("forensics.reports") == before + 2

    def test_ring_is_bounded(self):
        for index in range(40):
            forensics.record(self._report(str(index)))
        retained = forensics.recent_failures()
        assert len(retained) == forensics._RING_SIZE
        assert retained[-1].message == "39"

    def test_clear_empties_the_ring(self):
        forensics.record(self._report("x"))
        forensics.clear()
        assert forensics.last_failure() is None

    def test_capture_attaches_and_types_the_report(self):
        exc = ConvergenceError("no")
        report = forensics.capture(exc, self._report("no"))
        assert exc.report is report
        assert report.error_type == "ConvergenceError"
        assert forensics.last_failure() is report


class TestForcedSingular:
    def test_report_names_the_floating_node(self):
        with pytest.raises(ConvergenceError) as info:
            OperatingPointAnalysis(build_floating_node(),
                                   _singular_options()).run()
        report = info.value.report
        assert isinstance(report, forensics.FailureReport)
        assert report.kind == "singular"
        assert report.error_type == "SingularMatrixError"
        assert report.offending_unknown == "v(n1)"
        assert "v(n1)" in report.diagnosis["suspects"]

    def test_report_lands_in_the_ring_buffer(self):
        with pytest.raises(ConvergenceError):
            OperatingPointAnalysis(build_floating_node(),
                                   _singular_options()).run()
        assert forensics.last_failure().kind == "singular"

    def test_forensics_off_means_no_report(self):
        options = SimulationOptions(gmin=0.0, max_source_steps=1)
        with pytest.raises(ConvergenceError) as info:
            OperatingPointAnalysis(build_floating_node(), options).run()
        assert info.value.report is None
        assert forensics.last_failure() is None


class TestForcedDivergence:
    def test_report_names_the_diode_node(self):
        with pytest.raises(ConvergenceError) as info:
            OperatingPointAnalysis(build_starved_diode(),
                                   _diverging_options()).run()
        report = info.value.report
        assert isinstance(report, forensics.FailureReport)
        assert report.kind == "newton"
        assert report.error_type == "ConvergenceError"
        assert report.offending_unknown == "v(n1)"

    def test_residual_trajectory_is_recorded(self):
        with pytest.raises(ConvergenceError) as info:
            OperatingPointAnalysis(build_starved_diode(),
                                   _diverging_options()).run()
        trajectory = info.value.report.residual_trajectory
        assert len(trajectory) >= 2
        assert all(np.isfinite(trajectory))

    def test_generous_budget_converges(self):
        # Sanity: the circuit itself is solvable, only the budget was starved.
        result = OperatingPointAnalysis(build_starved_diode()).run()
        assert result["v(n1)"] == pytest.approx(0.8, abs=0.2)


class TestFingerprint:
    def test_same_factory_same_point_hash_equal(self):
        assert forensics.circuit_fingerprint(build_starved_diode(0.5)) \
            == forensics.circuit_fingerprint(build_starved_diode(0.5))

    def test_different_parameter_hashes_differ(self):
        assert forensics.circuit_fingerprint(build_starved_diode(0.5)) \
            != forensics.circuit_fingerprint(build_starved_diode(0.6))

    def test_resolve_qualified_names(self):
        resolved = forensics._resolve_qualified("repro.circuit.netlist:Circuit")
        assert resolved is Circuit


class TestBundles:
    def _dump(self, tmp_path, drive: float = 0.5):
        circuit = build_starved_diode(drive)
        options = _diverging_options()
        with pytest.raises(ConvergenceError) as info:
            OperatingPointAnalysis(circuit, options).run()
        path = tmp_path / "failure.json"
        bundle = forensics.dump_bundle(
            path, analysis="op", options=options, build=build_starved_diode,
            params={"drive": drive}, circuit=circuit, report=info.value.report)
        return path, bundle

    def test_dump_and_load_round_trip(self, tmp_path):
        path, bundle = self._dump(tmp_path)
        loaded = forensics.load_bundle(path)
        assert loaded.analysis == "op"
        assert loaded.params == {"drive": 0.5}
        assert loaded.fingerprint == bundle.fingerprint
        assert loaded.failure["error_type"] == "ConvergenceError"
        assert loaded.options["max_newton_iterations"] == 4

    def test_load_rejects_foreign_json(self, tmp_path):
        path = tmp_path / "other.json"
        path.write_text(json.dumps({"schema": "something-else/1"}))
        with pytest.raises(ValueError, match="not a forensics bundle"):
            forensics.load_bundle(path)

    def test_replay_reproduces_the_failure(self, tmp_path):
        path, _ = self._dump(tmp_path)
        outcome = forensics.replay(path, build=build_starved_diode)
        assert outcome.reproduced
        assert outcome.fingerprint_match is True
        assert isinstance(outcome.error, ConvergenceError)
        assert outcome.report.offending_unknown == "v(n1)"

    def test_replay_is_deterministic(self, tmp_path):
        path, _ = self._dump(tmp_path)
        first = forensics.replay(path, build=build_starved_diode)
        second = forensics.replay(path, build=build_starved_diode)
        assert first.reproduced and second.reproduced
        assert first.report.residual_trajectory \
            == second.report.residual_trajectory
        assert first.report.offending_unknown \
            == second.report.offending_unknown

    def test_replay_flags_a_mismatched_circuit(self, tmp_path):
        path, _ = self._dump(tmp_path, drive=0.5)
        outcome = forensics.replay(path, circuit=build_starved_diode(0.7))
        assert outcome.fingerprint_match is False

    def test_replay_without_any_factory_raises(self):
        bundle = forensics.ReproductionBundle(analysis="op")
        with pytest.raises(ValueError, match="factory"):
            forensics.replay(bundle)


class TestCampaignForensics:
    def test_failed_rows_carry_the_summary(self):
        from repro.campaign import CampaignRunner, GridSweep

        def evaluate(point):
            circuit = build_starved_diode(point["drive"])
            options = _diverging_options() if point["drive"] > 0.1 \
                else SimulationOptions(forensics=True)
            result = OperatingPointAnalysis(circuit, options).run()
            return {"v": result["v(n1)"]}

        result = CampaignRunner(backend="serial").run(
            GridSweep(drive=[0.01, 0.5]), evaluate)
        assert result.rows[0].ok and result.rows[0].forensics is None
        failed = result.rows[1]
        assert not failed.ok
        assert failed.forensics["offending_unknown"] == "v(n1)"
        summaries = result.forensic_summaries()
        assert len(summaries) == 1
        assert summaries[0]["index"] == 1
        assert summaries[0]["kind"] == "newton"
