"""Optimizer iterate traces and spans behind an active telemetry session."""

from __future__ import annotations

from repro import telemetry
from repro.optim import GradientDescent, NelderMead, Objective
from repro.optim.transforms import ParameterSpace


def quadratic(params: dict) -> float:
    return (params["a"] - 1.0) ** 2 + (params["b"] + 0.5) ** 2


def _objective() -> Objective:
    return Objective(quadratic, ParameterSpace(a=(0.0, 4.0), b=(-2.0, 2.0)))


class TestIterateTrace:
    def test_trace_empty_without_session(self):
        result = NelderMead().minimize(_objective())
        assert result.trace == ()

    def test_nelder_mead_trace_records_best_per_iteration(self):
        with telemetry.session(mode="summary"):
            result = NelderMead(max_iterations=40).minimize(_objective())
        assert len(result.trace) == result.iterations
        assert result.trace[0].iteration == 1
        assert set(result.trace[0].params) == {"a", "b"}
        objectives = [record.objective for record in result.trace]
        assert objectives == sorted(objectives, reverse=True)  # monotone best
        assert result.trace[-1].objective == min(objectives)

    def test_gradient_descent_trace_and_spans(self):
        with telemetry.session(mode="summary") as sess:
            result = GradientDescent(max_iterations=30).minimize(_objective())
        assert len(result.trace) == result.iterations
        totals = sess.report.span_totals
        assert totals["optim.minimize"]["count"] == 1
        assert totals["optim.gradient"]["count"] >= 1
        assert totals["optim.evaluate"]["count"] >= 1

    def test_trace_feeds_convergence_diagnostics(self):
        with telemetry.session(mode="summary"):
            result = NelderMead(max_iterations=20).minimize(_objective())
        diag = telemetry.ConvergenceDiagnostics()
        for record in result.trace:
            diag.add_iterate(record)
        assert diag.summary()["optimizer_iterates"] == len(result.trace)
