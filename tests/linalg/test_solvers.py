"""Tests for the backend-abstracted factorized solvers."""

from __future__ import annotations

import numpy as np
import pytest
import scipy.sparse as sp

from repro.errors import LinAlgError
from repro.linalg import FactorizedSolver


def _spd(n: int, seed: int = 7) -> np.ndarray:
    rng = np.random.default_rng(seed)
    a = rng.standard_normal((n, n))
    return a @ a.T + n * np.eye(n)


class TestDense:
    def test_matches_numpy_solve_bitwise(self):
        rng = np.random.default_rng(3)
        matrix = rng.standard_normal((12, 12))
        rhs = rng.standard_normal(12)
        ours = FactorizedSolver("dense").solve(matrix, rhs)
        reference = np.linalg.solve(matrix, rhs)
        assert np.array_equal(ours, reference)

    def test_complex_matrix(self):
        rng = np.random.default_rng(4)
        matrix = rng.standard_normal((6, 6)) + 1j * rng.standard_normal((6, 6))
        rhs = rng.standard_normal(6) + 1j * rng.standard_normal(6)
        solution = FactorizedSolver("dense").solve(matrix, rhs)
        np.testing.assert_allclose(matrix @ solution, rhs, atol=1e-12)

    def test_multi_rhs(self):
        matrix = _spd(5)
        rhs = np.eye(5)[:, :3]
        solution = FactorizedSolver("dense").solve(matrix, rhs)
        np.testing.assert_allclose(matrix @ solution, rhs, atol=1e-10)

    def test_singular_raises(self):
        with pytest.raises(LinAlgError):
            FactorizedSolver("dense").solve(np.zeros((3, 3)), np.ones(3))

    def test_factorization_reused_for_many_rhs(self):
        solver = FactorizedSolver("dense")
        factorization = solver.factorize(_spd(4))
        for k in range(3):
            rhs = np.eye(4)[:, k]
            np.testing.assert_allclose(
                factorization.solve(rhs), np.linalg.solve(_spd(4), rhs),
                atol=1e-12)
        assert solver.factorizations == 1

    def test_rhs_shape_checked(self):
        factorization = FactorizedSolver("dense").factorize(_spd(4))
        with pytest.raises(LinAlgError):
            factorization.solve(np.ones(5))


class TestSparse:
    def test_superlu_matches_dense(self):
        matrix = _spd(20)
        rhs = np.arange(20, dtype=float)
        sparse = FactorizedSolver("superlu").solve(sp.csr_matrix(matrix), rhs)
        dense = FactorizedSolver("dense").solve(matrix, rhs)
        np.testing.assert_allclose(sparse, dense, rtol=1e-10)

    def test_auto_resolves_by_matrix_type(self):
        solver = FactorizedSolver("auto")
        assert solver.resolve_backend(np.eye(3)) == "dense"
        assert solver.resolve_backend(sp.eye(3, format="csr")) == "superlu"

    def test_exactly_singular_sparse_raises(self):
        singular = sp.csr_matrix(
            np.array([[1.0, 1.0, 0.0], [1.0, 1.0, 0.0], [0.0, 0.0, 1.0]]))
        with pytest.raises(LinAlgError):
            FactorizedSolver("superlu").solve(singular, np.ones(3))

    def test_complex_sparse_matrix(self):
        matrix = sp.csr_matrix(np.array([[2.0 + 1.0j, 0.0], [0.0, 1.0]]))
        solution = FactorizedSolver("auto").solve(matrix, np.ones(2))
        np.testing.assert_allclose(matrix @ solution, np.ones(2), atol=1e-12)
        assert np.iscomplexobj(solution)

    def test_real_sparse_matrix_complex_rhs(self):
        matrix = sp.csr_matrix(_spd(6))
        rhs = np.arange(6) + 1j * np.arange(6)[::-1]
        solution = FactorizedSolver("superlu").solve(matrix, rhs)
        np.testing.assert_allclose(matrix @ solution, rhs, atol=1e-9)


class TestCG:
    def test_cg_agrees_with_direct_on_spd(self):
        matrix = sp.csr_matrix(_spd(30))
        rhs = np.linspace(-1.0, 1.0, 30)
        cg = FactorizedSolver("cg", rtol=1e-12).solve(matrix, rhs)
        direct = FactorizedSolver("superlu").solve(matrix, rhs)
        np.testing.assert_allclose(cg, direct, atol=1e-8)

    def test_complex_matrix_rejected(self):
        matrix = sp.csr_matrix(np.eye(2) * (1.0 + 1.0j))
        with pytest.raises(LinAlgError):
            FactorizedSolver("cg").factorize(matrix)

    def test_complex_rhs_on_real_matrix(self):
        matrix = sp.csr_matrix(_spd(8))
        rhs = np.ones(8) + 2j * np.ones(8)
        solution = FactorizedSolver("cg", rtol=1e-12).factorize(matrix).solve(rhs)
        np.testing.assert_allclose(matrix @ solution, rhs, atol=1e-7)

    def test_zero_diagonal_rejected_without_fallback(self):
        matrix = sp.csr_matrix(np.array([[0.0, 1.0], [1.0, 0.0]]))
        with pytest.raises(LinAlgError):
            FactorizedSolver("cg", cg_fallback=False).factorize(matrix)

    def test_zero_diagonal_falls_back_to_direct(self):
        matrix = sp.csr_matrix(np.array([[0.0, 1.0], [1.0, 0.0]]))
        factorization = FactorizedSolver("cg").factorize(matrix)
        solution = factorization.solve(np.array([2.0, 3.0]))
        np.testing.assert_allclose(solution, [3.0, 2.0])
        assert factorization.fallback_solves == 1

    def test_nonconvergence_falls_back_to_direct(self):
        # An indefinite, wildly scaled system CG cannot solve.
        rng = np.random.default_rng(11)
        base = rng.standard_normal((40, 40))
        matrix = base - base.T + np.diag(np.logspace(-8, 8, 40))
        rhs = rng.standard_normal(40)
        factorization = FactorizedSolver("cg", rtol=1e-14,
                                         cg_fallback=True).factorize(
            sp.csr_matrix(matrix))
        solution = factorization.solve(rhs)
        assert factorization.fallback_solves >= 1
        np.testing.assert_allclose(matrix @ solution, rhs, atol=1e-6)

    def test_nonconvergence_raises_without_fallback(self):
        rng = np.random.default_rng(11)
        base = rng.standard_normal((40, 40))
        matrix = base - base.T + np.diag(np.logspace(-8, 8, 40))
        factorization = FactorizedSolver("cg", rtol=1e-14,
                                         cg_fallback=False).factorize(
            sp.csr_matrix(matrix))
        with pytest.raises(LinAlgError):
            factorization.solve(rng.standard_normal(40))


class TestValidation:
    def test_unknown_backend_rejected(self):
        with pytest.raises(LinAlgError):
            FactorizedSolver("lu")

    def test_nonsquare_rejected(self):
        with pytest.raises(LinAlgError):
            FactorizedSolver().factorize(np.ones((2, 3)))
