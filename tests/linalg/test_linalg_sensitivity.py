"""Transpose solves per backend and the shared sensitivity solver core."""

from __future__ import annotations

import numpy as np
import pytest
import scipy.sparse as sp

from repro.errors import LinAlgError
from repro.linalg import (FactorizedSolver, SensitivityResult,
                          SpectralSensitivities, metrics,
                          solve_sensitivities, sweep_spectral_sensitivities)


def _well_conditioned(n: int, seed: int = 0) -> np.ndarray:
    rng = np.random.default_rng(seed)
    return rng.standard_normal((n, n)) + n * np.eye(n)


class TestTransposeSolves:
    @pytest.mark.parametrize("backend", ["dense", "superlu"])
    def test_real_matrix_real_rhs(self, backend):
        matrix = _well_conditioned(8)
        operand = sp.csr_matrix(matrix) if backend == "superlu" else matrix
        handle = FactorizedSolver(backend).factorize(operand)
        rhs = np.arange(1.0, 9.0)
        solution = handle.solve_transposed(rhs)
        np.testing.assert_allclose(matrix.T @ solution, rhs, atol=1e-10)
        assert handle.transpose_solves == 1

    @pytest.mark.parametrize("backend", ["dense", "superlu"])
    def test_real_matrix_complex_rhs(self, backend):
        matrix = _well_conditioned(6, seed=1)
        operand = sp.csr_matrix(matrix) if backend == "superlu" else matrix
        handle = FactorizedSolver(backend).factorize(operand)
        rhs = np.arange(6.0) + 1j * np.arange(6.0, 0.0, -1.0)
        solution = handle.solve_transposed(rhs)
        np.testing.assert_allclose(matrix.T @ solution, rhs, atol=1e-10)

    @pytest.mark.parametrize("backend", ["dense", "superlu"])
    def test_complex_matrix_plain_transpose(self, backend):
        # The adjoint needs A^T, NOT the conjugate transpose.
        rng = np.random.default_rng(2)
        matrix = _well_conditioned(6, seed=2) \
            + 1j * rng.standard_normal((6, 6))
        operand = sp.csr_matrix(matrix) if backend == "superlu" else matrix
        handle = FactorizedSolver(backend).factorize(operand)
        rhs = rng.standard_normal(6)
        solution = handle.solve_transposed(rhs)
        np.testing.assert_allclose(matrix.T @ solution, rhs, atol=1e-10)
        assert not np.allclose(np.conj(matrix).T @ solution, rhs)

    def test_cg_symmetric_transpose_is_forward(self):
        rng = np.random.default_rng(3)
        half = rng.standard_normal((7, 7))
        spd = half @ half.T + 7 * np.eye(7)
        handle = FactorizedSolver("cg").factorize(sp.csr_matrix(spd))
        rhs = rng.standard_normal(7)
        solution = handle.solve_transposed(rhs)
        np.testing.assert_allclose(spd.T @ solution, rhs, atol=1e-6)
        assert handle.transpose_solves == 1

    def test_cg_nonsymmetric_transpose_uses_direct_fallback(self):
        # Silently answering A^{-1} b instead of A^{-T} b would corrupt
        # adjoint gradients; the fallback must solve the true transpose.
        matrix = np.array([[2.0, 1.0], [0.0, 3.0]])
        handle = FactorizedSolver("cg").factorize(sp.csr_matrix(matrix))
        solution = handle.solve_transposed(np.array([1.0, 1.0]))
        np.testing.assert_allclose(matrix.T @ solution, [1.0, 1.0],
                                   atol=1e-12)

    def test_cg_nonsymmetric_transpose_without_fallback_raises(self):
        matrix = np.array([[2.0, 1.0], [0.0, 3.0]])
        handle = FactorizedSolver("cg", cg_fallback=False).factorize(
            sp.csr_matrix(matrix))
        with pytest.raises(LinAlgError, match="symmetric"):
            handle.solve_transposed(np.array([1.0, 1.0]))

    def test_block_rhs(self):
        matrix = _well_conditioned(5, seed=4)
        handle = FactorizedSolver("dense").factorize(matrix)
        rhs = np.eye(5)[:, :3]
        solution = handle.solve_transposed(rhs)
        np.testing.assert_allclose(matrix.T @ solution, rhs, atol=1e-10)

    def test_transpose_solves_counted_globally(self):
        before = metrics.snapshot()
        handle = FactorizedSolver("dense").factorize(_well_conditioned(4))
        handle.solve_transposed(np.ones(4))
        delta = metrics.counter_delta(before)
        assert delta["transpose_solves"] == 1
        assert delta["factorizations"] == 1


class TestSolveSensitivities:
    def setup_method(self):
        rng = np.random.default_rng(5)
        self.jacobian = _well_conditioned(6, seed=5)
        self.dres_dp = rng.standard_normal((6, 4))
        self.selectors = np.eye(6)[[1, 3]]
        self.reference = -self.selectors @ np.linalg.solve(self.jacobian,
                                                           self.dres_dp)
        self.factorization = FactorizedSolver("dense").factorize(self.jacobian)

    def test_adjoint_matches_reference(self):
        stats: dict = {}
        result = solve_sensitivities(self.factorization, self.selectors,
                                     self.dres_dp, "adjoint", stats)
        np.testing.assert_allclose(result, self.reference, atol=1e-12)
        assert stats["adjoint_solves"] == 2

    def test_direct_matches_adjoint(self):
        stats: dict = {}
        result = solve_sensitivities(self.factorization, self.selectors,
                                     self.dres_dp, "direct", stats)
        np.testing.assert_allclose(result, self.reference, atol=1e-12)
        assert stats["direct_solves"] == 4

    def test_auto_prefers_fewer_substitutions(self):
        stats: dict = {}
        solve_sensitivities(self.factorization, self.selectors,
                            self.dres_dp, "auto", stats)
        # 2 outputs < 4 params -> adjoint.
        assert stats.get("adjoint_solves") == 2
        stats = {}
        solve_sensitivities(self.factorization, np.eye(6)[:5],
                            self.dres_dp, "auto", stats)
        # 5 outputs > 4 params -> direct.
        assert stats.get("direct_solves") == 4

    def test_complex_dres(self):
        dres = self.dres_dp + 1j * self.dres_dp[::-1]
        result = solve_sensitivities(self.factorization, self.selectors,
                                     dres, "adjoint")
        reference = -self.selectors @ np.linalg.solve(self.jacobian, dres)
        np.testing.assert_allclose(result, reference, atol=1e-12)

    def test_bad_method_rejected(self):
        with pytest.raises(LinAlgError, match="unknown sensitivity method"):
            solve_sensitivities(self.factorization, self.selectors,
                                self.dres_dp, "newton")

    def test_shape_mismatch_rejected(self):
        with pytest.raises(LinAlgError, match="do not match"):
            solve_sensitivities(self.factorization, np.eye(5),
                                self.dres_dp)


class TestSensitivityResult:
    def test_accessors(self):
        result = SensitivityResult(
            outputs=("y1", "y2"), params=("a", "b", "c"),
            values=np.array([1.0, 2.0]),
            matrix=np.arange(6.0).reshape(2, 3), method="adjoint",
            stats={"newton_solves": 1})
        assert result.value("y2") == 2.0
        assert result.gradient("y1") == {"a": 0.0, "b": 1.0, "c": 2.0}
        assert result.derivative("y2", "c") == 5.0
        assert result.as_dict()["y2"]["a"] == 3.0
        assert result.values_dict() == {"y1": 1.0, "y2": 2.0}
        with pytest.raises(KeyError, match="unknown output"):
            result.value("nope")
        with pytest.raises(KeyError, match="unknown parameter"):
            result.derivative("y1", "nope")

    def test_shape_validation(self):
        with pytest.raises(LinAlgError, match="sensitivity matrix"):
            SensitivityResult(("y",), ("a", "b"), np.zeros(1), np.zeros((2, 2)))


class TestSpectralSensitivities:
    def test_magnitude_derivative(self):
        frequencies = np.array([1.0, 2.0])
        values = np.array([[1.0 + 1.0j], [2.0]])
        matrix = np.array([[[0.5 - 0.5j]], [[1.0 + 0.0j]]])
        spectral = SpectralSensitivities(frequencies, ("y",), ("p",),
                                         values, matrix, "adjoint", {})
        # d|y|/dp = Re(conj(y) dy) / |y|.
        expected0 = np.real(np.conj(1 + 1j) * (0.5 - 0.5j)) / abs(1 + 1j)
        np.testing.assert_allclose(
            spectral.magnitude_derivative("y", "p"), [expected0, 1.0])
        single = spectral.at(1)
        assert single.value("y") == 2.0

    def test_shape_validation(self):
        with pytest.raises(LinAlgError, match="spectral sensitivity"):
            SpectralSensitivities(np.array([1.0]), ("y",), ("p",),
                                  np.zeros((1, 1)), np.zeros((2, 1, 1)),
                                  "adjoint", {})


class TestSweepSpectralSensitivities:
    """The shared per-frequency sweep skeleton (circuit AC / FEM / ROM)."""

    def setup_method(self):
        rng = np.random.default_rng(9)
        self.n = 5
        self.G = _well_conditioned(self.n, seed=9)
        self.C = rng.standard_normal((self.n, self.n)) * 1e-3
        self.rhs = rng.standard_normal(self.n)
        self.dG = rng.standard_normal((2, self.n, self.n))
        self.selectors = np.eye(self.n)[[0, 2]]
        self.frequencies = np.array([10.0, 100.0, 1000.0])

    def _system_at(self, f, omega):
        return self.G + 1j * omega * self.C, self.rhs.astype(complex)

    def _dres_at(self, f, omega, solution):
        dres = np.zeros((self.n, 2), dtype=complex)
        for k in range(2):
            dres[:, k] = self.dG[k] @ solution
        return dres

    def test_matches_manual_per_frequency_solves(self):
        stats: dict = {}
        values, matrix, resolved = sweep_spectral_sensitivities(
            self.frequencies, self.selectors, self._system_at, self._dres_at,
            method="adjoint", stats=stats)
        assert resolved == "adjoint"
        assert stats["adjoint_solves"] == 2 * self.frequencies.size
        for f, frequency in enumerate(self.frequencies):
            omega = 2.0 * np.pi * frequency
            system = self.G + 1j * omega * self.C
            solution = np.linalg.solve(system, self.rhs)
            np.testing.assert_allclose(values[f], self.selectors @ solution,
                                       atol=1e-10)
            dres = np.stack([self.dG[k] @ solution for k in range(2)], axis=1)
            reference = -self.selectors @ np.linalg.solve(system, dres)
            np.testing.assert_allclose(matrix[f], reference, atol=1e-10)

    def test_solve_counter_bumped_per_frequency(self):
        stats: dict = {}
        sweep_spectral_sensitivities(
            self.frequencies, self.selectors, self._system_at, self._dres_at,
            stats=stats, solve_counter="field_solves")
        assert stats["field_solves"] == self.frequencies.size

    def test_solve_error_rebrands_failures(self):
        def singular_at(f, omega):
            return np.zeros((self.n, self.n), dtype=complex), \
                self.rhs.astype(complex)

        with pytest.raises(RuntimeError, match="f=10"):
            sweep_spectral_sensitivities(
                self.frequencies, self.selectors, singular_at, self._dres_at,
                solve_error=lambda frequency, exc: RuntimeError(
                    f"bad solve at f={frequency:g} Hz"))
        # Without a factory the original LinAlgError propagates.
        with pytest.raises(LinAlgError):
            sweep_spectral_sensitivities(
                self.frequencies, self.selectors, singular_at, self._dres_at)

    def test_empty_frequencies_rejected(self):
        with pytest.raises(LinAlgError, match="at least one"):
            sweep_spectral_sensitivities(
                np.array([]), self.selectors, self._system_at, self._dres_at)
