"""Tests for the sparsity-pattern and factorization caches."""

from __future__ import annotations

import numpy as np
import pytest
import scipy.sparse as sp

from repro.errors import LinAlgError
from repro.linalg import (FactorizationCache, FactorizedSolver, StructureCache,
                          matrix_fingerprint)


class TestStructureCache:
    def test_matches_scipy_coo_sum(self):
        rows = [0, 1, 1, 2, 0]
        cols = [0, 1, 1, 2, 2]
        vals = [1.0, 2.0, 3.0, 4.0, 5.0]
        cache = StructureCache()
        ours = cache.assemble(rows, cols, vals, 3)
        reference = sp.coo_matrix((vals, (rows, cols)), shape=(3, 3)).tocsr()
        np.testing.assert_allclose(ours.toarray(), reference.toarray())

    def test_pattern_reuse_and_value_update(self):
        rows, cols = [0, 1, 1, 0], [0, 1, 0, 0]
        cache = StructureCache()
        first = cache.assemble(rows, cols, [1.0, 1.0, 1.0, 1.0], 2)
        second = cache.assemble(rows, cols, [2.0, 5.0, -1.0, 3.0], 2)
        assert cache.rebuilds == 1 and cache.reuses == 1
        np.testing.assert_allclose(first.toarray(), [[2.0, 0.0], [1.0, 1.0]])
        np.testing.assert_allclose(second.toarray(), [[5.0, 0.0], [-1.0, 5.0]])

    def test_changed_pattern_invalidates(self):
        cache = StructureCache()
        cache.assemble([0, 1], [0, 1], [1.0, 1.0], 2)
        generation = cache.generation
        # Same length, different coordinates: must rebuild, not corrupt.
        result = cache.assemble([0, 1], [1, 1], [3.0, 4.0], 2)
        assert cache.generation == generation + 1
        np.testing.assert_allclose(result.toarray(), [[0.0, 3.0], [0.0, 4.0]])

    def test_changed_length_invalidates(self):
        cache = StructureCache()
        cache.assemble([0, 1], [0, 1], [1.0, 1.0], 2)
        result = cache.assemble([0, 1, 0], [0, 1, 1], [1.0, 1.0, 7.0], 2)
        assert cache.rebuilds == 2
        np.testing.assert_allclose(result.toarray(), [[1.0, 7.0], [0.0, 1.0]])

    def test_out_of_range_rejected(self):
        with pytest.raises(LinAlgError):
            StructureCache().assemble([0, 5], [0, 0], [1.0, 1.0], 2)

    def test_device_count_change_invalidates_mna_pattern(self):
        """Adding a device to a circuit changes the stamp stream: the shared
        pattern cache of a fresh MNASystem must rebuild, not reuse."""
        from repro.circuit import Circuit, OperatingPointAnalysis, SimulationOptions

        def ladder(n):
            circuit = Circuit(f"ladder-{n}")
            circuit.voltage_source("V1", "n0", "0", 1.0)
            for i in range(n):
                circuit.resistor(f"R{i}", f"n{i}", f"n{i + 1}", 100.0)
                circuit.resistor(f"Rg{i}", f"n{i + 1}", "0", 1e4)
            return circuit

        options = SimulationOptions(linear_solver="sparse")
        analysis = OperatingPointAnalysis(ladder(6), options)
        analysis.run()
        cache = analysis.system.structure_cache
        assert cache.rebuilds == 1 and cache.reuses >= 1
        # A different topology through the same cache must rebuild.
        bigger = OperatingPointAnalysis(ladder(7), options)
        bigger.run()
        assert bigger.system.structure_cache.rebuilds == 1


class TestFactorizationCache:
    def test_identical_matrix_hits(self):
        cache = FactorizationCache(FactorizedSolver("dense"), maxsize=2)
        matrix = np.array([[2.0, 0.0], [0.0, 4.0]])
        first = cache.factorize(matrix)
        second = cache.factorize(matrix.copy())
        assert first is second
        assert cache.hits == 1 and cache.misses == 1

    def test_value_change_misses(self):
        cache = FactorizationCache(FactorizedSolver("dense"), maxsize=2)
        cache.factorize(np.eye(2))
        cache.factorize(2.0 * np.eye(2))
        assert cache.misses == 2

    def test_lru_eviction(self):
        cache = FactorizationCache(FactorizedSolver("dense"), maxsize=2)
        for scale in (1.0, 2.0, 3.0):
            cache.factorize(scale * np.eye(2))
        assert cache.evictions == 1
        cache.factorize(np.eye(2))  # evicted: must miss again
        assert cache.misses == 4

    def test_fingerprint_distinguishes_structure(self):
        dense = np.eye(3)
        sparse = sp.csr_matrix(dense)
        assert matrix_fingerprint(dense) != matrix_fingerprint(sparse)
        shifted = sp.csr_matrix(np.diag([1.0, 1.0, 0.0]) + np.diag([0.0] * 3))
        assert matrix_fingerprint(sparse) != matrix_fingerprint(shifted)

    def test_fingerprint_equal_for_equal_content(self):
        rng = np.random.default_rng(0)
        matrix = rng.standard_normal((4, 4))
        assert matrix_fingerprint(matrix) == matrix_fingerprint(matrix.copy())
