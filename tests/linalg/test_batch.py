"""Tests for the batched factorization layer and batched CSR assembly."""

from __future__ import annotations

import numpy as np
import pytest
import scipy.sparse as sp

from repro.errors import LinAlgError
from repro.linalg import (BATCH_BACKENDS, BatchedDenseLU, BatchedSparseLU,
                          FactorizedSolver, StructureCache, batched_factorize)


def _stack(batch: int = 5, n: int = 8, seed: int = 11):
    rng = np.random.default_rng(seed)
    matrices = rng.standard_normal((batch, n, n)) + n * np.eye(n)
    rhs = rng.standard_normal((batch, n))
    return matrices, rhs


class TestBatchedDenseLU:
    def test_matches_serial_dense_solver(self):
        matrices, rhs = _stack()
        handle = BatchedDenseLU(matrices)
        assert not handle.failed.any()
        solutions = handle.solve(rhs)
        solver = FactorizedSolver("dense")
        for b in range(matrices.shape[0]):
            reference = solver.solve(matrices[b], rhs[b])
            np.testing.assert_allclose(solutions[b], reference,
                                       rtol=1e-12, atol=1e-12)

    def test_singular_lane_masks_nan_others_survive(self):
        matrices, rhs = _stack()
        matrices[2] = 0.0
        handle = BatchedDenseLU(matrices)
        assert list(handle.failed) == [False, False, True, False, False]
        solutions = handle.solve(rhs)
        assert np.isnan(solutions[2]).all()
        for b in (0, 1, 3, 4):
            np.testing.assert_allclose(matrices[b] @ solutions[b], rhs[b],
                                       atol=1e-9)

    def test_nonfinite_lane_flagged(self):
        matrices, _ = _stack()
        matrices[0, 3, 3] = np.nan
        handle = BatchedDenseLU(matrices)
        assert handle.failed[0]
        assert not handle.failed[1:].any()

    def test_solve_transposed(self):
        matrices, rhs = _stack()
        handle = BatchedDenseLU(matrices)
        solutions = handle.solve_transposed(rhs)
        for b in range(matrices.shape[0]):
            np.testing.assert_allclose(matrices[b].T @ solutions[b], rhs[b],
                                       atol=1e-9)

    def test_shape_validation(self):
        with pytest.raises(LinAlgError):
            BatchedDenseLU(np.zeros((4, 3)))
        handle = BatchedDenseLU(_stack()[0])
        with pytest.raises(LinAlgError):
            handle.solve(np.zeros((2, 8)))


class TestBatchedSparseLU:
    def test_matches_dense_solutions(self):
        matrices, rhs = _stack()
        lanes = [sp.csr_matrix(m) for m in matrices]
        handle = BatchedSparseLU(lanes)
        assert not handle.failed.any()
        dense = BatchedDenseLU(matrices).solve(rhs)
        np.testing.assert_allclose(handle.solve(rhs), dense,
                                   rtol=1e-10, atol=1e-10)

    def test_solve_transposed(self):
        matrices, rhs = _stack()
        handle = BatchedSparseLU([sp.csr_matrix(m) for m in matrices])
        solutions = handle.solve_transposed(rhs)
        for b in range(matrices.shape[0]):
            np.testing.assert_allclose(matrices[b].T @ solutions[b], rhs[b],
                                       atol=1e-9)

    def test_singular_lane_masks_nan(self):
        matrices, rhs = _stack()
        matrices[1] = 0.0
        # Keep the pattern identical across lanes: explicit zeros.
        lanes = [sp.csr_matrix(m) for m in matrices]
        handle = BatchedSparseLU(lanes)
        assert handle.failed[1]
        solutions = handle.solve(rhs)
        assert np.isnan(solutions[1]).all()
        np.testing.assert_allclose(matrices[0] @ solutions[0], rhs[0],
                                   atol=1e-9)

    def test_empty_batch_rejected(self):
        with pytest.raises(LinAlgError):
            BatchedSparseLU([])


class TestBatchedFactorize:
    def test_auto_follows_representation(self):
        matrices, _ = _stack()
        assert batched_factorize(matrices).backend == "dense"
        lanes = [sp.csr_matrix(m) for m in matrices]
        assert batched_factorize(lanes).backend == "superlu"

    def test_explicit_backend_converts_input(self):
        matrices, rhs = _stack()
        lanes = [sp.csr_matrix(m) for m in matrices]
        as_dense = batched_factorize(lanes, "dense")
        as_sparse = batched_factorize(matrices, "superlu")
        np.testing.assert_allclose(as_dense.solve(rhs), as_sparse.solve(rhs),
                                   rtol=1e-10, atol=1e-10)

    def test_unknown_backend_rejected(self):
        with pytest.raises(LinAlgError):
            batched_factorize(_stack()[0], "qr")
        assert "auto" in BATCH_BACKENDS


class TestStructureCacheBatch:
    def test_lanes_match_serial_assembly_exactly(self):
        rng = np.random.default_rng(3)
        rows = np.array([0, 0, 1, 2, 2, 1, 0])
        cols = np.array([0, 1, 1, 2, 0, 2, 0])
        values = rng.standard_normal((rows.size, 4))
        cache = StructureCache()
        lanes = cache.assemble_batch(rows, cols, values, 3)
        assert len(lanes) == 4
        for b, lane in enumerate(lanes):
            reference = cache.assemble(rows, cols, values[:, b], 3)
            assert np.array_equal(lane.toarray(), reference.toarray())

    def test_pattern_reduction_shared(self):
        rows = np.array([0, 1, 1])
        cols = np.array([0, 0, 1])
        cache = StructureCache()
        cache.assemble_batch(rows, cols, np.ones((3, 2)), 2)
        cache.assemble_batch(rows, cols, np.full((3, 2), 2.0), 2)
        assert cache.reuses >= 1

    def test_shape_validation(self):
        cache = StructureCache()
        with pytest.raises(LinAlgError):
            cache.assemble_batch([0], [0], np.ones(1), 1)  # not (T, B)
        with pytest.raises(LinAlgError):
            cache.assemble_batch([0, 1], [0, 0], np.ones((3, 2)), 2)
