"""Tests for device construction rules, switches, mechanical elements, results."""

from __future__ import annotations

import numpy as np
import pytest

from repro.circuit import (
    ACAnalysis,
    Circuit,
    OperatingPointAnalysis,
    Sine,
    TransientAnalysis,
)
from repro.circuit.analysis.results import TransientResult
from repro.circuit.devices import Capacitor, Inductor, Mass, Resistor, Spring, Damper, Diode
from repro.errors import AnalysisError, DeviceError


class TestDeviceValidation:
    def test_two_terminal_rejects_same_node(self):
        circuit = Circuit()
        node = circuit.electrical_node("a")
        with pytest.raises(DeviceError):
            Resistor("R1", node, node, 1.0)

    @pytest.mark.parametrize("cls,value", [(Resistor, 0.0), (Capacitor, -1.0), (Inductor, 0.0)])
    def test_non_positive_values_rejected(self, cls, value):
        circuit = Circuit()
        a, gnd = circuit.electrical_node("a"), circuit.ground
        with pytest.raises(DeviceError):
            cls("X1", a, gnd, value)

    def test_empty_device_name_rejected(self):
        circuit = Circuit()
        with pytest.raises(DeviceError):
            Resistor("", circuit.electrical_node("a"), circuit.ground, 1.0)

    def test_mass_requires_ground_reference(self):
        circuit = Circuit()
        m1, m2 = circuit.mechanical_node("m1"), circuit.mechanical_node("m2")
        with pytest.raises(DeviceError):
            Mass("M1", m1, m2, 1e-4)

    def test_mechanical_element_parameter_checks(self):
        circuit = Circuit()
        m, gnd = circuit.mechanical_node("m"), circuit.ground
        with pytest.raises(DeviceError):
            Mass("M1", m, gnd, -1.0)
        with pytest.raises(DeviceError):
            Spring("K1", m, gnd, 0.0)
        with pytest.raises(DeviceError):
            Damper("D1", m, gnd, 0.0)

    def test_diode_parameter_checks(self):
        circuit = Circuit()
        a, gnd = circuit.electrical_node("a"), circuit.ground
        with pytest.raises(DeviceError):
            Diode("D1", a, gnd, saturation_current=0.0)
        with pytest.raises(DeviceError):
            Diode("D1", a, gnd, emission_coefficient=-1.0)

    def test_describe_strings(self):
        circuit = Circuit()
        r = circuit.resistor("R1", "a", "0", 42.0)
        k = circuit.spring("K1", "m", "0", 200.0)
        assert "42" in r.describe()
        assert "200" in k.describe()


class TestSwitch:
    def test_switch_parameter_validation(self):
        circuit = Circuit()
        with pytest.raises(DeviceError):
            circuit.switch("S1", "a", "0", "c", "0", r_on=10.0, r_off=1.0)

    def test_switch_transfers_when_control_high(self):
        circuit = Circuit()
        circuit.voltage_source("VC", "ctl", "0", 5.0)
        circuit.voltage_source("V1", "in", "0", 1.0)
        circuit.switch("S1", "in", "out", "ctl", "0", threshold=2.5, r_on=1.0, r_off=1e9)
        circuit.resistor("RL", "out", "0", 1e3)
        op = OperatingPointAnalysis(circuit).run()
        assert op.voltage("out") == pytest.approx(1.0, rel=1e-3)

    def test_switch_blocks_when_control_low(self):
        circuit = Circuit()
        circuit.voltage_source("VC", "ctl", "0", 0.0)
        circuit.voltage_source("V1", "in", "0", 1.0)
        circuit.switch("S1", "in", "out", "ctl", "0", threshold=2.5, r_on=1.0, r_off=1e9)
        circuit.resistor("RL", "out", "0", 1e3)
        op = OperatingPointAnalysis(circuit).run()
        assert abs(op.voltage("out")) < 1e-3
        assert op["state(S1)"] == 0.0

    def test_switch_ac_uses_bias_state(self):
        circuit = Circuit()
        circuit.voltage_source("VC", "ctl", "0", 5.0)
        circuit.voltage_source("V1", "in", "0", 0.0, ac=1.0)
        circuit.switch("S1", "in", "out", "ctl", "0", threshold=2.5, r_on=1.0, r_off=1e9)
        circuit.resistor("RL", "out", "0", 1e3)
        result = ACAnalysis(circuit, [1e3]).run()
        assert abs(result.at("v(out)", 1e3)) == pytest.approx(1.0, rel=1e-3)


class TestMechanicalElectricalDuality:
    """The same physical resonator gives identical responses when built from
    mechanical elements (FI analogy) or from their electrical equivalents."""

    def test_velocity_response_equals_rlc_voltage_response(self):
        mass, stiffness, damping = 1e-4, 200.0, 0.04
        drive = Sine(amplitude=1e-6, frequency=200.0)

        mechanical = Circuit()
        mechanical.force_source("F1", "m", "0", drive)
        mechanical.mass("M1", "m", mass)
        mechanical.spring("K1", "m", "0", stiffness)
        mechanical.damper("D1", "m", "0", damping)

        electrical = Circuit()
        electrical.current_source("I1", "0", "v", drive)
        electrical.capacitor("C1", "v", "0", mass)
        electrical.inductor("L1", "v", "0", 1.0 / stiffness)
        electrical.resistor("R1", "v", "0", 1.0 / damping)

        res_m = TransientAnalysis(mechanical, t_stop=30e-3, t_step=5e-5).run()
        res_e = TransientAnalysis(electrical, t_stop=30e-3, t_step=5e-5).run()
        times = np.linspace(1e-3, 29e-3, 50)
        vm = res_m.sample("v(m)", times)
        ve = res_e.sample("v(v)", times)
        assert np.allclose(vm, ve, rtol=2e-3, atol=1e-12)


class TestResultContainers:
    def test_unknown_signal_raises_keyerror_with_hint(self):
        result = TransientResult(np.array([0.0, 1.0]), {"v(a)": np.array([0.0, 1.0])})
        with pytest.raises(KeyError, match="v\\(a\\)"):
            result["v(b)"]

    def test_shape_mismatch_rejected(self):
        with pytest.raises(AnalysisError):
            TransientResult(np.array([0.0, 1.0]), {"v(a)": np.array([0.0])})

    def test_signals_listing_and_helpers(self):
        time = np.linspace(0.0, 1.0, 11)
        result = TransientResult(time, {"v(a)": time ** 2})
        assert result.signals() == ["v(a)"]
        assert result.final("v(a)") == 1.0
        assert result.at("v(a)", 0.5) == pytest.approx(0.25, abs=0.01)
        assert result.settled_value("v(a)", fraction=0.2) < 1.0
        t_peak, value = result.peak("v(a)")
        assert t_peak == 1.0 and value == 1.0
        t_trough, value = result.trough("v(a)", after=0.5)
        assert t_trough == 0.5

    def test_peak_after_end_raises(self):
        time = np.linspace(0.0, 1.0, 11)
        result = TransientResult(time, {"v(a)": time})
        with pytest.raises(AnalysisError):
            result.peak("v(a)", after=2.0)
