"""Cross-validation: AC small-signal analysis versus small-amplitude transients.

The paper's selling point for HDL-A behavioral models is that one nonlinear
model serves the dc, ac and transient analysis domains consistently.  These
tests verify that property on this implementation: the small-signal transfer
function predicted by the AC linearization of the behavioral electrostatic
transducer matches the amplitude observed in a transient simulation with a
small sinusoidal perturbation superimposed on the bias.
"""

from __future__ import annotations

import numpy as np
import pytest

from repro.circuit import (
    ACAnalysis,
    Circuit,
    OperatingPointAnalysis,
    SimulationOptions,
    TransientAnalysis,
)
from repro.circuit.waveforms import Waveform
from repro.system import PAPER_PARAMETERS
from repro.transducers import TransverseElectrostaticTransducer


class _BiasPlusSine(Waveform):
    """A DC bias with a small superimposed sine (not a standard SPICE source)."""

    def __init__(self, bias: float, amplitude: float, frequency: float) -> None:
        self.bias = bias
        self.amplitude = amplitude
        self.frequency = frequency

    def value(self, t: float) -> float:
        return self.bias + self.amplitude * np.sin(2.0 * np.pi * self.frequency * t)

    def breakpoints(self):
        return ()


def _build(drive) -> Circuit:
    circuit = Circuit("ac/tran consistency")
    circuit.voltage_source("VS", "a", "0", drive, ac=1.0)
    TransverseElectrostaticTransducer(
        area=PAPER_PARAMETERS.area, gap=PAPER_PARAMETERS.gap).add_to_circuit(
        circuit, "XDCR", "a", "0", "m", "0")
    circuit.mass("M1", "m", PAPER_PARAMETERS.mass)
    circuit.spring("K1", "m", "0", PAPER_PARAMETERS.stiffness)
    circuit.damper("D1", "m", "0", PAPER_PARAMETERS.damping)
    return circuit


class TestACTransientConsistency:
    FREQUENCY = 100.0          # well below the 225 Hz resonance
    BIAS = 10.0
    PERTURBATION = 0.2         # volts, small signal

    @pytest.fixture(scope="class")
    def ac_velocity_gain(self):
        circuit = _build(self.BIAS)
        op = OperatingPointAnalysis(circuit).run()
        result = ACAnalysis(circuit, [self.FREQUENCY]).run(operating_point=op)
        return abs(result.at("v(m)", self.FREQUENCY))

    @pytest.fixture(scope="class")
    def transient_velocity_gain(self):
        drive = _BiasPlusSine(self.BIAS, self.PERTURBATION, self.FREQUENCY)
        circuit = _build(drive)
        options = SimulationOptions(trtol=10.0)
        result = TransientAnalysis(circuit, t_stop=80e-3, t_step=2e-4,
                                   options=options).run()
        # Measure the steady-state velocity amplitude over the last cycles.
        mask = result.time > 40e-3
        velocity = result.signal("v(m)")[mask]
        amplitude = 0.5 * (np.max(velocity) - np.min(velocity))
        return amplitude / self.PERTURBATION

    def test_ac_gain_is_finite_and_nonzero(self, ac_velocity_gain):
        assert 0.0 < ac_velocity_gain < 1.0

    def test_transient_amplitude_matches_ac_prediction(self, ac_velocity_gain,
                                                       transient_velocity_gain):
        assert transient_velocity_gain == pytest.approx(ac_velocity_gain, rel=0.1)

    def test_ac_gain_scales_with_bias_voltage(self):
        """The transduction is proportional to the bias voltage: doubling the
        bias doubles the small-signal velocity response."""
        gains = {}
        for bias in (5.0, 10.0):
            circuit = _build(bias)
            op = OperatingPointAnalysis(circuit).run()
            result = ACAnalysis(circuit, [self.FREQUENCY]).run(operating_point=op)
            gains[bias] = abs(result.at("v(m)", self.FREQUENCY))
        assert gains[10.0] / gains[5.0] == pytest.approx(2.0, rel=0.02)
