"""Transient-analysis tests against closed-form circuit responses."""

from __future__ import annotations

import numpy as np
import pytest

from repro.circuit import (
    Circuit,
    Pulse,
    Sine,
    SimulationOptions,
    Step,
    TransientAnalysis,
)
from repro.errors import AnalysisError


def rc_circuit(tau_resistor=1e3, tau_capacitor=1e-6, amplitude=5.0):
    circuit = Circuit("rc")
    circuit.voltage_source("V1", "in", "0",
                           Step(v1=0.0, v2=amplitude, time=0.0, ramp=1e-9))
    circuit.resistor("R1", "in", "out", tau_resistor)
    circuit.capacitor("C1", "out", "0", tau_capacitor)
    return circuit


class TestRCStepResponse:
    def test_exponential_charging(self):
        circuit = rc_circuit()
        result = TransientAnalysis(circuit, t_stop=5e-3, t_step=20e-6).run()
        tau = 1e-3
        for t_probe in (0.5e-3, 1e-3, 2e-3, 4e-3):
            expected = 5.0 * (1.0 - np.exp(-t_probe / tau))
            assert result.at("v(out)", t_probe) == pytest.approx(expected, rel=5e-3)

    def test_final_value_reaches_source(self):
        result = TransientAnalysis(rc_circuit(), t_stop=10e-3, t_step=50e-6).run()
        assert result.final("v(out)") == pytest.approx(5.0, rel=1e-3)

    def test_capacitor_current_decays(self):
        result = TransientAnalysis(rc_circuit(), t_stop=10e-3, t_step=50e-6).run()
        i_start = result.at("i(R1)", 50e-6)
        i_end = result.final("i(R1)")
        assert i_start > 100 * abs(i_end)

    def test_backward_euler_also_converges(self):
        options = SimulationOptions(integration_method="backward_euler")
        result = TransientAnalysis(rc_circuit(), t_stop=5e-3, t_step=10e-6,
                                   options=options).run()
        expected = 5.0 * (1.0 - np.exp(-1.0))
        assert result.at("v(out)", 1e-3) == pytest.approx(expected, rel=2e-2)

    def test_statistics_populated(self):
        result = TransientAnalysis(rc_circuit(), t_stop=1e-3, t_step=20e-6).run()
        assert result.statistics["accepted"] > 10
        assert result.statistics["wall_time_s"] > 0.0
        assert result.statistics["points"] == result.time.size


class TestRLNetwork:
    def test_rl_current_rise(self):
        circuit = Circuit()
        circuit.voltage_source("V1", "in", "0", Step(0.0, 1.0, time=0.0, ramp=1e-9))
        circuit.resistor("R1", "in", "out", 10.0)
        circuit.inductor("L1", "out", "0", 10e-3)
        result = TransientAnalysis(circuit, t_stop=5e-3, t_step=10e-6).run()
        tau = 10e-3 / 10.0
        expected = 0.1 * (1.0 - np.exp(-1.0))
        assert result.at("i(L1)", tau) == pytest.approx(expected, rel=1e-2)
        # After 5 time constants the current has reached 1 - e^-5 of its limit.
        assert result.final("i(L1)") == pytest.approx(0.1 * (1.0 - np.exp(-5.0)), rel=1e-3)


class TestSeriesRLCRinging:
    def test_underdamped_oscillation_frequency(self):
        circuit = Circuit()
        circuit.voltage_source("V1", "in", "0", Step(0.0, 1.0, time=0.0, ramp=1e-9))
        circuit.resistor("R1", "in", "a", 10.0)
        circuit.inductor("L1", "a", "b", 1e-3)
        circuit.capacitor("C1", "b", "0", 1e-6)
        result = TransientAnalysis(circuit, t_stop=1e-3, t_step=1e-6).run()
        vout = result.signal("v(b)")
        # Peak of the underdamped response overshoots the final value.
        assert np.max(vout) > 1.2
        assert result.final("v(b)") == pytest.approx(1.0, rel=5e-2)
        # Ringing frequency ~ 1/(2 pi sqrt(LC)) ~ 5.03 kHz: find first peak.
        t_peak, _ = result.peak("v(b)")
        half_period = np.pi * np.sqrt(1e-3 * 1e-6)
        assert t_peak == pytest.approx(half_period, rel=0.1)


class TestSineDrive:
    def test_amplitude_through_rc_at_low_frequency(self):
        circuit = Circuit()
        circuit.voltage_source("V1", "in", "0", Sine(amplitude=1.0, frequency=50.0))
        circuit.resistor("R1", "in", "out", 1e3)
        circuit.capacitor("C1", "out", "0", 1e-9)  # cutoff 159 kHz >> 50 Hz
        result = TransientAnalysis(circuit, t_stop=40e-3, t_step=0.1e-3).run()
        assert np.max(result.signal("v(out)")) == pytest.approx(1.0, rel=2e-2)


class TestMechanicalResonatorResponse:
    def test_step_force_overshoot_matches_damping_ratio(self):
        circuit = Circuit()
        circuit.force_source("F1", "m", "0", Pulse(0.0, 1.0, rise=1e-4, width=10.0))
        circuit.mass("M1", "m", 1e-4)
        circuit.spring("K1", "m", "0", 200.0)
        circuit.damper("D1", "m", "0", 40e-3)
        result = TransientAnalysis(circuit, t_stop=0.15, t_step=2e-4).run()
        static = 1.0 / 200.0
        assert result.final("x(M1)") == pytest.approx(static, rel=1e-2)
        zeta = 40e-3 / (2.0 * np.sqrt(200.0 * 1e-4))
        expected_peak = static * (1.0 + np.exp(-zeta * np.pi / np.sqrt(1.0 - zeta ** 2)))
        _, peak = result.peak("x(M1)")
        assert peak == pytest.approx(expected_peak, rel=2e-2)

    def test_velocity_source_imposes_motion(self):
        circuit = Circuit()
        circuit.velocity_source("U1", "m", "0", Sine(amplitude=1e-3, frequency=100.0))
        circuit.damper("D1", "m", "0", 0.5)
        result = TransientAnalysis(circuit, t_stop=20e-3, t_step=50e-6).run()
        # Damper force follows alpha * velocity.
        assert np.max(result.signal("f(D1)")) == pytest.approx(0.5e-3, rel=5e-2)


class TestValidationAndEdges:
    def test_bad_time_range_rejected(self):
        with pytest.raises(AnalysisError):
            TransientAnalysis(rc_circuit(), t_stop=0.0)

    def test_bad_step_rejected(self):
        with pytest.raises(AnalysisError):
            TransientAnalysis(rc_circuit(), t_stop=1e-3, t_step=-1.0)

    def test_use_ic_starts_from_zero(self):
        circuit = Circuit()
        circuit.voltage_source("V1", "in", "0", 5.0)
        circuit.resistor("R1", "in", "out", 1e3)
        circuit.capacitor("C1", "out", "0", 1e-6)
        result = TransientAnalysis(circuit, t_stop=5e-3, t_step=20e-6, use_ic=True).run()
        assert result.signal("v(out)")[0] == pytest.approx(0.0, abs=1e-9)
        assert result.final("v(out)") == pytest.approx(5.0, rel=1e-2)

    def test_time_axis_is_monotonic(self):
        result = TransientAnalysis(rc_circuit(), t_stop=2e-3, t_step=20e-6).run()
        assert np.all(np.diff(result.time) > 0.0)
        assert result.time[0] == 0.0
        assert result.time[-1] == pytest.approx(2e-3, rel=1e-6)

    def test_pulse_breakpoints_are_hit(self):
        circuit = Circuit()
        circuit.voltage_source("V1", "in", "0",
                               Pulse(0.0, 1.0, delay=0.3e-3, rise=0.1e-3, width=0.5e-3))
        circuit.resistor("R1", "in", "0", 1e3)
        result = TransientAnalysis(circuit, t_stop=2e-3, t_step=0.25e-3).run()
        # The plateau start (0.4 ms) must be an exact sample despite the 0.25 ms step.
        assert np.any(np.isclose(result.time, 0.4e-3, atol=1e-12))
