"""Tests for the sparse MNA fast path and the linear-solver options."""

from __future__ import annotations

import numpy as np
import pytest

from repro.circuit import (
    Circuit,
    OperatingPointAnalysis,
    Pulse,
    SimulationOptions,
    TransientAnalysis,
)
from repro.circuit.mna import MNASystem
from repro.errors import AnalysisError


def _ladder(n: int, current_drive: bool = False) -> Circuit:
    """An n-section resistive ladder (n+1 nodes, optional aux-free drive)."""
    circuit = Circuit(f"ladder-{n}")
    if current_drive:
        circuit.current_source("I1", "n0", "0", -1e-3)
    else:
        circuit.voltage_source("V1", "n0", "0", 5.0)
    for i in range(n):
        circuit.resistor(f"R{i}", f"n{i}", f"n{i + 1}", 100.0)
        circuit.resistor(f"Rg{i}", f"n{i + 1}", "0", 1e4)
    return circuit


class TestOptions:
    def test_defaults_keep_small_systems_dense(self):
        options = SimulationOptions()
        assert options.linear_solver == "auto"
        assert not options.use_sparse(10)
        assert options.use_sparse(options.sparse_threshold + 1)

    def test_forced_modes(self):
        assert SimulationOptions(linear_solver="sparse").use_sparse(2)
        assert SimulationOptions(linear_solver="cg").use_sparse(2)
        assert not SimulationOptions(linear_solver="dense").use_sparse(10_000)
        assert SimulationOptions(linear_solver="cg").solver_backend() == "cg"
        assert SimulationOptions(linear_solver="sparse").solver_backend() == "auto"

    def test_threshold_is_tunable(self):
        options = SimulationOptions(sparse_threshold=5)
        assert options.use_sparse(6) and not options.use_sparse(5)

    def test_validation(self):
        with pytest.raises(AnalysisError):
            SimulationOptions(linear_solver="lu")
        with pytest.raises(AnalysisError):
            SimulationOptions(linear_solver_rtol=0.0)
        with pytest.raises(AnalysisError):
            SimulationOptions(sparse_threshold=0)


class TestSparseAssembly:
    def test_sparse_context_matches_dense_jacobian(self):
        circuit = _ladder(5)
        system = MNASystem(circuit)
        x = np.linspace(0.0, 1.0, system.size)
        dense_ctx = system.assemble(x, "op", 0.0, None,
                                    SimulationOptions(linear_solver="dense"))
        sparse_ctx = system.assemble(x, "op", 0.0, None,
                                     SimulationOptions(linear_solver="sparse"))
        assert sparse_ctx.use_sparse and sparse_ctx.jac is None
        np.testing.assert_allclose(sparse_ctx.jacobian().toarray(),
                                   dense_ctx.jacobian())
        np.testing.assert_allclose(sparse_ctx.res, dense_ctx.res)
        assert sparse_ctx.jacobian_is_finite()


class TestSparseSolves:
    def test_forced_sparse_op_matches_dense(self):
        dense = OperatingPointAnalysis(
            _ladder(40), SimulationOptions(linear_solver="dense")).run()
        sparse = OperatingPointAnalysis(
            _ladder(40), SimulationOptions(linear_solver="sparse")).run()
        for i in (0, 20, 40):
            assert sparse.voltage(f"n{i}") == pytest.approx(
                dense.voltage(f"n{i}"), rel=1e-12, abs=1e-15)

    def test_auto_routes_large_system_sparse(self):
        # 301 node unknowns + 1 aux > default threshold of 256.
        circuit = _ladder(300)
        assert SimulationOptions().use_sparse(MNASystem(circuit).size)
        auto = OperatingPointAnalysis(circuit).run()
        dense = OperatingPointAnalysis(
            circuit, SimulationOptions(linear_solver="dense")).run()
        assert auto.voltage("n300") == pytest.approx(dense.voltage("n300"),
                                                     rel=1e-12)

    def test_cg_on_spd_system_matches_dense(self):
        circuit = _ladder(30, current_drive=True)
        cg = OperatingPointAnalysis(
            circuit, SimulationOptions(linear_solver="cg",
                                       linear_solver_rtol=1e-12)).run()
        dense = OperatingPointAnalysis(
            circuit, SimulationOptions(linear_solver="dense")).run()
        assert cg.voltage("n15") == pytest.approx(dense.voltage("n15"), rel=1e-9)

    def test_transient_threads_solver_selection(self):
        def rc(options):
            circuit = Circuit("rc")
            circuit.voltage_source("V1", "in", "0", Pulse(0.0, 5.0, rise=1e-6))
            circuit.resistor("R1", "in", "out", 1e3)
            circuit.capacitor("C1", "out", "0", 1e-6)
            return TransientAnalysis(circuit, t_stop=5e-3, t_step=5e-5,
                                     options=options).run()

        dense = rc(SimulationOptions(linear_solver="dense"))
        sparse = rc(SimulationOptions(linear_solver="sparse"))
        probe = np.linspace(1e-4, 4.9e-3, 20)
        np.testing.assert_allclose(sparse.sample("v(out)", probe),
                                   dense.sample("v(out)", probe),
                                   rtol=1e-9, atol=1e-12)
