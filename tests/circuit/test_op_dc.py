"""Tests for operating-point and DC-sweep analyses on analytic circuits."""

from __future__ import annotations

import numpy as np
import pytest

from repro.circuit import (
    Circuit,
    DCSweepAnalysis,
    OperatingPointAnalysis,
    SimulationOptions,
)
from repro.circuit.mna import MNASystem
from repro.errors import AnalysisError, NetlistError


class TestVoltageDivider:
    def test_two_resistor_divider(self):
        circuit = Circuit()
        circuit.voltage_source("V1", "in", "0", 10.0)
        circuit.resistor("R1", "in", "out", 1e3)
        circuit.resistor("R2", "out", "0", 3e3)
        op = OperatingPointAnalysis(circuit).run()
        assert op.voltage("out") == pytest.approx(7.5, rel=1e-6)
        assert op.current("V1") == pytest.approx(-10.0 / 4e3, rel=1e-6)

    def test_current_source_into_resistor(self):
        circuit = Circuit()
        circuit.current_source("I1", "0", "a", 1e-3)
        circuit.resistor("R1", "a", "0", 2e3)
        op = OperatingPointAnalysis(circuit).run()
        assert op.voltage("a") == pytest.approx(2.0, rel=1e-6)

    def test_capacitor_open_inductor_short_at_dc(self):
        circuit = Circuit()
        circuit.voltage_source("V1", "in", "0", 5.0)
        circuit.resistor("R1", "in", "mid", 1e3)
        circuit.capacitor("C1", "mid", "0", 1e-6)
        circuit.inductor("L1", "mid", "out", 1e-3)
        circuit.resistor("R2", "out", "0", 1e3)
        op = OperatingPointAnalysis(circuit).run()
        # Inductor shorts mid to out, capacitor draws nothing: divider of R1/R2.
        assert op.voltage("mid") == pytest.approx(2.5, rel=1e-6)
        assert op.voltage("out") == pytest.approx(2.5, rel=1e-6)
        assert op.current("L1") == pytest.approx(2.5e-3, rel=1e-6)

    def test_controlled_sources(self):
        circuit = Circuit()
        circuit.voltage_source("V1", "in", "0", 2.0)
        circuit.resistor("R1", "in", "0", 1e3)
        circuit.vccs("G1", "0", "out", "in", "0", 1e-3)  # injects 2 mA into out
        circuit.resistor("R2", "out", "0", 1e3)
        circuit.vcvs("E1", "amp", "0", "out", "0", 5.0)
        circuit.resistor("R3", "amp", "0", 1e3)
        op = OperatingPointAnalysis(circuit).run()
        assert op.voltage("out") == pytest.approx(2.0, rel=1e-6)
        assert op.voltage("amp") == pytest.approx(10.0, rel=1e-6)

    def test_current_controlled_sources(self):
        circuit = Circuit()
        circuit.voltage_source("V1", "in", "0", 1.0)
        circuit.resistor("R1", "in", "0", 100.0)     # i(V1) = -10 mA (SPICE sign)
        circuit.cccs("F1", "0", "out", "V1", 2.0)
        circuit.resistor("R2", "out", "0", 50.0)
        circuit.ccvs("H1", "h", "0", "V1", 100.0)
        circuit.resistor("R3", "h", "0", 1e3)
        op = OperatingPointAnalysis(circuit).run()
        assert op.voltage("out") == pytest.approx(-1.0, rel=1e-6)
        assert op.voltage("h") == pytest.approx(-1.0, rel=1e-6)


class TestNonlinearOperatingPoint:
    def test_diode_resistor_bias(self):
        circuit = Circuit()
        circuit.voltage_source("V1", "in", "0", 5.0)
        circuit.resistor("R1", "in", "d", 1e3)
        circuit.diode("D1", "d", "0")
        op = OperatingPointAnalysis(circuit).run()
        vd = op.voltage("d")
        assert 0.5 < vd < 0.8
        # KCL: resistor current equals diode current.
        i_r = (5.0 - vd) / 1e3
        assert op["i(D1)"] == pytest.approx(i_r, rel=1e-3)

    def test_reverse_biased_diode_blocks(self):
        circuit = Circuit()
        circuit.voltage_source("V1", "in", "0", -5.0)
        circuit.resistor("R1", "in", "d", 1e3)
        circuit.diode("D1", "d", "0")
        op = OperatingPointAnalysis(circuit).run()
        assert op.voltage("d") == pytest.approx(-5.0, rel=1e-3)

    def test_floating_node_rejected(self):
        circuit = Circuit()
        circuit.voltage_source("V1", "in", "0", 1.0)
        circuit.resistor("R1", "in", "out", 1e3)
        # node out only touches one device but is still solvable thanks to gmin;
        # a completely unconnected node however fails validation.
        circuit.node("nowhere")
        with pytest.raises(NetlistError):
            OperatingPointAnalysis(circuit).run()


class TestDCSweep:
    def test_resistive_divider_sweep_is_linear(self):
        circuit = Circuit()
        circuit.voltage_source("V1", "in", "0", 0.0)
        circuit.resistor("R1", "in", "out", 1e3)
        circuit.resistor("R2", "out", "0", 1e3)
        sweep = DCSweepAnalysis(circuit, "V1", np.linspace(0.0, 10.0, 11)).run()
        assert sweep.column("v(out)") == pytest.approx(0.5 * sweep.sweep_values)

    def test_diode_sweep_monotonic_current(self):
        circuit = Circuit()
        circuit.voltage_source("V1", "in", "0", 0.0)
        circuit.resistor("R1", "in", "d", 1e3)
        circuit.diode("D1", "d", "0")
        sweep = DCSweepAnalysis(circuit, "V1", np.linspace(0.0, 5.0, 21)).run()
        current = sweep.column("i(D1)")
        assert np.all(np.diff(current) >= -1e-12)
        assert current[-1] > 1e-3

    def test_sweep_restores_original_waveform(self):
        circuit = Circuit()
        circuit.voltage_source("V1", "in", "0", 7.0)
        circuit.resistor("R1", "in", "0", 1e3)
        DCSweepAnalysis(circuit, "V1", [0.0, 1.0]).run()
        assert circuit["V1"].waveform.value(0.0) == 7.0

    def test_sweeping_non_source_rejected(self):
        circuit = Circuit()
        circuit.voltage_source("V1", "in", "0", 1.0)
        circuit.resistor("R1", "in", "0", 1e3)
        with pytest.raises(AnalysisError):
            DCSweepAnalysis(circuit, "R1", [1.0, 2.0])

    def test_empty_sweep_rejected(self):
        circuit = Circuit()
        circuit.voltage_source("V1", "in", "0", 1.0)
        circuit.resistor("R1", "in", "0", 1e3)
        with pytest.raises(AnalysisError):
            DCSweepAnalysis(circuit, "V1", [])


class TestMNASystem:
    def test_unknown_labels(self):
        circuit = Circuit()
        circuit.voltage_source("V1", "in", "0", 1.0)
        circuit.resistor("R1", "in", "out", 1e3)
        circuit.capacitor("C1", "out", "0", 1e-9)
        system = MNASystem(circuit)
        labels = system.unknown_labels()
        assert "v(in)" in labels and "v(out)" in labels and "V1#i" in labels
        assert system.size == 3
        assert system.num_nodes == 2 and system.num_aux == 1

    def test_index_of_ground_is_negative(self):
        circuit = Circuit()
        circuit.resistor("R1", "a", "0", 1.0)
        system = MNASystem(circuit)
        assert system.index_of(circuit.ground) == -1

    def test_aux_index_unknown_device(self):
        circuit = Circuit()
        circuit.resistor("R1", "a", "0", 1.0)
        system = MNASystem(circuit)
        with pytest.raises(NetlistError):
            system.aux_index("R1", "i")
