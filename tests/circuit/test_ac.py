"""AC small-signal analysis tests against closed-form transfer functions."""

from __future__ import annotations

import numpy as np
import pytest

from repro.circuit import (
    ACAnalysis,
    Circuit,
    OperatingPointAnalysis,
    frequency_grid,
    input_admittance,
    input_impedance,
    equivalent_capacitance,
    small_signal_matrices,
)
from repro.errors import AnalysisError


def rc_lowpass(r=1e3, c=1e-6):
    circuit = Circuit()
    circuit.voltage_source("V1", "in", "0", 0.0, ac=1.0)
    circuit.resistor("R1", "in", "out", r)
    circuit.capacitor("C1", "out", "0", c)
    return circuit


class TestFrequencyGrid:
    def test_log_grid_endpoints(self):
        grid = frequency_grid(10.0, 1e4, points_per_decade=10)
        assert grid[0] == pytest.approx(10.0)
        assert grid[-1] == pytest.approx(1e4)
        assert np.all(np.diff(np.log10(grid)) > 0)

    def test_lin_grid(self):
        grid = frequency_grid(1.0, 10.0, points_per_decade=10, spacing="lin")
        assert grid.size == 10

    def test_invalid_inputs(self):
        with pytest.raises(AnalysisError):
            frequency_grid(-1.0, 10.0)
        with pytest.raises(AnalysisError):
            frequency_grid(10.0, 1.0)
        with pytest.raises(AnalysisError):
            frequency_grid(1.0, 10.0, spacing="quadratic")


class TestRCLowpass:
    def test_matches_analytic_transfer_function(self):
        circuit = rc_lowpass()
        frequencies = frequency_grid(1.0, 1e6, 10)
        result = ACAnalysis(circuit, frequencies).run()
        response = np.asarray(result["v(out)"], dtype=complex)
        expected = 1.0 / (1.0 + 2j * np.pi * frequencies * 1e3 * 1e-6)
        assert np.allclose(response, expected, rtol=1e-6)

    def test_corner_frequency_minus_3db(self):
        circuit = rc_lowpass()
        f_corner = 1.0 / (2.0 * np.pi * 1e-3)
        result = ACAnalysis(circuit, [f_corner]).run()
        assert abs(result.at("v(out)", f_corner)) == pytest.approx(1.0 / np.sqrt(2.0), rel=1e-6)

    def test_phase_at_corner_is_minus_45_degrees(self):
        circuit = rc_lowpass()
        f_corner = 1.0 / (2.0 * np.pi * 1e-3)
        result = ACAnalysis(circuit, [f_corner]).run()
        assert result.phase_deg("v(out)")[0] == pytest.approx(-45.0, abs=1e-3)

    def test_magnitude_db_helper(self):
        circuit = rc_lowpass()
        result = ACAnalysis(circuit, [1.0]).run()
        assert result.magnitude_db("v(in)")[0] == pytest.approx(0.0, abs=1e-6)

    def test_reuses_precomputed_operating_point(self):
        circuit = rc_lowpass()
        op = OperatingPointAnalysis(circuit).run()
        result = ACAnalysis(circuit, [100.0]).run(operating_point=op)
        assert abs(result.at("v(out)", 100.0)) > 0.8


class TestRLCResonance:
    def test_series_rlc_peak_at_resonance(self):
        circuit = Circuit()
        circuit.voltage_source("V1", "in", "0", 0.0, ac=1.0)
        circuit.resistor("R1", "in", "a", 10.0)
        circuit.inductor("L1", "a", "b", 1e-3)
        circuit.capacitor("C1", "b", "0", 1e-6)
        f0 = 1.0 / (2.0 * np.pi * np.sqrt(1e-3 * 1e-6))
        result = ACAnalysis(circuit, frequency_grid(f0 / 10, f0 * 10, 60)).run()
        # Current magnitude peaks at the resonance frequency; the parabolic
        # refinement resolves it well below the coarse log-grid spacing.
        estimate = result.resonance_frequency("i(V1)")
        assert estimate == pytest.approx(f0, rel=5e-3)
        assert estimate not in result.frequencies
        # At resonance the current is limited by R only.
        assert np.max(result.magnitude("i(V1)")) == pytest.approx(1.0 / 10.0, rel=1e-2)

    def test_diode_small_signal_conductance(self):
        circuit = Circuit()
        circuit.voltage_source("V1", "in", "0", 5.0, ac=1.0)
        circuit.resistor("R1", "in", "d", 1e3)
        circuit.diode("D1", "d", "0")
        op = OperatingPointAnalysis(circuit).run()
        result = ACAnalysis(circuit, [1e3]).run(operating_point=op)
        # The diode's small-signal conductance is Id/nVt >> 1/R1, so the AC
        # gain at node d is tiny compared to the input.
        assert abs(result.at("v(d)", 1e3)) < 0.05


class TestAnalysisValidation:
    def test_rejects_empty_or_negative_frequencies(self):
        with pytest.raises(AnalysisError):
            ACAnalysis(rc_lowpass(), [])
        with pytest.raises(AnalysisError):
            ACAnalysis(rc_lowpass(), [-1.0])


class TestLinearization:
    def test_input_impedance_of_resistor(self):
        circuit = Circuit()
        circuit.current_source("I1", "0", "a", 0.0)
        circuit.resistor("R1", "a", "0", 123.0)
        impedance = input_impedance(circuit, "a", 1e3)
        assert impedance.real == pytest.approx(123.0, rel=1e-6)

    def test_equivalent_capacitance_of_parallel_rc(self):
        circuit = Circuit()
        circuit.current_source("I1", "0", "a", 0.0)
        circuit.resistor("R1", "a", "0", 1e6)
        circuit.capacitor("C1", "a", "0", 3.3e-12)
        assert equivalent_capacitance(circuit, "a", 1e4) == pytest.approx(3.3e-12, rel=1e-6)

    def test_admittance_inverse_of_impedance(self):
        circuit = Circuit()
        circuit.current_source("I1", "0", "a", 0.0)
        circuit.resistor("R1", "a", "0", 50.0)
        circuit.capacitor("C1", "a", "0", 1e-9)
        y = input_admittance(circuit, "a", 1e5)
        z = input_impedance(circuit, "a", 1e5)
        assert y * z == pytest.approx(1.0, rel=1e-9)

    def test_small_signal_matrices_of_rc(self):
        circuit = rc_lowpass()
        conductance, capacitance, system = small_signal_matrices(circuit)
        i_out = system.index_of(circuit.node("out"))
        assert conductance[i_out, i_out] == pytest.approx(1e-3, rel=1e-3)
        assert capacitance[i_out, i_out] == pytest.approx(1e-6, rel=1e-6)

    def test_probing_ground_rejected(self):
        circuit = rc_lowpass()
        with pytest.raises(AnalysisError):
            input_admittance(circuit, "0", 1e3)
