"""Batched Newton drivers: per-lane parity with the serial analyses."""

from __future__ import annotations

import numpy as np
import pytest

from repro.circuit import Circuit, SimulationOptions
from repro.circuit.analysis.batch import (ParameterColumns, batch_supported,
                                          batched_dcsweeps,
                                          batched_operating_points)
from repro.circuit.analysis.dcsweep import DCSweepAnalysis
from repro.circuit.analysis.op import OperatingPointAnalysis
from repro.errors import AnalysisError, NetlistError
from repro.transducers import TransverseElectrostaticTransducer


def build_ladder(sections: int = 4) -> Circuit:
    """Nonlinear diode ladder: every device is batch-safe."""
    circuit = Circuit("ladder")
    circuit.voltage_source("VS", "n0", "0", 5.0)
    for i in range(sections):
        circuit.resistor(f"R{i}", f"n{i}", f"n{i + 1}", 100.0)
        circuit.diode(f"D{i}", f"n{i + 1}", "0")
    return circuit


def build_actuator() -> Circuit:
    """Electrostatic actuator: the transducer is NOT batch-safe."""
    circuit = Circuit("actuator")
    circuit.voltage_source("VB", "a", "0", 4.0)
    circuit.mass("M1", "m", 1e-9)
    circuit.spring("K1", "m", "0", 2.0)
    circuit.damper("D1", "m", "0", 1e-5)
    transducer = TransverseElectrostaticTransducer(area=4e-8, gap=2e-6)
    transducer.add_to_circuit(circuit, "XDCR", "a", "0", "m", "0")
    return circuit


def serial_op(circuit, columns: ParameterColumns, lane: int,
              options: SimulationOptions):
    columns.set_lane(lane)
    try:
        return OperatingPointAnalysis(circuit, options).run()
    finally:
        columns.restore()


class TestParameterColumns:
    def test_lane_values_and_context_restore(self):
        circuit = build_ladder()
        columns = ParameterColumns(circuit, [("VS", "dc", [4.0, 7.0, 6.0])])
        assert columns.batch == 3
        with columns:
            columns.set_lane(1)
            assert circuit["VS"].get_parameter("dc") == 7.0
        # Exiting the context puts the construction-time value back.
        assert circuit["VS"].get_parameter("dc") == 5.0

    def test_restores_original_value(self):
        circuit = build_ladder()
        columns = ParameterColumns(circuit,
                                   [("R0", "resistance", [10.0, 20.0])])
        with columns:
            columns.set_arrays()
        assert circuit["R0"].get_parameter("resistance") == 100.0

    def test_ragged_columns_rejected(self):
        circuit = build_ladder()
        with pytest.raises(AnalysisError, match="lanes"):
            ParameterColumns(circuit, [("VS", "dc", [1.0, 2.0]),
                                       ("R0", "resistance", [1.0, 2.0, 3.0])])

    def test_unknown_device_rejected(self):
        with pytest.raises(NetlistError, match="no device"):
            ParameterColumns(build_ladder(), [("RX", "resistance", [1.0])])

    def test_targets(self):
        circuit = build_ladder()
        columns = ParameterColumns(circuit, [("VS", "dc", [1.0])])
        assert columns.targets(circuit["VS"])
        assert not columns.targets(circuit["R0"])


class TestBatchSupported:
    def test_only_cg_falls_back(self):
        assert batch_supported(SimulationOptions())
        assert batch_supported(SimulationOptions(jacobian_reuse="chord"))
        assert not batch_supported(SimulationOptions(linear_solver="cg"))


class TestBatchedOperatingPoints:
    @pytest.mark.parametrize("options", [
        SimulationOptions(),
        SimulationOptions(linear_solver="sparse", sparse_threshold=1),
    ], ids=["dense", "superlu"])
    def test_parity_with_serial(self, options):
        circuit = build_ladder()
        vdd = np.array([3.0, 4.0, 5.0, 6.0, 7.0])
        columns = ParameterColumns(circuit, [("VS", "dc", vdd)])
        results = batched_operating_points(circuit, options, columns)
        assert all(op is not None for op in results)
        for lane, op in enumerate(results):
            reference = serial_op(circuit, columns, lane, options)
            assert op.iterations == reference.iterations
            for key, value in reference.items():
                scale = max(1.0, abs(value))
                assert abs(op[key] - value) / scale <= 1e-12

    def test_nonfinite_lane_retired_others_solve(self):
        circuit = build_ladder()
        vdd = np.array([4.0, np.nan, 5.0])
        columns = ParameterColumns(circuit, [("VS", "dc", vdd)])
        results = batched_operating_points(circuit, SimulationOptions(),
                                           columns)
        assert results[1] is None
        assert results[0] is not None and results[2] is not None

    def test_mixed_behavioral_circuit_parity(self):
        circuit = build_actuator()
        gaps = np.array([1.8e-6, 2.0e-6, 2.2e-6])
        columns = ParameterColumns(circuit, [("XDCR", "d", gaps)])
        options = SimulationOptions()
        results = batched_operating_points(circuit, options, columns)
        assert all(op is not None for op in results)
        for lane, op in enumerate(results):
            reference = serial_op(circuit, columns, lane, options)
            assert op.iterations == reference.iterations
            for key in reference:
                scale = max(1.0, abs(reference[key]))
                assert abs(op[key] - reference[key]) / scale <= 1e-12


class TestBatchedDCSweeps:
    def test_parity_with_serial_sweep(self):
        circuit = build_ladder()
        sweep = np.linspace(0.0, 6.0, 7)
        rscale = np.array([80.0, 100.0, 120.0])
        columns = ParameterColumns(circuit, [("R0", "resistance", rscale)])
        options = SimulationOptions()
        results = batched_dcsweeps(circuit, "VS", sweep, options, columns)
        assert all(result is not None for result in results)
        for lane, result in enumerate(results):
            columns.set_lane(lane)
            try:
                reference = DCSweepAnalysis(circuit, "VS", sweep,
                                            options).run()
            finally:
                columns.restore()
            assert set(result.keys()) == set(reference.keys())
            for key in reference.keys():
                ref_col = reference.column(key)
                scale = np.maximum(1.0, np.abs(ref_col))
                assert np.all(
                    np.abs(result.column(key) - ref_col) / scale <= 1e-12)

    def test_swept_source_cannot_be_column_target(self):
        circuit = build_ladder()
        columns = ParameterColumns(circuit, [("VS", "dc", [1.0, 2.0])])
        with pytest.raises(AnalysisError, match="cannot also sweep"):
            batched_dcsweeps(circuit, "VS", [0.0, 1.0], SimulationOptions(),
                             columns)

    def test_non_source_sweep_rejected(self):
        circuit = build_ladder()
        columns = ParameterColumns(circuit, [("VS", "dc", [1.0])])
        with pytest.raises(AnalysisError, match="independent source"):
            batched_dcsweeps(circuit, "R0", [0.0], SimulationOptions(),
                             columns)

    def test_failing_lane_retired(self):
        circuit = build_ladder()
        columns = ParameterColumns(
            circuit, [("R0", "resistance", [100.0, np.nan])])
        results = batched_dcsweeps(circuit, "VS", [0.0, 1.0],
                                   SimulationOptions(), columns)
        assert results[0] is not None
        assert results[1] is None


class TestBatchedChord:
    """jacobian_reuse="chord" rides one held batched factorization.

    The drive levels are milder than the full-Newton tests above: chord
    Newton (batched or serial -- the batch mirrors the serial contract) is
    only contractive near the solution, and the diode ladder far into
    forward conduction defeats it in both implementations alike.  Lanes
    that fail retire to ``None`` for the serial path's source stepping.
    """

    def test_chord_op_parity_with_serial(self):
        options = SimulationOptions(jacobian_reuse="chord")
        circuit = build_ladder()
        vdd = np.array([0.4, 0.6, 0.8, 1.0, 1.2])
        columns = ParameterColumns(circuit, [("VS", "dc", vdd)])
        results = batched_operating_points(circuit, options, columns)
        assert all(op is not None for op in results)
        for lane, op in enumerate(results):
            reference = serial_op(circuit, columns, lane, options)
            for key, value in reference.items():
                # Chord accepts at the Newton update tolerance while riding
                # a stale Jacobian, and the batch-wide refactor schedule is
                # not the per-lane serial one, so parity holds to the Newton
                # tolerance rather than to machine precision.
                tol = options.vntol + options.reltol * abs(value)
                assert abs(op[key] - value) <= tol

    def test_chord_mixed_behavioral_parity(self):
        options = SimulationOptions(jacobian_reuse="chord")
        circuit = build_actuator()
        gaps = np.array([1.8e-6, 2.0e-6, 2.2e-6])
        columns = ParameterColumns(circuit, [("XDCR", "d", gaps)])
        results = batched_operating_points(circuit, options, columns)
        assert all(op is not None for op in results)
        for lane, op in enumerate(results):
            reference = serial_op(circuit, columns, lane, options)
            for key in reference:
                scale = max(1.0, abs(reference[key]))
                assert abs(op[key] - reference[key]) / scale <= 1e-12

    def test_chord_holds_factorization_across_iterations_and_solves(self):
        from repro.circuit.analysis.batch import (BatchWorkspace,
                                                  batched_newton)
        from repro.circuit.mna import MNASystem

        circuit = build_ladder()
        system = MNASystem(circuit)
        columns = ParameterColumns(circuit,
                                   [("VS", "dc", np.array([0.5, 0.7, 0.9]))])
        options = SimulationOptions(jacobian_reuse="chord")
        ws = BatchWorkspace()
        with columns:
            x0 = np.zeros((3, system.size))
            x, solved, iters = batched_newton(system, x0, "op", options,
                                              columns, workspace=ws)
            assert solved.all()
            # The solve rode the held factorization with residual-only
            # assemblies after the first iteration.
            assert ws.chord_iterations > 0
            assert ws.chord_tag is not None
            before = ws.chord_iterations
            # A warm restart from the solution reuses the held factorization
            # from iteration one (same chord tag).
            x2, solved2, iters2 = batched_newton(system, x, "op", options,
                                                 columns, workspace=ws)
            assert solved2.all()
            assert ws.chord_iterations > before
            assert np.all(iters2 <= iters)

    def test_chord_hostile_lane_retired_others_solve(self):
        # Deep forward conduction defeats chord Newton (serially too); the
        # batch retires exactly that lane so the campaign's serial re-run
        # can rescue it with source stepping.
        options = SimulationOptions(jacobian_reuse="chord")
        circuit = build_ladder()
        vdd = np.array([0.6, 5.0, 1.0])
        columns = ParameterColumns(circuit, [("VS", "dc", vdd)])
        results = batched_operating_points(circuit, options, columns)
        assert results[1] is None
        assert results[0] is not None and results[2] is not None

    def test_chord_dcsweep_parity_with_serial(self):
        options = SimulationOptions(jacobian_reuse="chord")
        circuit = build_ladder()
        sweep = np.linspace(0.0, 1.5, 7)
        rscale = np.array([80.0, 100.0, 120.0])
        columns = ParameterColumns(circuit, [("R0", "resistance", rscale)])
        results = batched_dcsweeps(circuit, "VS", sweep, options, columns)
        assert all(result is not None for result in results)
        for lane, result in enumerate(results):
            columns.set_lane(lane)
            try:
                reference = DCSweepAnalysis(circuit, "VS", sweep,
                                            options).run()
            finally:
                columns.restore()
            for key in reference.keys():
                ref_col = reference.column(key)
                scale = np.maximum(1.0, np.abs(ref_col))
                assert np.all(
                    np.abs(result.column(key) - ref_col) / scale <= 1e-12)
