"""Tests for the source waveforms."""

from __future__ import annotations

import numpy as np
import pytest
from hypothesis import given, strategies as st

from repro.circuit.waveforms import (
    DC,
    Exponential,
    PieceWiseLinear,
    Pulse,
    Sine,
    Step,
    ensure_waveform,
)
from repro.errors import DeviceError


class TestDC:
    def test_constant_value_and_zero_derivative(self):
        wave = DC(3.3)
        assert wave.value(0.0) == 3.3
        assert wave.value(1e3) == 3.3
        assert wave.derivative(0.5) == 0.0
        assert wave.dc == 3.3

    def test_callable(self):
        assert DC(2.0)(5.0) == 2.0


class TestPulse:
    def make(self):
        return Pulse(v1=0.0, v2=10.0, delay=1e-3, rise=2e-3, fall=2e-3, width=5e-3)

    def test_before_delay(self):
        assert self.make().value(0.5e-3) == 0.0

    def test_mid_rise_is_half(self):
        assert self.make().value(1e-3 + 1e-3) == pytest.approx(5.0)

    def test_plateau(self):
        assert self.make().value(5e-3) == 10.0

    def test_mid_fall(self):
        wave = self.make()
        assert wave.value(1e-3 + 2e-3 + 5e-3 + 1e-3) == pytest.approx(5.0)

    def test_after_pulse_returns_to_v1(self):
        assert self.make().value(0.1) == 0.0

    def test_derivative_on_edges(self):
        wave = self.make()
        assert wave.derivative(2e-3) == pytest.approx(10.0 / 2e-3)
        assert wave.derivative(9e-3) == pytest.approx(-10.0 / 2e-3)
        assert wave.derivative(5e-3) == 0.0

    def test_breakpoints_contain_all_corners(self):
        points = self.make().breakpoints()
        for expected in (1e-3, 3e-3, 8e-3, 10e-3):
            assert any(abs(p - expected) < 1e-12 for p in points)

    def test_periodic_pulse_repeats(self):
        wave = Pulse(0.0, 1.0, delay=0.0, rise=1e-4, fall=1e-4, width=1e-3, period=5e-3)
        assert wave.value(0.5e-3) == wave.value(0.5e-3 + 5e-3)

    def test_invalid_parameters_raise(self):
        with pytest.raises(DeviceError):
            Pulse(rise=-1.0)
        with pytest.raises(DeviceError):
            Pulse(period=0.0)


class TestSine:
    def test_offset_before_delay(self):
        wave = Sine(offset=1.0, amplitude=2.0, frequency=1e3, delay=1e-3)
        assert wave.value(0.0) == pytest.approx(1.0)

    def test_amplitude_at_quarter_period(self):
        wave = Sine(amplitude=2.0, frequency=1e3)
        assert wave.value(0.25e-3) == pytest.approx(2.0, rel=1e-9)

    def test_damping_decays(self):
        wave = Sine(amplitude=1.0, frequency=1e3, damping=1e3)
        assert abs(wave.value(2.25e-3)) < 1.0

    def test_derivative_at_zero_crossing(self):
        wave = Sine(amplitude=1.0, frequency=1e3)
        assert wave.derivative(0.0) == pytest.approx(2.0 * np.pi * 1e3, rel=1e-9)

    def test_invalid_frequency(self):
        with pytest.raises(DeviceError):
            Sine(frequency=0.0)


class TestPieceWiseLinear:
    def make(self):
        return PieceWiseLinear(((0.0, 0.0), (1e-3, 5.0), (2e-3, 5.0), (3e-3, 0.0)))

    def test_interpolation(self):
        assert self.make().value(0.5e-3) == pytest.approx(2.5)

    def test_flat_extension(self):
        wave = self.make()
        assert wave.value(-1.0) == 0.0
        assert wave.value(1.0) == 0.0

    def test_derivative(self):
        assert self.make().derivative(0.5e-3) == pytest.approx(5000.0)
        assert self.make().derivative(1.5e-3) == pytest.approx(0.0)

    def test_breakpoints(self):
        assert self.make().breakpoints() == (0.0, 1e-3, 2e-3, 3e-3)

    def test_non_monotonic_times_raise(self):
        with pytest.raises(DeviceError):
            PieceWiseLinear(((0.0, 0.0), (0.0, 1.0)))

    def test_empty_raises(self):
        with pytest.raises(DeviceError):
            PieceWiseLinear(())


class TestExponentialAndStep:
    def test_exponential_limits(self):
        wave = Exponential(v1=0.0, v2=5.0, rise_delay=0.0, rise_tau=1e-3,
                           fall_delay=1.0, fall_tau=1e-3)
        assert wave.value(0.0) == pytest.approx(0.0)
        assert wave.value(20e-3) == pytest.approx(5.0, rel=1e-6)

    def test_exponential_invalid_tau(self):
        with pytest.raises(DeviceError):
            Exponential(rise_tau=0.0)

    def test_step_values(self):
        wave = Step(v1=0.0, v2=3.0, time=1e-3, ramp=1e-6)
        assert wave.value(0.0) == 0.0
        assert wave.value(2e-3) == 3.0
        assert wave.value(1e-3 + 0.5e-6) == pytest.approx(1.5)

    def test_step_breakpoints(self):
        assert Step(time=1e-3, ramp=1e-6).breakpoints() == (1e-3, 1e-3 + 1e-6)


class TestEnsureWaveform:
    def test_passthrough(self):
        wave = DC(1.0)
        assert ensure_waveform(wave) is wave

    def test_number_to_dc(self):
        assert isinstance(ensure_waveform(5), DC)
        assert ensure_waveform(5).value(0.0) == 5.0

    def test_quantity_string(self):
        assert ensure_waveform("10m").value(0.0) == pytest.approx(0.01)

    def test_invalid_type(self):
        with pytest.raises(DeviceError):
            ensure_waveform(object())

    @given(st.floats(-100, 100, allow_nan=False))
    def test_dc_derivative_always_zero(self, level):
        assert ensure_waveform(level).derivative(0.123) == 0.0
