"""Tests for the factorization-reuse policies of the Newton/AC solver core."""

from __future__ import annotations

import numpy as np
import pytest

from repro.circuit import (
    ACAnalysis,
    Circuit,
    DCSweepAnalysis,
    OperatingPointAnalysis,
    Pulse,
    SimulationOptions,
    TransientAnalysis,
)
from repro.circuit.analysis.ac import frequency_grid
from repro.circuit.analysis.results import canonical_signal_name
from repro.errors import AnalysisError


def _rc(drive=None) -> Circuit:
    circuit = Circuit("rc")
    circuit.voltage_source("V1", "in", "0",
                           drive if drive is not None else Pulse(0.0, 5.0, rise=1e-6))
    circuit.resistor("R1", "in", "out", 1e3)
    circuit.capacitor("C1", "out", "0", 1e-6)
    return circuit


def _diode_rc() -> Circuit:
    """A mildly nonlinear dynamic circuit (diode + RC)."""
    circuit = Circuit("diode-rc")
    circuit.voltage_source("V1", "in", "0", Pulse(0.0, 2.0, rise=1e-4, width=2e-3))
    circuit.resistor("R1", "in", "mid", 500.0)
    circuit.diode("D1", "mid", "out")
    circuit.resistor("R2", "out", "0", 2e3)
    circuit.capacitor("C1", "out", "0", 2e-7)
    return circuit


class TestOptionValidation:
    def test_policy_names(self):
        for policy in ("off", "auto", "chord"):
            assert SimulationOptions(jacobian_reuse=policy).jacobian_reuse == policy
        with pytest.raises(AnalysisError):
            SimulationOptions(jacobian_reuse="always")

    def test_refactor_threshold_range(self):
        with pytest.raises(AnalysisError):
            SimulationOptions(refactor_threshold=0.0)
        with pytest.raises(AnalysisError):
            SimulationOptions(refactor_threshold=1.0)


class TestAutoReuse:
    def test_auto_bit_identical_to_off_nonlinear_transient(self):
        runs = {}
        for policy in ("off", "auto"):
            result = TransientAnalysis(
                _diode_rc(), t_stop=4e-3, t_step=4e-5,
                options=SimulationOptions(jacobian_reuse=policy)).run()
            runs[policy] = result
        assert set(runs["off"].signals()) == set(runs["auto"].signals())
        for signal in runs["off"].signals():
            assert np.array_equal(runs["off"][signal], runs["auto"][signal])

    def test_linear_transient_factors_once_per_step_size(self):
        result = TransientAnalysis(
            _rc(), t_stop=5e-3, t_step=5e-5,
            options=SimulationOptions(jacobian_reuse="auto")).run()
        stats = result.statistics
        # Far fewer factorizations than Newton iterations: the fixed-step
        # portions of the run reuse one LU per step size.
        assert stats["factorizations"] < stats["newton_iterations"] / 4
        assert stats["factor_cache_hits"] > 0

    def test_linear_dc_sweep_factors_once(self):
        circuit = Circuit("divider")
        circuit.voltage_source("V1", "in", "0", 1.0)
        circuit.resistor("R1", "in", "out", 1e3)
        circuit.resistor("R2", "out", "0", 1e3)
        sweep = DCSweepAnalysis(circuit, "V1", np.linspace(0.0, 5.0, 21))
        result = sweep.run()
        np.testing.assert_allclose(result["v(out)"], sweep.values / 2.0,
                                   rtol=1e-8)


class TestChord:
    def test_chord_matches_full_newton_closely(self):
        # step_chord_reuse=False pins the historical chord contract: with a
        # refactor on every step-size change the chord trajectory follows
        # full Newton's LTE decisions almost exactly.  The (default) reuse
        # path trades that for fewer factorizations and is covered by
        # tests/circuit/test_step_chord_reuse.py.
        full = TransientAnalysis(
            _diode_rc(), t_stop=4e-3, t_step=4e-5,
            options=SimulationOptions(jacobian_reuse="off")).run()
        chord = TransientAnalysis(
            _diode_rc(), t_stop=4e-3, t_step=4e-5,
            options=SimulationOptions(jacobian_reuse="chord",
                                      step_chord_reuse=False)).run()
        probe = np.linspace(1e-4, 3.9e-3, 25)
        for signal in ("v(out)", "v(mid)"):
            reference = full.sample(signal, probe)
            scale = float(np.max(np.abs(reference)))
            # Chord iterates settle to the same waveform within the Newton
            # tolerance; the switching edge is the worst case.
            assert np.max(np.abs(chord.sample(signal, probe) - reference)) \
                <= 5e-4 * scale

    def test_chord_reuses_factorizations(self):
        chord = TransientAnalysis(
            _diode_rc(), t_stop=4e-3, t_step=4e-5,
            options=SimulationOptions(jacobian_reuse="chord")).run()
        stats = chord.statistics
        assert stats["chord_iterations"] > 0
        assert stats["factorizations"] < stats["newton_iterations"]

    def test_stall_triggers_refactor(self):
        """A pulse edge invalidates the held Jacobian of a nonlinear circuit;
        the stall detector must respond with full-Newton refactors rather
        than burning the iteration cap."""
        circuit = Circuit("hard-diode")
        circuit.voltage_source("V1", "in", "0",
                               Pulse(0.0, 5.0, rise=2e-5, width=1e-3, delay=5e-4))
        circuit.resistor("R1", "in", "mid", 100.0)
        circuit.diode("D1", "mid", "out", saturation_current=1e-14)
        circuit.resistor("R2", "out", "0", 1e4)
        circuit.capacitor("C1", "out", "0", 1e-7)
        # Historical contract (see test_chord_matches_full_newton_closely).
        chord = TransientAnalysis(
            circuit, t_stop=2e-3, t_step=2e-5,
            options=SimulationOptions(jacobian_reuse="chord",
                                      step_chord_reuse=False)).run()
        assert chord.statistics["stall_refactors"] > 0
        # And the answer still matches full Newton.
        full = TransientAnalysis(
            circuit, t_stop=2e-3, t_step=2e-5,
            options=SimulationOptions(jacobian_reuse="off")).run()
        probe = np.linspace(1e-4, 1.9e-3, 20)
        reference = full.sample("v(out)", probe)
        assert np.max(np.abs(chord.sample("v(out)", probe) - reference)) \
            <= 1e-5 * float(np.max(np.abs(reference)))


class TestACSweepCache:
    def test_cached_sweep_matches_direct(self):
        circuit = _rc(drive=1.0)
        circuit["V1"].ac = 1.0
        frequencies = frequency_grid(10.0, 1e6, 15)
        direct = ACAnalysis(circuit, frequencies,
                            SimulationOptions(jacobian_reuse="off"))
        cached = ACAnalysis(circuit, frequencies, SimulationOptions())
        reference = direct.run()
        fast = cached.run()
        assert direct.sweep_mode == "direct"
        assert cached.sweep_mode == "cached"
        for signal in reference.signals():
            ref = np.asarray(reference[signal])
            scale = float(np.max(np.abs(ref))) or 1.0
            assert np.max(np.abs(np.asarray(fast[signal]) - ref)) <= 1e-9 * scale

    def test_small_sweeps_stay_direct(self):
        circuit = _rc(drive=1.0)
        circuit["V1"].ac = 1.0
        analysis = ACAnalysis(circuit, [1e3, 2e3], SimulationOptions())
        analysis.run()
        assert analysis.sweep_mode == "direct"

    def test_behavioral_integ_circuit_uses_cache(self):
        """The transducer's integ term produces the S/(jw) block; the
        decomposition must still verify and accelerate."""
        from repro.system import build_behavioral_system

        circuit = build_behavioral_system()
        frequencies = frequency_grid(10.0, 1e5, 10)
        cached = ACAnalysis(circuit, frequencies, SimulationOptions())
        direct = ACAnalysis(circuit, frequencies,
                            SimulationOptions(jacobian_reuse="off"))
        fast = cached.run()
        reference = direct.run()
        assert cached.sweep_mode == "cached"
        for signal in reference.signals():
            ref = np.asarray(reference[signal])
            scale = float(np.max(np.abs(ref))) or 1.0
            assert np.max(np.abs(np.asarray(fast[signal]) - ref)) <= 1e-8 * scale


class TestSignalNames:
    def test_canonical_rename(self):
        assert canonical_signal_name("V1#i") == "i(V1)"
        assert canonical_signal_name("XDCR#x") == "XDCR.x"
        assert canonical_signal_name("v(out)") == "v(out)"

    def test_op_exposes_aux_unknowns(self):
        circuit = _rc(drive=2.0)
        op = OperatingPointAnalysis(circuit).run()
        assert op["i(V1)"] == pytest.approx(0.0, abs=1e-9)

    def test_ac_and_transient_share_renaming(self):
        circuit = _rc(drive=1.0)
        circuit["V1"].ac = 1.0
        ac_result = ACAnalysis(circuit, frequency_grid(10.0, 1e5, 8),
                               SimulationOptions()).run()
        tran_result = TransientAnalysis(circuit, t_stop=1e-4,
                                        t_step=1e-5).run()
        assert "i(V1)" in ac_result.signals()
        assert "i(V1)" in tran_result.signals()


class TestSingularFailurePaths:
    def test_dense_singular_mna_raises(self):
        """Two current sources in series leave the middle node floating;
        with gmin disabled the Jacobian is exactly singular."""
        from repro.circuit.analysis.op import newton_solve
        from repro.circuit.mna import MNASystem
        from repro.errors import SingularMatrixError

        circuit = Circuit("floating")
        circuit.current_source("I1", "a", "0", 1e-3)
        circuit.current_source("I2", "b", "a", 1e-3)
        options = SimulationOptions(gmin=0.0)
        system = MNASystem(circuit)
        with pytest.raises(SingularMatrixError):
            newton_solve(system, np.zeros(system.size), "op", 0.0, None,
                         options)

    def test_sparse_singular_mna_raises(self):
        from repro.circuit.analysis.op import newton_solve
        from repro.circuit.mna import MNASystem
        from repro.errors import SingularMatrixError

        circuit = Circuit("floating-sparse")
        circuit.current_source("I1", "a", "0", 1e-3)
        circuit.current_source("I2", "b", "a", 1e-3)
        options = SimulationOptions(gmin=0.0, linear_solver="sparse")
        system = MNASystem(circuit)
        with pytest.raises(SingularMatrixError):
            newton_solve(system, np.zeros(system.size), "op", 0.0, None,
                         options)

    def test_op_analysis_gmin_rescues_floating_node(self):
        """The default gmin keeps the same circuit solvable (the historical
        fallback behaviour must survive the linalg rewiring)."""
        circuit = Circuit("floating-gmin")
        circuit.current_source("I1", "a", "0", 1e-3)
        circuit.resistor("R1", "a", "b", 1e3)
        op = OperatingPointAnalysis(circuit).run()
        assert np.isfinite(op.voltage("b"))

    def test_cg_newton_falls_back_to_direct(self):
        """linear_solver='cg' on an MNA system with a voltage source (zero
        diagonal in the aux row, so no Jacobi preconditioner exists) must
        fall back to the direct solve instead of failing.  Historically this
        configuration raised SingularMatrixError."""
        circuit = Circuit("cg-fallback")
        circuit.voltage_source("V1", "in", "0", 5.0)
        circuit.resistor("Rin", "in", "n0", 100.0)
        for i in range(6):
            circuit.resistor(f"R{i}", f"n{i}", f"n{i + 1}", 100.0)
        circuit.resistor("Rg", "n6", "0", 100.0)
        options = SimulationOptions(linear_solver="cg")
        cg_op = OperatingPointAnalysis(circuit, options).run()
        dense_op = OperatingPointAnalysis(
            circuit, SimulationOptions(linear_solver="dense")).run()
        assert cg_op.voltage("n3") == pytest.approx(dense_op.voltage("n3"),
                                                    rel=1e-8)
