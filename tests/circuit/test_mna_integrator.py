"""Tests for the Integrator state bookkeeping and the stamp contexts."""

from __future__ import annotations

import numpy as np
import pytest

from repro.ad import seed
from repro.circuit import Circuit, SimulationOptions
from repro.circuit.mna import ACStampContext, Integrator, MNASystem, StampContext
from repro.errors import AnalysisError


class TestIntegrator:
    def test_requires_positive_step(self):
        integrator = Integrator()
        with pytest.raises(AnalysisError):
            integrator.set_step(0.0)
        with pytest.raises(AnalysisError):
            integrator.coefficient()

    def test_unknown_method_rejected(self):
        with pytest.raises(AnalysisError):
            Integrator("rk4")

    def test_backward_euler_derivative(self):
        integrator = Integrator(Integrator.BACKWARD_EULER)
        integrator.set_step(0.1)
        integrator.set_initial("x", 1.0)
        assert integrator.differentiate("x", 2.0) == pytest.approx(10.0)
        assert integrator.coefficient() == pytest.approx(10.0)

    def test_trapezoidal_derivative_uses_history(self):
        integrator = Integrator(Integrator.TRAPEZOIDAL)
        integrator.set_step(0.1)
        integrator.set_initial("x", 1.0, derivative=4.0)
        # 2/h (x - x_old) - dxdt_old
        assert integrator.differentiate("x", 2.0) == pytest.approx(20.0 - 4.0)

    def test_integral_accumulates_after_commit(self):
        integrator = Integrator(Integrator.BACKWARD_EULER)
        integrator.set_step(0.5)
        value = integrator.integrate("q", 2.0, initial=1.0)
        assert value == pytest.approx(2.0)
        integrator.commit()
        value = integrator.integrate("q", 2.0, initial=1.0)
        assert value == pytest.approx(3.0)

    def test_discard_drops_pending(self):
        integrator = Integrator(Integrator.BACKWARD_EULER)
        integrator.set_step(0.5)
        integrator.integrate("q", 2.0, initial=0.0)
        integrator.discard()
        integrator.commit()
        assert integrator.previous_integral("q", default=-1.0) == -1.0

    def test_priming_freezes_dynamics_but_registers_states(self):
        integrator = Integrator(Integrator.TRAPEZOIDAL)
        integrator.priming = True
        integrator.set_step(1e-3)
        assert integrator.coefficient() == 0.0
        assert integrator.differentiate("x", 5.0) == pytest.approx(0.0)
        assert integrator.integrate("q", 7.0, initial=2.0) == pytest.approx(2.0)
        integrator.commit()
        integrator.priming = False
        # After priming, the committed value of x is 5.0 so a repeat gives 0 slope.
        assert integrator.differentiate("x", 5.0) == pytest.approx(0.0)

    def test_dual_values_propagate_through_operators(self):
        integrator = Integrator(Integrator.BACKWARD_EULER)
        integrator.set_step(0.1)
        integrator.set_initial("x", 0.0)
        result = integrator.differentiate("x", seed(1.0))
        assert result.value == pytest.approx(10.0)
        assert result.partial() == pytest.approx(10.0)

    def test_state_snapshot(self):
        integrator = Integrator()
        integrator.set_step(1.0)
        integrator.integrate("q", 3.0)
        integrator.commit()
        assert integrator.state_snapshot() == {"q": pytest.approx(3.0)}


def _simple_system():
    circuit = Circuit()
    circuit.voltage_source("V1", "a", "0", 1.0)
    circuit.resistor("R1", "a", "b", 1e3)
    circuit.capacitor("C1", "b", "0", 1e-6)
    return circuit, MNASystem(circuit)


class TestStampContext:
    def test_shape_validation(self):
        circuit, system = _simple_system()
        with pytest.raises(AnalysisError):
            StampContext(system, np.zeros(system.size + 1), "op", 0.0, None,
                         SimulationOptions())

    def test_ground_rows_ignored(self):
        circuit, system = _simple_system()
        ctx = StampContext(system, np.zeros(system.size), "op", 0.0, None,
                           SimulationOptions())
        ctx.add_jac(-1, 0, 5.0)
        ctx.add_res(-1, 5.0)
        assert not np.any(ctx.jac) and not np.any(ctx.res)

    def test_across_and_aux_accessors(self):
        circuit, system = _simple_system()
        x = np.arange(system.size, dtype=float)
        ctx = StampContext(system, x, "op", 0.0, None, SimulationOptions())
        node_a = circuit.node("a")
        assert ctx.across(node_a) == x[system.index_of(node_a)]
        assert ctx.across(circuit.ground) == 0.0
        assert ctx.aux_value("V1", "i") == x[system.aux_index("V1", "i")]

    def test_gmin_applied_to_node_diagonal_only(self):
        circuit, system = _simple_system()
        ctx = StampContext(system, np.ones(system.size), "op", 0.0, None,
                           SimulationOptions())
        ctx.apply_gmin(1e-9)
        for i in range(system.num_nodes):
            assert ctx.jac[i, i] == pytest.approx(1e-9)
        aux_row = system.aux_index("V1", "i")
        assert ctx.jac[aux_row, aux_row] == 0.0

    def test_dc_flags_and_operators(self):
        circuit, system = _simple_system()
        ctx = StampContext(system, np.zeros(system.size), "op", 0.0, None,
                           SimulationOptions())
        assert ctx.is_dc and not ctx.is_transient
        assert ctx.ddt_coefficient() == 0.0
        assert ctx.ddt("key", 3.0) == 0.0
        assert ctx.integ("key", 3.0, initial=1.5) == pytest.approx(1.5)


class TestACStampContext:
    def test_complex_assembly_and_ground_handling(self):
        circuit, system = _simple_system()
        ctx = ACStampContext(system, np.zeros(system.size), omega=2.0 * np.pi * 1e3,
                             integrator_states={"s": 2.0}, options=SimulationOptions())
        ctx.add(-1, 0, 1.0)
        ctx.add_rhs(-1, 1.0)
        assert not np.any(ctx.matrix) and not np.any(ctx.rhs)
        ctx.add(0, 0, 1j)
        assert ctx.matrix[0, 0] == 1j
        assert ctx.op_state("s") == 2.0
        assert ctx.op_state("missing", 7.0) == 7.0
        assert ctx.op_across(circuit.ground) == 0.0
