"""AC small-signal sensitivities: exact adjoint solves vs central FD."""

from __future__ import annotations

import numpy as np
import pytest

from repro.circuit import ACAnalysis, Circuit, SimulationOptions
from repro.circuit.analysis.sensitivity import resolve_parameters
from repro.circuit.devices.mechanical import Damper, Mass, Spring
from repro.circuit.devices.passive import Resistor
from repro.circuit.devices.sources import VoltageSource
from repro.transducers import TransverseElectrostaticTransducer

OPTIONS = SimulationOptions(reltol=1e-9, abstol=1e-15, vntol=1e-12)

FREQUENCIES = [1e3, 1.1e4, 4e4]
PARAMS = ("V1.dc", "R1.resistance", "XT.A", "XT.d", "K1.stiffness", "M1.mass")
OUTPUTS = ("v(nm)", "v(n2)")


def build_circuit() -> Circuit:
    """AC-driven electrostatic transducer with a spring-mass-damper load."""
    circuit = Circuit()
    n1 = circuit.electrical_node("n1")
    n2 = circuit.electrical_node("n2")
    ground = circuit.ground
    circuit.add(VoltageSource("V1", n1, ground, 5.0, ac=1.0))
    circuit.add(Resistor("R1", n1, n2, 1e4))
    nm = circuit.mechanical_node("nm")
    transducer = TransverseElectrostaticTransducer(
        area=4e-8, gap=2e-6, gap_orientation="closing")
    transducer.add_to_circuit(circuit, "XT", "n2", "0", "nm", "0",
                              closed_form=True)
    circuit.add(Mass("M1", nm, ground, 1e-9))
    circuit.add(Spring("K1", nm, ground, 5.0))
    circuit.add(Damper("B1", nm, ground, 1e-6))
    return circuit


def ac_outputs_at(offsets: np.ndarray) -> np.ndarray:
    circuit = build_circuit()
    refs = resolve_parameters(circuit, PARAMS)
    for ref, offset in zip(refs, offsets):
        ref.device.set_parameter(ref.parameter, ref.value + offset)
    result = ACAnalysis(circuit, FREQUENCIES, OPTIONS).run()
    return np.array([[result[name][f] for name in OUTPUTS]
                     for f in range(len(FREQUENCIES))])


@pytest.fixture(scope="module")
def fd_reference() -> np.ndarray:
    refs = resolve_parameters(build_circuit(), PARAMS)
    matrix = np.zeros((len(FREQUENCIES), len(OUTPUTS), len(PARAMS)),
                      dtype=complex)
    for k, ref in enumerate(refs):
        step = 1e-5 * abs(ref.value)
        offsets = np.zeros(len(PARAMS))
        offsets[k] = step
        matrix[:, :, k] = (ac_outputs_at(offsets) - ac_outputs_at(-offsets)) \
            / (2.0 * step)
    return matrix


@pytest.fixture(scope="module")
def adjoint():
    analysis = ACAnalysis(build_circuit(), FREQUENCIES, OPTIONS)
    return analysis.sensitivities(PARAMS, OUTPUTS, method="adjoint")


class TestACSensitivities:
    def test_matches_central_fd(self, adjoint, fd_reference):
        scale = np.abs(fd_reference).max(axis=2, keepdims=True)
        np.testing.assert_allclose(adjoint.matrix, fd_reference,
                                   rtol=2e-4, atol=2e-4 * scale.max())

    def test_direct_agrees_with_adjoint(self, adjoint):
        direct = ACAnalysis(build_circuit(), FREQUENCIES, OPTIONS) \
            .sensitivities(PARAMS, OUTPUTS, method="direct")
        np.testing.assert_allclose(direct.matrix, adjoint.matrix,
                                   rtol=1e-9, atol=1e-12)
        assert direct.method == "direct"

    def test_values_match_the_plain_sweep(self, adjoint):
        sweep = ACAnalysis(build_circuit(), FREQUENCIES, OPTIONS).run()
        for m, name in enumerate(OUTPUTS):
            np.testing.assert_allclose(
                adjoint.values[:, m],
                np.asarray(sweep[name], dtype=complex), rtol=1e-9)

    def test_solve_accounting(self, adjoint):
        stats = adjoint.stats
        # One op Newton solve; per frequency one factorization and one
        # transposed back-substitution per output.
        assert stats["newton_solves"] == 1
        assert stats["adjoint_solves"] == len(FREQUENCIES) * len(OUTPUTS)
        # dx0/dp chain: one direct back-substitution per parameter, total.
        assert stats["direct_solves"] == len(PARAMS)

    def test_magnitude_derivative_matches_fd(self, adjoint, fd_reference):
        magnitudes = np.abs(adjoint.values)
        expected = np.real(np.conj(adjoint.values)[:, :, None]
                           * fd_reference) / magnitudes[:, :, None]
        computed = adjoint.magnitude_matrix()
        scale = np.abs(expected).max()
        np.testing.assert_allclose(computed, expected, rtol=2e-4,
                                   atol=2e-4 * scale)

    def test_stiffness_sensitivity_flips_sign_across_resonance(self, adjoint):
        # Below the mechanical resonance a stiffer spring lowers |v(nm)|;
        # the sign of d|y|/dk flips across it (classic detuning behaviour).
        trace = adjoint.magnitude_derivative("v(nm)", "K1.stiffness")
        assert trace[0] * trace[-1] < 0.0


class TestCachedAssembly:
    """The once-per-parameter dG/dC/dS decomposition of the dres sweep."""

    GRID = np.logspace(3.0, 6.0, 13)

    def test_cached_engages_and_matches_direct(self):
        circuit = build_circuit()
        cached = ACAnalysis(circuit, self.GRID, OPTIONS).sensitivities(
            PARAMS, OUTPUTS)
        direct = ACAnalysis(
            circuit, self.GRID,
            OPTIONS.with_(jacobian_reuse="off")).sensitivities(
                PARAMS, OUTPUTS)
        assert cached.stats["assembly_mode"] == "cached"
        assert direct.stats["assembly_mode"] == "direct"
        scale = np.max(np.abs(direct.matrix))
        assert np.max(np.abs(cached.matrix - direct.matrix)) <= 1e-9 * scale
        np.testing.assert_allclose(cached.values, direct.values,
                                   rtol=1e-12, atol=0.0)

    def test_short_sweeps_stay_direct(self):
        circuit = build_circuit()
        result = ACAnalysis(circuit, FREQUENCIES, OPTIONS).sensitivities(
            PARAMS, OUTPUTS)
        # Fewer than four frequencies: the probe overhead cannot pay off.
        assert result.stats["assembly_mode"] == "direct"
