"""Tests for the Circuit netlist container and builder helpers."""

from __future__ import annotations

import pytest

from repro.circuit import Circuit
from repro.circuit.devices import (
    CCCS,
    CCVS,
    Capacitor,
    CurrentSource,
    Damper,
    Diode,
    ForceSource,
    Inductor,
    Mass,
    Resistor,
    Spring,
    VCCS,
    VCVS,
    VoltageControlledSwitch,
    VoltageSource,
)
from repro.errors import NetlistError
from repro.natures import ELECTRICAL, MECHANICAL_TRANSLATION


class TestNodes:
    def test_ground_aliases_share_one_node(self):
        circuit = Circuit()
        assert circuit.node("0") is circuit.ground
        assert circuit.node("gnd") is circuit.ground
        assert circuit.node("GROUND") is circuit.ground

    def test_node_created_once(self):
        circuit = Circuit()
        assert circuit.node("a") is circuit.node("a")

    def test_node_nature_checked(self):
        circuit = Circuit()
        circuit.node("a", ELECTRICAL)
        with pytest.raises(NetlistError):
            circuit.node("a", MECHANICAL_TRANSLATION)

    def test_ground_ignores_requested_nature(self):
        circuit = Circuit()
        assert circuit.node("0", MECHANICAL_TRANSLATION) is circuit.ground

    def test_invalid_node_name(self):
        with pytest.raises(NetlistError):
            Circuit().node("")

    def test_nodes_listing_excludes_ground(self):
        circuit = Circuit()
        circuit.resistor("R1", "a", "b", 1.0)
        names = [node.name for node in circuit.nodes]
        assert names == ["a", "b"]

    def test_has_node(self):
        circuit = Circuit()
        circuit.node("x")
        assert circuit.has_node("x") and circuit.has_node("0")
        assert not circuit.has_node("y")


class TestDeviceManagement:
    def test_duplicate_names_rejected(self):
        circuit = Circuit()
        circuit.resistor("R1", "a", "0", 1.0)
        with pytest.raises(NetlistError):
            circuit.resistor("R1", "b", "0", 1.0)

    def test_lookup_and_iteration(self):
        circuit = Circuit()
        r = circuit.resistor("R1", "a", "0", 1.0)
        assert circuit["R1"] is r
        assert "R1" in circuit
        assert list(circuit) == [r]
        assert len(circuit) == 1

    def test_unknown_device_lookup(self):
        with pytest.raises(NetlistError):
            Circuit()["nope"]

    def test_remove(self):
        circuit = Circuit()
        circuit.resistor("R1", "a", "0", 1.0)
        circuit.remove("R1")
        assert "R1" not in circuit
        with pytest.raises(NetlistError):
            circuit.remove("R1")

    def test_validate_rejects_dangling_node(self):
        circuit = Circuit()
        circuit.node("floating")
        circuit.resistor("R1", "a", "0", 1.0)
        with pytest.raises(NetlistError):
            circuit.validate()

    def test_summary_lists_devices(self):
        circuit = Circuit("my system")
        circuit.resistor("R1", "a", "0", "1k")
        text = circuit.summary()
        assert "my system" in text and "R1" in text


class TestBuilderHelpers:
    def test_electrical_builders_types_and_values(self):
        circuit = Circuit()
        assert isinstance(circuit.resistor("R1", "a", "0", "1k"), Resistor)
        assert circuit["R1"].resistance == 1000.0
        assert isinstance(circuit.capacitor("C1", "a", "0", "1u"), Capacitor)
        assert circuit["C1"].capacitance == pytest.approx(1e-6)
        assert isinstance(circuit.inductor("L1", "a", "b", "10m"), Inductor)
        assert isinstance(circuit.voltage_source("V1", "b", "0", 5.0), VoltageSource)
        assert isinstance(circuit.current_source("I1", "a", "0", 1e-3), CurrentSource)
        assert isinstance(circuit.diode("D1", "a", "0"), Diode)

    def test_controlled_source_builders(self):
        circuit = Circuit()
        circuit.voltage_source("V1", "in", "0", 1.0)
        assert isinstance(circuit.vccs("G1", "out", "0", "in", "0", 1e-3), VCCS)
        assert isinstance(circuit.vcvs("E1", "e", "0", "in", "0", 2.0), VCVS)
        assert isinstance(circuit.cccs("F1", "f", "0", "V1", 3.0), CCCS)
        assert isinstance(circuit.ccvs("H1", "h", "0", "V1", 10.0), CCVS)

    def test_switch_builder(self):
        circuit = Circuit()
        assert isinstance(circuit.switch("S1", "a", "0", "c", "0", threshold=1.0),
                          VoltageControlledSwitch)

    def test_mechanical_builders_use_mechanical_nature(self):
        circuit = Circuit()
        assert isinstance(circuit.mass("M1", "m", "1e-4"), Mass)
        assert isinstance(circuit.spring("K1", "m", "0", 200.0), Spring)
        assert isinstance(circuit.damper("D1", "m", "0", 0.04), Damper)
        assert isinstance(circuit.force_source("F1", "m", "0", 1.0), ForceSource)
        assert circuit.mechanical_node("m").nature is MECHANICAL_TRANSLATION

    def test_mixing_natures_on_one_node_rejected(self):
        circuit = Circuit()
        circuit.resistor("R1", "a", "0", 1.0)
        with pytest.raises(NetlistError):
            circuit.mass("M1", "a", 1e-4)
