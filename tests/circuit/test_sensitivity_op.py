"""Operating-point / DC-sweep sensitivities: adjoint vs direct vs central FD.

The headline acceptance pin lives here: adjoint gradients of an op-point
output with respect to 7 device/geometry parameters match central finite
differences to ``rtol <= 1e-5`` while performing **exactly one forward
Newton solve and one transposed back-substitution** (counted through the
solver instrumentation).
"""

from __future__ import annotations

import numpy as np
import pytest

from repro.ad import exp
from repro.circuit import (Circuit, CircuitSensitivityEvaluator,
                           OperatingPointAnalysis, SimulationOptions)
from repro.circuit.analysis.dcsweep import DCSweepAnalysis
from repro.circuit.analysis.sensitivity import resolve_parameters
from repro.circuit.devices.behavioral import BehavioralDevice, Port
from repro.circuit.devices.mechanical import Damper
from repro.circuit.devices.nonlinear import Diode
from repro.circuit.devices.passive import Resistor
from repro.circuit.devices.sources import VoltageSource
from repro.errors import SensitivityError
from repro.natures import ELECTRICAL
from repro.transducers import TransverseElectrostaticTransducer

#: Tight tolerances so Newton convergence noise sits far below the FD
#: cross-check tolerance.
OPTIONS = SimulationOptions(reltol=1e-9, abstol=1e-15, vntol=1e-12)

#: The seven tunables of the acceptance circuit -- electrical, nonlinear,
#: transducer geometry and mechanical parameters in one gradient.
PARAMS = ("V1.dc", "R1.resistance", "D1.saturation_current",
          "XT.A", "XT.d", "XT.er", "B1.damping")
OUTPUTS = ("v(n2)", "v(nm)")


def build_acceptance_circuit(closed_form: bool = True) -> Circuit:
    """Nonlinear divider + biased electrostatic transducer + damper."""
    circuit = Circuit()
    n1 = circuit.electrical_node("n1")
    n2 = circuit.electrical_node("n2")
    ground = circuit.ground
    circuit.add(VoltageSource("V1", n1, ground, 5.0))
    circuit.add(Resistor("R1", n1, n2, 1e3))
    circuit.add(Diode("D1", n2, ground, 1e-12))
    circuit.mechanical_node("nm")
    transducer = TransverseElectrostaticTransducer(
        area=1e-8, gap=2e-6, gap_orientation="closing")
    transducer.add_to_circuit(circuit, "XT", "n2", "0", "nm", "0",
                              closed_form=closed_form)
    circuit.add(Damper("B1", circuit.mechanical_node("nm"), ground, 1e-4))
    return circuit


def op_outputs_at(offsets: np.ndarray) -> np.ndarray:
    """Rebuild, offset the parameters, and solve the op (FD reference)."""
    circuit = build_acceptance_circuit()
    refs = resolve_parameters(circuit, PARAMS)
    for ref, offset in zip(refs, offsets):
        ref.device.set_parameter(ref.parameter, ref.value + offset)
    op = OperatingPointAnalysis(circuit, OPTIONS).run()
    return np.array([op[name] for name in OUTPUTS])


def central_fd_matrix() -> np.ndarray:
    refs = resolve_parameters(build_acceptance_circuit(), PARAMS)
    matrix = np.zeros((len(OUTPUTS), len(PARAMS)))
    for k, ref in enumerate(refs):
        step = 1e-5 * abs(ref.value)
        offsets = np.zeros(len(PARAMS))
        offsets[k] = step
        matrix[:, k] = (op_outputs_at(offsets) - op_outputs_at(-offsets)) \
            / (2.0 * step)
    return matrix


class TestOperatingPointAcceptance:
    def test_adjoint_matches_central_fd_with_minimal_solves(self):
        analysis = OperatingPointAnalysis(build_acceptance_circuit(), OPTIONS)
        result = analysis.sensitivities(PARAMS, ["v(nm)"], method="adjoint")
        # --- solve accounting: 1 forward Newton solve + 1 transpose solve.
        assert result.stats["newton_solves"] == 1
        assert result.stats["adjoint_solves"] == 1
        assert result.stats["direct_solves"] == 0
        # --- exactness: every parameter of the 7-wide gradient within 1e-5.
        reference = central_fd_matrix()[1]
        np.testing.assert_allclose(result.matrix[0], reference, rtol=1e-5)
        assert result.method == "adjoint"
        assert result.params == PARAMS

    def test_direct_and_adjoint_agree_exactly(self):
        analysis = OperatingPointAnalysis(build_acceptance_circuit(), OPTIONS)
        operating_point = analysis.run()
        adjoint = analysis.sensitivities(PARAMS, OUTPUTS, method="adjoint",
                                         operating_point=operating_point)
        direct = analysis.sensitivities(PARAMS, OUTPUTS, method="direct",
                                        operating_point=operating_point)
        np.testing.assert_allclose(adjoint.matrix, direct.matrix,
                                   rtol=1e-12, atol=1e-30)
        # Reusing a precomputed operating point skips the Newton solve.
        assert adjoint.stats["newton_solves"] == 0
        assert direct.stats["direct_solves"] == len(PARAMS)

    def test_full_matrix_matches_central_fd(self):
        analysis = OperatingPointAnalysis(build_acceptance_circuit(), OPTIONS)
        result = analysis.sensitivities(PARAMS, OUTPUTS)
        reference = central_fd_matrix()
        scale = np.abs(reference).max(axis=1, keepdims=True)
        np.testing.assert_allclose(result.matrix, reference,
                                   rtol=1e-5, atol=1e-6 * scale.max())

    def test_values_are_the_op_solution(self):
        analysis = OperatingPointAnalysis(build_acceptance_circuit(), OPTIONS)
        operating_point = analysis.run()
        result = analysis.sensitivities(PARAMS, OUTPUTS,
                                        operating_point=operating_point)
        for m, name in enumerate(OUTPUTS):
            assert result.values[m] == pytest.approx(operating_point[name])

    def test_auto_picks_adjoint_for_few_outputs(self):
        analysis = OperatingPointAnalysis(build_acceptance_circuit(), OPTIONS)
        result = analysis.sensitivities(PARAMS, ["v(nm)"], method="auto")
        assert result.method == "adjoint"


class TestBehavioralParameterSeeding:
    def _diode_circuit(self) -> Circuit:
        circuit = Circuit()
        n1 = circuit.electrical_node("n1")
        n2 = circuit.electrical_node("n2")
        ground = circuit.ground
        circuit.add(VoltageSource("V1", n1, ground, 2.0))
        circuit.add(Resistor("R1", n1, n2, 1e3))

        def behavior(ctx):
            v = ctx.across("elec")
            ctx.contribute("elec",
                           ctx.param("isat") * (exp(v / ctx.param("vt")) - 1.0))

        circuit.add(BehavioralDevice(
            "DB", [Port.make("elec", n2, ground, ELECTRICAL)], behavior,
            params={"isat": 1e-9, "vt": 0.05}))
        return circuit

    def test_params_dict_sensitivities(self):
        circuit = self._diode_circuit()
        analysis = OperatingPointAnalysis(circuit, OPTIONS)
        result = analysis.sensitivities(["DB.isat", "DB.vt", "R1.resistance"],
                                        ["v(n2)"])

        def solve(isat, vt, resistance):
            c2 = self._diode_circuit()
            c2["DB"].set_parameter("isat", isat)
            c2["DB"].set_parameter("vt", vt)
            c2["R1"].set_parameter("resistance", resistance)
            return OperatingPointAnalysis(c2, OPTIONS).run()["v(n2)"]

        base = (1e-9, 0.05, 1e3)
        for k, name in enumerate(("isat", "vt", "resistance")):
            step = 1e-6 * base[k]
            up = list(base)
            up[k] += step
            down = list(base)
            down[k] -= step
            fd = (solve(*up) - solve(*down)) / (2.0 * step)
            assert result.matrix[0, k] == pytest.approx(fd, rel=1e-5)

    def test_energy_method_transducer_gets_helpful_error(self):
        circuit = build_acceptance_circuit(closed_form=False)
        analysis = OperatingPointAnalysis(circuit, OPTIONS)
        with pytest.raises(SensitivityError, match="closed_form=True"):
            analysis.sensitivities(["XT.A"], ["v(nm)"])


class TestParameterResolution:
    def test_unknown_device(self):
        analysis = OperatingPointAnalysis(build_acceptance_circuit(), OPTIONS)
        with pytest.raises(SensitivityError, match="unknown device"):
            analysis.sensitivities(["nosuch.resistance"], ["v(n2)"])

    def test_unknown_parameter_lists_available(self):
        analysis = OperatingPointAnalysis(build_acceptance_circuit(), OPTIONS)
        with pytest.raises(SensitivityError, match="resistance"):
            analysis.sensitivities(["R1.conductance"], ["v(n2)"])

    def test_unknown_output_lists_available(self):
        analysis = OperatingPointAnalysis(build_acceptance_circuit(), OPTIONS)
        with pytest.raises(SensitivityError, match="v\\(n2\\)"):
            analysis.sensitivities(PARAMS, ["v(bogus)"])

    def test_duplicate_parameters_rejected(self):
        analysis = OperatingPointAnalysis(build_acceptance_circuit(), OPTIONS)
        with pytest.raises(SensitivityError, match="duplicate"):
            analysis.sensitivities(["R1.resistance", "R1.resistance"],
                                   ["v(n2)"])

    def test_seeding_restores_plain_parameters(self):
        circuit = build_acceptance_circuit()
        analysis = OperatingPointAnalysis(circuit, OPTIONS)
        analysis.sensitivities(PARAMS, OUTPUTS)
        for ref in resolve_parameters(circuit, PARAMS):
            assert isinstance(ref.device.get_parameter(ref.parameter), float)


class TestDCSweepSensitivities:
    def test_divider_sweep_matches_closed_form(self):
        circuit = Circuit()
        n1 = circuit.electrical_node("n1")
        n2 = circuit.electrical_node("n2")
        ground = circuit.ground
        circuit.add(VoltageSource("V1", n1, ground, 1.0))
        circuit.add(Resistor("R1", n1, n2, 1e3))
        circuit.add(Resistor("R2", n2, ground, 3e3))
        values = [1.0, 2.0, 4.0]
        analysis = DCSweepAnalysis(circuit, "V1", values, options=OPTIONS)
        sweep = analysis.sensitivities(["R1.resistance", "R2.resistance"],
                                       ["v(n2)"])
        # v(n2) = V * R2 / (R1 + R2): closed-form partials per sweep value.
        r1, r2 = 1e3, 3e3
        for i, v in enumerate(values):
            d_r1 = -v * r2 / (r1 + r2) ** 2
            d_r2 = v * r1 / (r1 + r2) ** 2
            assert sweep.matrix[i, 0, 0] == pytest.approx(d_r1, rel=1e-6)
            assert sweep.matrix[i, 0, 1] == pytest.approx(d_r2, rel=1e-6)
            assert sweep.values[i, 0] == pytest.approx(v * r2 / (r1 + r2),
                                                       rel=1e-6)
        assert sweep.derivative("v(n2)", "R2.resistance")[2] == \
            pytest.approx(4.0 * r1 / (r1 + r2) ** 2, rel=1e-6)
        # A linear circuit factors once for the whole sweep.
        assert sweep.stats["factorizations"] == 1
        assert sweep.stats["newton_solves"] == len(values)
        # The sweep leaves the source waveform restored.
        assert circuit["V1"].waveform.level == 1.0

    def test_swept_source_dc_sensitivity_matches_transfer(self):
        circuit = Circuit()
        n1 = circuit.electrical_node("n1")
        n2 = circuit.electrical_node("n2")
        ground = circuit.ground
        circuit.add(VoltageSource("V1", n1, ground, 1.0))
        circuit.add(Resistor("R1", n1, n2, 1e3))
        circuit.add(Resistor("R2", n2, ground, 3e3))
        analysis = DCSweepAnalysis(circuit, "V1", [0.5, 2.5], options=OPTIONS)
        sweep = analysis.sensitivities(["V1.dc"], ["v(n2)"])
        np.testing.assert_allclose(sweep.matrix[:, 0, 0], 0.75, rtol=1e-6)


class TestCircuitSensitivityEvaluator:
    def test_protocol_and_plain_call_agree(self):
        evaluator = CircuitSensitivityEvaluator(
            _build_divider, {"rtop": "R1.resistance", "rbot": "R2.resistance"},
            outputs=("v(out)",), options=OPTIONS)
        point = {"rtop": 2e3, "rbot": 6e3}
        plain = evaluator(point)
        values, gradients = evaluator.evaluate_with_gradient(point)
        assert plain == pytest.approx(values)
        assert values["v(out)"] == pytest.approx(5.0 * 6e3 / 8e3, rel=1e-6)
        assert gradients["v(out)"]["rtop"] == \
            pytest.approx(-5.0 * 6e3 / 8e3 ** 2, rel=1e-7)
        assert gradients["v(out)"]["rbot"] == \
            pytest.approx(5.0 * 2e3 / 8e3 ** 2, rel=1e-7)

    def test_cache_payload_is_stable(self):
        evaluator = CircuitSensitivityEvaluator(
            _build_divider, {"rtop": "R1.resistance"}, outputs=("v(out)",))
        payload = evaluator.cache_payload()
        assert payload["build"].endswith("_build_divider")
        assert payload["param_map"] == {"rtop": "R1.resistance"}


def _build_divider(config) -> Circuit:
    circuit = Circuit()
    n1 = circuit.electrical_node("in")
    n2 = circuit.electrical_node("out")
    circuit.add(VoltageSource("V1", n1, circuit.ground, 5.0))
    circuit.add(Resistor("R1", n1, n2, 1e3))
    circuit.add(Resistor("R2", n2, circuit.ground, 1e3))
    return circuit
