"""Chord factorization reuse across transient step-size changes.

The LTE controller rejects a step by shrinking ``h`` (and re-grows it after
smooth stretches); before this feature a chord run refactored on every such
change even though only the companion conductances moved.  The reuse is
guarded by the existing stall detector, so accuracy is bounded by the same
chord contract as before.
"""

from __future__ import annotations

import numpy as np
import pytest

from repro.circuit import Circuit, Pulse, SimulationOptions, TransientAnalysis
from repro.circuit.analysis.op import NewtonWorkspace, _step_only_change


def _rc_pulse_circuit() -> Circuit:
    circuit = Circuit("rc pulse")
    circuit.voltage_source("VS", "in", "0",
                           Pulse(0.0, 5.0, rise=2e-5, width=4e-4, delay=1e-5))
    circuit.resistor("R1", "in", "out", 1e3)
    circuit.capacitor("C1", "out", "0", 1e-7)
    circuit.resistor("R2", "out", "0", 1e4)
    return circuit


def _run(reuse: str):
    options = SimulationOptions(jacobian_reuse=reuse)
    return TransientAnalysis(_rc_pulse_circuit(), t_stop=1e-3, t_step=1e-5,
                             options=options).run()


class TestStepChordReuse:
    def test_tag_compatibility_rules(self):
        base = ("tran", 1e-6, 1.0, 3)
        assert _step_only_change(base, ("tran", 5e-7, 1.0, 3))
        assert not _step_only_change(base, base)  # equal tags: normal chord
        assert not _step_only_change(None, base)
        assert not _step_only_change(("op", None, 1.0, 3), ("op", None, 1.0, 3))
        assert not _step_only_change(base, ("tran", 5e-7, 0.5, 3))  # scale
        assert not _step_only_change(base, ("tran", 5e-7, 1.0, 4))  # structure
        assert not _step_only_change(("tran", None, 1.0, 3),
                                     ("tran", 1e-6, 1.0, 3))  # priming

    def test_chord_reuses_factorization_across_step_changes(self):
        result = _run("chord")
        stats = result.statistics
        assert stats["step_chord_reuses"] > 0
        # Step changes no longer force a refactor each: strictly fewer
        # factorizations than step-size changes + 1 would historically need.
        assert stats["factorizations"] < stats["step_chord_reuses"] + \
            stats["accepted"]

    def test_chord_matches_full_newton_waveform(self):
        chord = _run("chord")
        reference = _run("off")
        v_chord = chord.signal("v(out)")
        v_ref = reference.signal("v(out)")
        # Time grids may differ slightly (step control interacts with the
        # Newton path); compare on the common interpolated grid.  Chord
        # accepts residual-stale solutions by design, so the contract is
        # "within a few times reltol", not bit-identical.
        grid = np.linspace(0.0, 1e-3, 200)
        a = np.interp(grid, chord.time, v_chord)
        b = np.interp(grid, reference.time, v_ref)
        scale = np.max(np.abs(b))
        assert np.max(np.abs(a - b)) <= 5e-3 * scale

    def test_off_mode_has_no_step_reuses(self):
        stats = _run("off").statistics
        assert stats["step_chord_reuses"] == 0

    def test_workspace_statistics_expose_counter(self):
        workspace = NewtonWorkspace(SimulationOptions())
        assert workspace.statistics()["step_chord_reuses"] == 0


class TestNonlinearStepChord:
    def test_nonlinear_transient_still_converges_and_matches(self):
        def build():
            circuit = Circuit("nl")
            circuit.voltage_source("VS", "in", "0",
                                   Pulse(0.0, 1.0, rise=5e-5, width=3e-4))
            circuit.resistor("R1", "in", "d", 100.0)
            circuit.diode("D1", "d", "0")
            circuit.capacitor("C1", "d", "0", 1e-8)
            return circuit

        options_chord = SimulationOptions(jacobian_reuse="chord")
        options_off = SimulationOptions(jacobian_reuse="off")
        chord = TransientAnalysis(build(), t_stop=5e-4, t_step=5e-6,
                                  options=options_chord).run()
        reference = TransientAnalysis(build(), t_stop=5e-4, t_step=5e-6,
                                      options=options_off).run()
        grid = np.linspace(0.0, 5e-4, 150)
        a = np.interp(grid, chord.time, chord.signal("v(d)"))
        b = np.interp(grid, reference.time, reference.signal("v(d)"))
        assert np.max(np.abs(a - b)) <= 1e-2 * max(np.max(np.abs(b)), 1e-12)
