"""Tests for the behavioral (equation-defined) device engine."""

from __future__ import annotations

import numpy as np
import pytest

from repro.circuit import (
    ACAnalysis,
    Circuit,
    OperatingPointAnalysis,
    Step,
    TransientAnalysis,
)
from repro.circuit.devices.behavioral import BehavioralDevice, Port
from repro.errors import DeviceError
from repro.natures import ELECTRICAL


def behavioral_resistor(circuit, name, p, n, resistance):
    """A resistor written as a behavioral contribution i = v / R."""

    def behavior(ctx):
        v = ctx.across("e")
        ctx.contribute("e", v / ctx.param("R"))

    device = BehavioralDevice(
        name, [Port("e", circuit.electrical_node(p), circuit.electrical_node(n), ELECTRICAL)],
        behavior, params={"R": resistance})
    return circuit.add(device)


def behavioral_capacitor(circuit, name, p, n, capacitance):
    """A capacitor written with ddt: i = C * ddt(v)."""

    def behavior(ctx):
        v = ctx.across("e")
        ctx.contribute("e", ctx.param("C") * ctx.ddt(v, key="v"))

    device = BehavioralDevice(
        name, [Port("e", circuit.electrical_node(p), circuit.electrical_node(n), ELECTRICAL)],
        behavior, params={"C": capacitance})
    return circuit.add(device)


class TestConstruction:
    def test_needs_at_least_one_port(self):
        with pytest.raises(DeviceError):
            BehavioralDevice("X1", [], lambda ctx: None)

    def test_duplicate_port_names_rejected(self):
        circuit = Circuit()
        a, b = circuit.electrical_node("a"), circuit.electrical_node("b")
        ports = [Port("e", a, circuit.ground, ELECTRICAL),
                 Port("e", b, circuit.ground, ELECTRICAL)]
        with pytest.raises(DeviceError):
            BehavioralDevice("X1", ports, lambda ctx: None)

    def test_unknown_port_access_raises(self):
        circuit = Circuit()
        device = BehavioralDevice(
            "X1", [Port("e", circuit.electrical_node("a"), circuit.ground, ELECTRICAL)],
            lambda ctx: ctx.contribute("nope", 1.0))
        circuit.add(device)
        circuit.resistor("R1", "a", "0", 1.0)
        with pytest.raises(DeviceError):
            OperatingPointAnalysis(circuit).run()

    def test_unknown_parameter_raises(self):
        circuit = Circuit()
        device = BehavioralDevice(
            "X1", [Port("e", circuit.electrical_node("a"), circuit.ground, ELECTRICAL)],
            lambda ctx: ctx.contribute("e", ctx.param("missing")))
        circuit.add(device)
        circuit.resistor("R1", "a", "0", 1.0)
        with pytest.raises(DeviceError):
            OperatingPointAnalysis(circuit).run()

    def test_declared_unknown_without_equation_raises(self):
        circuit = Circuit()
        device = BehavioralDevice(
            "X1", [Port("e", circuit.electrical_node("a"), circuit.ground, ELECTRICAL)],
            lambda ctx: ctx.contribute("e", 0.0), extra_unknowns=("i",))
        circuit.add(device)
        circuit.resistor("R1", "a", "0", 1.0)
        with pytest.raises(DeviceError):
            OperatingPointAnalysis(circuit).run()

    def test_describe_mentions_ports(self):
        circuit = Circuit()
        device = BehavioralDevice(
            "X1", [Port("e", circuit.electrical_node("a"), circuit.ground, ELECTRICAL)],
            lambda ctx: None)
        assert "e:electrical" in device.describe()


class TestAgainstLinearDevices:
    """Behavioral formulations must match the hand-coded stamps exactly."""

    def test_behavioral_resistor_divider(self):
        circuit = Circuit()
        circuit.voltage_source("V1", "in", "0", 6.0)
        circuit.resistor("R1", "in", "out", 1e3)
        behavioral_resistor(circuit, "X1", "out", "0", 2e3)
        op = OperatingPointAnalysis(circuit).run()
        assert op.voltage("out") == pytest.approx(4.0, rel=1e-9)

    def test_behavioral_capacitor_rc_step(self):
        circuit = Circuit()
        circuit.voltage_source("V1", "in", "0", Step(0.0, 5.0, ramp=1e-9))
        circuit.resistor("R1", "in", "out", 1e3)
        behavioral_capacitor(circuit, "X1", "out", "0", 1e-6)
        result = TransientAnalysis(circuit, t_stop=5e-3, t_step=20e-6).run()
        expected = 5.0 * (1.0 - np.exp(-1.0))
        assert result.at("v(out)", 1e-3) == pytest.approx(expected, rel=1e-2)

    def test_behavioral_capacitor_ac_matches_linear(self):
        behavioral = Circuit()
        behavioral.voltage_source("V1", "in", "0", 0.0, ac=1.0)
        behavioral.resistor("R1", "in", "out", 1e3)
        behavioral_capacitor(behavioral, "X1", "out", "0", 1e-6)

        linear = Circuit()
        linear.voltage_source("V1", "in", "0", 0.0, ac=1.0)
        linear.resistor("R1", "in", "out", 1e3)
        linear.capacitor("C1", "out", "0", 1e-6)

        frequencies = [10.0, 159.0, 5e3]
        res_b = ACAnalysis(behavioral, frequencies).run()
        res_l = ACAnalysis(linear, frequencies).run()
        assert np.allclose(np.asarray(res_b["v(out)"]), np.asarray(res_l["v(out)"]), rtol=1e-9)

    def test_nonlinear_conductance_newton(self):
        """A cubic conductance i = k*v^3 converges and matches the root."""
        circuit = Circuit()
        circuit.current_source("I1", "0", "a", 8e-3)

        def behavior(ctx):
            v = ctx.across("e")
            ctx.contribute("e", 1e-3 * v * v * v)

        circuit.add(BehavioralDevice(
            "X1", [Port("e", circuit.electrical_node("a"), circuit.ground, ELECTRICAL)],
            behavior))
        op = OperatingPointAnalysis(circuit).run()
        assert op.voltage("a") == pytest.approx(2.0, rel=1e-6)


class TestExtraUnknowns:
    def test_behavioral_inductor_with_branch_equation(self):
        """v = L di/dt implemented through an extra unknown and equation."""
        circuit = Circuit()
        circuit.voltage_source("V1", "in", "0", Step(0.0, 1.0, ramp=1e-9))
        circuit.resistor("R1", "in", "out", 10.0)

        def behavior(ctx):
            v = ctx.across("e")
            current = ctx.unknown("i")
            ctx.contribute("e", current)
            ctx.equation("i", v - 10e-3 * ctx.ddt(current, key="i"))

        circuit.add(BehavioralDevice(
            "XL", [Port("e", circuit.electrical_node("out"), circuit.ground, ELECTRICAL)],
            behavior, extra_unknowns=("i",)))
        result = TransientAnalysis(circuit, t_stop=5e-3, t_step=10e-6).run()
        tau = 10e-3 / 10.0
        expected = 0.1 * (1.0 - np.exp(-1.0))
        assert result.at("i(XL.e)", tau) == pytest.approx(expected, rel=2e-2)
        assert result.final("i(XL.e)") == pytest.approx(0.1, rel=1e-2)

    def test_undeclared_unknown_access_rejected(self):
        circuit = Circuit()

        def behavior(ctx):
            ctx.contribute("e", ctx.unknown("ghost"))

        circuit.add(BehavioralDevice(
            "X1", [Port("e", circuit.electrical_node("a"), circuit.ground, ELECTRICAL)],
            behavior))
        circuit.resistor("R1", "a", "0", 1.0)
        with pytest.raises(DeviceError):
            OperatingPointAnalysis(circuit).run()


class TestRecording:
    def test_recorded_quantities_appear_in_results(self):
        circuit = Circuit()
        circuit.voltage_source("V1", "in", "0", 2.0)

        def behavior(ctx):
            v = ctx.across("e")
            ctx.contribute("e", v / 100.0)
            ctx.record("vsq", v * v)

        circuit.add(BehavioralDevice(
            "X1", [Port("e", circuit.electrical_node("in"), circuit.ground, ELECTRICAL)],
            behavior))
        op = OperatingPointAnalysis(circuit).run()
        assert op["vsq(X1)"] == pytest.approx(4.0)
        assert op["i(X1.e)"] == pytest.approx(0.02)

    def test_integ_state_initial_value_used_at_dc(self):
        circuit = Circuit()
        circuit.voltage_source("V1", "in", "0", 1.0)

        def behavior(ctx):
            v = ctx.across("e")
            x = ctx.integ(v, key="x", initial=0.5)
            ctx.contribute("e", v * 1e-3)
            ctx.record("x", x)

        circuit.add(BehavioralDevice(
            "X1", [Port("e", circuit.electrical_node("in"), circuit.ground, ELECTRICAL)],
            behavior, state_initials={"x": 0.5}))
        op = OperatingPointAnalysis(circuit).run()
        assert op["x(X1)"] == pytest.approx(0.5)
