"""Transient discrete-adjoint sensitivities vs tangent-linear vs central FD."""

from __future__ import annotations

import numpy as np
import pytest

from repro.circuit import Circuit, SimulationOptions, TransientAnalysis
from repro.circuit.analysis.sensitivity import resolve_parameters
from repro.circuit.devices.mechanical import Damper, Mass, Spring
from repro.circuit.devices.passive import Capacitor, Inductor, Resistor
from repro.circuit.devices.sources import VoltageSource
from repro.errors import SensitivityError
from repro.transducers import TransverseElectrostaticTransducer

OPTIONS = SimulationOptions(reltol=1e-8, abstol=1e-16, vntol=1e-12)


# --------------------------------------------------------------------------- #
# linear RLC: both integrator state kinds (ddt via C and aux-ddt via L)       #
# --------------------------------------------------------------------------- #

RLC_PARAMS = ("V1.dc", "R1.resistance", "C1.capacitance", "R2.resistance",
              "L1.inductance")
RLC_OUTPUTS = ("v(n2)", "i(L1)")


def build_rlc() -> Circuit:
    circuit = Circuit()
    n1 = circuit.electrical_node("n1")
    n2 = circuit.electrical_node("n2")
    n3 = circuit.electrical_node("n3")
    ground = circuit.ground
    circuit.add(VoltageSource("V1", n1, ground, 2.0))
    circuit.add(Resistor("R1", n1, n2, 1e3))
    circuit.add(Capacitor("C1", n2, ground, 1e-6))
    circuit.add(Resistor("R2", n2, n3, 2e3))
    circuit.add(Inductor("L1", n3, ground, 0.1))
    return circuit


def rlc_analysis(circuit: Circuit) -> TransientAnalysis:
    # Mid-settling horizon: the outputs still move, so no derivative is
    # degenerate (comparisons stay meaningful).
    return TransientAnalysis(circuit, t_stop=8e-4, t_step=1.6e-5,
                             options=OPTIONS)


def rlc_fd() -> np.ndarray:
    def finals(offsets):
        circuit = build_rlc()
        refs = resolve_parameters(circuit, RLC_PARAMS)
        for ref, offset in zip(refs, offsets):
            ref.device.set_parameter(ref.parameter, ref.value + offset)
        result = rlc_analysis(circuit).run()
        return np.array([result.final(name) for name in RLC_OUTPUTS])

    refs = resolve_parameters(build_rlc(), RLC_PARAMS)
    matrix = np.zeros((len(RLC_OUTPUTS), len(RLC_PARAMS)))
    for k, ref in enumerate(refs):
        step = 1e-5 * abs(ref.value)
        offsets = np.zeros(len(RLC_PARAMS))
        offsets[k] = step
        matrix[:, k] = (finals(offsets) - finals(-offsets)) / (2.0 * step)
    return matrix


class TestTransientLinear:
    def test_adjoint_matches_central_fd(self):
        analysis = rlc_analysis(build_rlc())
        result = analysis.sensitivities(RLC_PARAMS, RLC_OUTPUTS,
                                        method="adjoint")
        reference = rlc_fd()
        scale = np.abs(reference).max(axis=1, keepdims=True)
        np.testing.assert_allclose(result.matrix / scale, reference / scale,
                                   rtol=1e-5, atol=1e-7)
        assert result.method == "adjoint"

    def test_direct_agrees_with_adjoint(self):
        analysis = rlc_analysis(build_rlc())
        run = TransientAnalysis(build_rlc(), t_stop=8e-4, t_step=1.6e-5,
                                options=OPTIONS, record_trajectory=True).run()
        adjoint = analysis.sensitivities(RLC_PARAMS, RLC_OUTPUTS,
                                         method="adjoint", result=run)
        direct = analysis.sensitivities(RLC_PARAMS, RLC_OUTPUTS,
                                        method="direct", result=run)
        scale = np.abs(adjoint.matrix).max(axis=1, keepdims=True)
        np.testing.assert_allclose(direct.matrix / scale,
                                   adjoint.matrix / scale,
                                   rtol=1e-8, atol=1e-9)
        # Passing a recorded trajectory avoids the re-integration entirely.
        assert adjoint.stats["transient_solves"] == 0

    def test_replay_factorizations_are_mostly_cache_hits(self):
        analysis = rlc_analysis(build_rlc())
        result = analysis.sensitivities(RLC_PARAMS, ["v(n2)"])
        stats = result.stats
        assert stats["transient_solves"] == 1
        # A linear circuit's Jacobian only changes with the step size: the
        # replay factors a handful of matrices and rides them.
        assert stats["factor_cache_hits"] > 5 * stats["factorizations"]

    def test_values_are_final_signals(self):
        analysis = TransientAnalysis(build_rlc(), t_stop=8e-4, t_step=1.6e-5,
                                     options=OPTIONS, record_trajectory=True)
        run = analysis.run()
        result = analysis.sensitivities(RLC_PARAMS, RLC_OUTPUTS, result=run)
        for m, name in enumerate(RLC_OUTPUTS):
            assert result.values[m] == pytest.approx(run.final(name))

    def test_trajectory_recording_flag(self):
        with_flag = TransientAnalysis(build_rlc(), t_stop=4e-4,
                                      t_step=1.6e-5, options=OPTIONS,
                                      record_trajectory=True).run()
        without = TransientAnalysis(build_rlc(), t_stop=4e-4, t_step=1.6e-5,
                                    options=OPTIONS).run()
        assert without.trajectory is None
        assert with_flag.trajectory is not None
        assert with_flag.trajectory.shape[0] == with_flag.time.size
        np.testing.assert_allclose(with_flag.trajectory[:, 1],
                                   with_flag["v(n2)"])


# --------------------------------------------------------------------------- #
# nonlinear transducer: integ states, behavioral coupling, DC-start chain     #
# --------------------------------------------------------------------------- #

XDCR_PARAMS = ("V1.dc", "R1.resistance", "XT.A", "XT.d", "XT.er",
               "K1.stiffness", "M1.mass", "B1.damping")
XDCR_OUTPUTS = ("i(K1)", "v(n2)")


def build_transducer() -> Circuit:
    circuit = Circuit()
    n1 = circuit.electrical_node("n1")
    n2 = circuit.electrical_node("n2")
    ground = circuit.ground
    circuit.add(VoltageSource("V1", n1, ground, 8.0))
    circuit.add(Resistor("R1", n1, n2, 1e4))
    nm = circuit.mechanical_node("nm")
    transducer = TransverseElectrostaticTransducer(
        area=4e-8, gap=2e-6, gap_orientation="closing")
    transducer.add_to_circuit(circuit, "XT", "n2", "0", "nm", "0",
                              closed_form=True)
    circuit.add(Mass("M1", nm, ground, 1e-9))
    circuit.add(Spring("K1", nm, ground, 5.0))
    circuit.add(Damper("B1", nm, ground, 2e-5))
    return circuit


def transducer_analysis(circuit: Circuit) -> TransientAnalysis:
    return TransientAnalysis(circuit, t_stop=1.5e-5, t_step=3e-7,
                             options=OPTIONS)


class TestTransientTransducer:
    @pytest.fixture(scope="class")
    def adjoint(self):
        analysis = transducer_analysis(build_transducer())
        return analysis.sensitivities(XDCR_PARAMS, XDCR_OUTPUTS,
                                      method="adjoint")

    @pytest.fixture(scope="class")
    def fd_reference(self):
        base_stats = transducer_analysis(build_transducer()).run().statistics

        def finals(offsets):
            circuit = build_transducer()
            refs = resolve_parameters(circuit, XDCR_PARAMS)
            for ref, offset in zip(refs, offsets):
                ref.device.set_parameter(ref.parameter, ref.value + offset)
            result = transducer_analysis(circuit).run()
            # The discrete adjoint differentiates at the fixed accepted step
            # sequence; the FD reference is only valid while perturbations
            # leave that sequence unchanged.
            assert result.statistics["accepted"] == base_stats["accepted"]
            return np.array([result.final(name) for name in XDCR_OUTPUTS])

        refs = resolve_parameters(build_transducer(), XDCR_PARAMS)
        matrix = np.zeros((len(XDCR_OUTPUTS), len(XDCR_PARAMS)))
        for k, ref in enumerate(refs):
            step = 1e-6 * abs(ref.value)
            offsets = np.zeros(len(XDCR_PARAMS))
            offsets[k] = step
            matrix[:, k] = (finals(offsets) - finals(-offsets)) / (2.0 * step)
        return matrix

    def test_adjoint_matches_central_fd(self, adjoint, fd_reference):
        # Compare row-relative: entries whose true value is ~0 (e.g. the
        # electrical node's dependence on mechanical parameters) sit at the
        # solver noise floor in both methods.
        scale = np.abs(fd_reference).max(axis=1, keepdims=True)
        np.testing.assert_allclose(adjoint.matrix / scale,
                                   fd_reference / scale,
                                   rtol=1e-4, atol=1e-6)

    def test_direct_agrees_with_adjoint(self, adjoint):
        direct = transducer_analysis(build_transducer()).sensitivities(
            XDCR_PARAMS, XDCR_OUTPUTS, method="direct")
        scale = np.abs(adjoint.matrix).max(axis=1, keepdims=True)
        np.testing.assert_allclose(direct.matrix / scale,
                                   adjoint.matrix / scale,
                                   rtol=1e-6, atol=1e-8)

    def test_geometry_gradient_signs(self, adjoint):
        # A larger plate area pulls harder -> larger (negative-displacement)
        # spring force magnitude; a larger rest gap weakens the pull.
        d_area = adjoint.derivative("i(K1)", "XT.A")
        d_gap = adjoint.derivative("i(K1)", "XT.d")
        assert d_area * d_gap < 0.0


class TestTransientGuards:
    def test_bad_method_rejected(self):
        analysis = rlc_analysis(build_rlc())
        with pytest.raises(SensitivityError, match="unknown transient"):
            analysis.sensitivities(RLC_PARAMS, RLC_OUTPUTS, method="newton")

    def test_use_ic_skips_dc_chain(self):
        # With use_ic=True the start point is parameter-independent; the
        # V1.dc gradient must then come from the stepping alone.
        circuit = build_rlc()
        analysis = TransientAnalysis(circuit, t_stop=4e-4, t_step=1.6e-5,
                                     use_ic=True, options=OPTIONS)
        result = analysis.sensitivities(["V1.dc"], ["v(n2)"])
        assert np.isfinite(result.matrix).all()
