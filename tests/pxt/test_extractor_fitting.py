"""Tests for the PXT extractor, sweeps, fitting and report generation."""

from __future__ import annotations

import numpy as np
import pytest

from repro.constants import EPSILON_0
from repro.errors import ExtractionError
from repro.fem import SpringMassChain, harmonic_response
from repro.pxt import (
    ParameterExtractor,
    displacement_sweep,
    fit_rational,
    fit_second_order,
    voltage_sweep,
)
from repro.pxt.report import ExtractionReport

AREA, GAP = 1e-4, 0.15e-3


@pytest.fixture(scope="module")
def extractor():
    return ParameterExtractor(area=AREA, gap=GAP, nx=10, ny=8)


class TestSweeps:
    def test_displacement_sweep_bounds(self):
        sweep = displacement_sweep(GAP, fraction=0.3, points=7)
        assert sweep.min() == pytest.approx(-0.3 * GAP)
        assert sweep.max() == pytest.approx(0.3 * GAP)
        assert sweep.size == 7

    def test_one_sided_sweep(self):
        sweep = displacement_sweep(GAP, fraction=0.2, points=5, symmetric=False)
        assert sweep.min() == 0.0

    def test_voltage_sweep(self):
        sweep = voltage_sweep(15.0, points=4)
        assert sweep[0] == 0.0 and sweep[-1] == 15.0

    def test_validation(self):
        with pytest.raises(ExtractionError):
            displacement_sweep(GAP, fraction=1.5)
        with pytest.raises(ExtractionError):
            displacement_sweep(-1.0)
        with pytest.raises(ExtractionError):
            voltage_sweep(0.0, minimum=5.0)


class TestExtractor:
    def test_solve_point_matches_analytics(self, extractor):
        point = extractor.solve_point(displacement=1e-5, voltage=10.0)
        assert point.capacitance == pytest.approx(
            extractor.analytic_capacitance(1e-5), rel=1e-6)
        assert point.force == pytest.approx(extractor.analytic_force(10.0, 1e-5), rel=1e-6)
        assert point.charge == pytest.approx(point.capacitance * 10.0, rel=1e-6)

    def test_zero_voltage_point(self, extractor):
        point = extractor.solve_point(displacement=0.0, voltage=0.0)
        assert point.force == 0.0 and point.charge == 0.0
        assert point.capacitance == pytest.approx(EPSILON_0 * AREA / GAP, rel=1e-6)

    def test_capacitance_model_tracks_1_over_gap(self, extractor):
        displacements = displacement_sweep(GAP, fraction=0.3, points=9)
        model = extractor.capacitance_model(displacements)
        error = model.max_relative_error(extractor.analytic_capacitance)
        assert error < 5e-3

    def test_force_model_grid(self, extractor):
        model = extractor.force_model(displacements=[-2e-5, 0.0, 2e-5], voltages=[5.0, 10.0])
        assert model(0.0, 10.0) == pytest.approx(extractor.analytic_force(10.0, 0.0), rel=1e-6)
        # Quadratic in V: the bilinear table interpolates, so mid-voltage error
        # is bounded but non-zero.
        assert model.max_relative_error(
            lambda x, v: extractor.analytic_force(v, x)) < 0.35

    def test_force_vs_voltage_at_zero_displacement(self, extractor):
        model = extractor.force_vs_voltage([0.0, 5.0, 10.0, 15.0])
        assert model(10.0) == pytest.approx(extractor.analytic_force(10.0, 0.0), rel=1e-6)

    def test_gap_closing_rejected(self, extractor):
        with pytest.raises(ExtractionError):
            extractor.solve_point(displacement=-GAP, voltage=1.0)

    def test_closing_orientation(self):
        closing = ParameterExtractor(area=AREA, gap=GAP, gap_orientation="closing",
                                     nx=6, ny=4)
        assert closing.effective_gap(1e-5) == pytest.approx(GAP - 1e-5)

    def test_sweep_collects_cartesian_product(self, extractor):
        sweep = extractor.sweep([0.0, 1e-5], [5.0, 10.0])
        assert len(sweep.points) == 4
        assert sweep.displacements().size == 2
        assert sweep.voltages().size == 2
        nearest = sweep.at(0.0, 10.0)
        assert nearest.voltage == 10.0 and nearest.displacement == 0.0

    def test_validation(self):
        with pytest.raises(ExtractionError):
            ParameterExtractor(area=-1.0, gap=GAP)
        with pytest.raises(ExtractionError):
            ParameterExtractor(area=AREA, gap=GAP, gap_orientation="diagonal")


class TestReport:
    def test_report_render_and_accuracy(self, extractor):
        sweep = extractor.sweep([0.0], [5.0, 10.0])
        report = ExtractionReport(extractor, sweep)
        text = report.render()
        assert "PXT extraction report" in text
        assert "V =  10.00 V" in text
        assert report.worst_force_deviation() < 1e-3


class TestSecondOrderFit:
    def _response(self, mass=1e-4, stiffness=200.0, damping=0.04):
        chain = SpringMassChain(masses=(mass,), stiffnesses=(stiffness,),
                                dampings=(damping,))
        m, c, k = chain.matrices()
        frequencies = np.linspace(10.0, 1000.0, 250)
        return frequencies, harmonic_response(m, c, k, frequencies).dof(0)

    def test_recovers_exact_parameters(self):
        frequencies, response = self._response()
        fit = fit_second_order(frequencies, response)
        assert fit.mass == pytest.approx(1e-4, rel=1e-6)
        assert fit.stiffness == pytest.approx(200.0, rel=1e-6)
        assert fit.damping == pytest.approx(0.04, rel=1e-6)
        assert fit.natural_frequency_hz == pytest.approx(
            np.sqrt(200.0 / 1e-4) / (2 * np.pi), rel=1e-6)
        assert fit.quality_factor == pytest.approx(np.sqrt(200.0 * 1e-4) / 0.04, rel=1e-6)

    def test_evaluate_reproduces_input(self):
        frequencies, response = self._response()
        fit = fit_second_order(frequencies, response)
        assert np.allclose(fit.evaluate(frequencies), response, rtol=1e-6)

    def test_validation(self):
        with pytest.raises(ExtractionError):
            fit_second_order(np.array([1.0, 2.0]), np.array([1.0 + 0j, 2.0 + 0j]))
        with pytest.raises(ExtractionError):
            fit_second_order(np.array([1.0, 2.0, 3.0]), np.array([0j, 1j, 2j]))


class TestExtractSecondOrderFit:
    def test_full_and_rom_paths_agree(self):
        from repro.fem import CantileverBeam
        from repro.pxt import extract_second_order_fit

        beam = CantileverBeam(300e-6, 20e-6, 2e-6, 160e9, 2330.0, elements=20)
        stiffness, mass = beam.assemble()
        damping = 1e-9 * stiffness
        f1 = beam.analytic_first_frequency()
        # Fit only around the fundamental so the single-resonance model holds.
        frequencies = np.linspace(0.5 * f1, 1.5 * f1, 120)
        full = extract_second_order_fit(mass, damping, stiffness, frequencies,
                                        drive_dof=-2)
        reduced = extract_second_order_fit(mass, damping, stiffness,
                                           frequencies, drive_dof=-2,
                                           method="rom", rom_order=8)
        assert reduced.natural_frequency_hz == pytest.approx(
            full.natural_frequency_hz, rel=1e-6)
        assert reduced.stiffness == pytest.approx(full.stiffness, rel=1e-4)
        assert reduced.mass == pytest.approx(full.mass, rel=1e-4)
        assert full.natural_frequency_hz == pytest.approx(f1, rel=1e-2)


class TestRationalFit:
    def test_fits_second_order_compliance(self):
        frequencies = np.linspace(10.0, 1000.0, 200)
        omega = 2.0 * np.pi * frequencies
        response = 1.0 / (200.0 - 1e-4 * omega ** 2 + 1j * omega * 0.04)
        fit = fit_rational(frequencies, response, num_order=0, den_order=2)
        assert fit.max_relative_error(frequencies, response) < 1e-3
        # Denominator coefficients recover k-normalised mass and damping.
        assert fit.numerator[0] == pytest.approx(1.0 / 200.0, rel=1e-3)

    def test_validation(self):
        with pytest.raises(ExtractionError):
            fit_rational(np.array([1.0, 2.0]), np.array([1 + 0j, 2 + 0j]),
                         num_order=3, den_order=3)
        with pytest.raises(ExtractionError):
            fit_rational(np.array([1.0]), np.array([1 + 0j]), den_order=0)
