"""PXT boundary-condition sweeps through the campaign engine.

The extraction grid is the paper's "iterating the variation of boundary
conditions" workload; these tests pin the contract that routing it through
:class:`~repro.campaign.runner.CampaignRunner` (any backend, cached or not)
reproduces the direct nested-loop solve exactly.
"""

from __future__ import annotations

import pytest

from repro.campaign import CampaignRunner, ResultCache
from repro.errors import ExtractionError
from repro.pxt import ParameterExtractor, displacement_sweep, extraction_grid, voltage_sweep

AREA, GAP = 1e-4, 0.15e-3

DISPLACEMENTS = [-2e-5, 0.0, 2e-5]
VOLTAGES = [0.0, 5.0, 10.0]


@pytest.fixture(scope="module")
def extractor():
    return ParameterExtractor(area=AREA, gap=GAP, nx=10, ny=8)


@pytest.fixture(scope="module")
def direct_points(extractor):
    """The seed-path reference: one solve_point call per grid point."""
    return [extractor.solve_point(x, v) for x in DISPLACEMENTS for v in VOLTAGES]


def _assert_matches(sweep, reference):
    assert len(sweep.points) == len(reference)
    for got, want in zip(sweep.points, reference):
        assert got.displacement == want.displacement
        assert got.voltage == want.voltage
        assert got.capacitance == pytest.approx(want.capacitance, abs=1e-9, rel=1e-9)
        assert got.force == pytest.approx(want.force, abs=1e-9, rel=1e-9)
        assert got.charge == pytest.approx(want.charge, abs=1e-9, rel=1e-9)
        assert got.energy == pytest.approx(want.energy, abs=1e-9, rel=1e-9)
        assert got.field == pytest.approx(want.field, rel=1e-9)


class TestCampaignParity:
    def test_default_serial_runner_matches_direct_solves(self, extractor,
                                                         direct_points):
        sweep = extractor.sweep(DISPLACEMENTS, VOLTAGES)
        _assert_matches(sweep, direct_points)

    def test_pool_backend_matches_direct_solves(self, extractor, direct_points):
        runner = CampaignRunner(backend="pool", processes=2)
        sweep = extractor.sweep(DISPLACEMENTS, VOLTAGES, runner=runner)
        _assert_matches(sweep, direct_points)

    def test_cached_rerun_matches_direct_solves(self, extractor, direct_points,
                                                tmp_path):
        cache = ResultCache(tmp_path)
        runner = CampaignRunner(cache=cache)
        _assert_matches(extractor.sweep(DISPLACEMENTS, VOLTAGES, runner=runner),
                        direct_points)
        warm = extractor.sweep(DISPLACEMENTS, VOLTAGES, runner=runner)
        _assert_matches(warm, direct_points)
        assert cache.stats()["hits"] == len(direct_points)

    def test_macromodels_match_through_runner(self, extractor):
        runner = CampaignRunner(cache=ResultCache())
        direct = extractor.force_model(DISPLACEMENTS, [5.0, 10.0])
        via_campaign = extractor.force_model(DISPLACEMENTS, [5.0, 10.0],
                                             runner=runner)
        for x in DISPLACEMENTS:
            for v in (5.0, 7.5, 10.0):
                assert via_campaign(x, v) == pytest.approx(direct(x, v), rel=1e-12)

    def test_mesh_change_invalidates_cache(self, tmp_path):
        cache = ResultCache(tmp_path)
        runner = CampaignRunner(cache=cache)
        ParameterExtractor(area=AREA, gap=GAP, nx=6, ny=4).sweep(
            [0.0], [5.0], runner=runner)
        ParameterExtractor(area=AREA, gap=GAP, nx=8, ny=6).sweep(
            [0.0], [5.0], runner=runner)
        assert cache.stats()["hits"] == 0 and cache.stats()["stores"] == 2


class TestFailureBehaviour:
    def test_gap_closing_point_raises_with_location(self, extractor):
        with pytest.raises(ExtractionError, match="displacement"):
            extractor.sweep([-GAP, 0.0], [5.0])

    def test_raw_campaign_result_captures_failures(self, extractor):
        result = extractor.sweep_campaign([-GAP, 0.0], [5.0])
        assert len(result) == 2 and result.num_failures == 1
        assert "ExtractionError" in result.error(0)

    def test_empty_sweep_rejected(self, extractor):
        with pytest.raises(ExtractionError):
            extractor.sweep([], [5.0])


class TestExtractionGrid:
    def test_spec_matches_sweep_helpers(self):
        spec = extraction_grid(GAP, max_voltage=15.0, fraction=0.3,
                               displacement_points=5, voltage_points=4)
        displacements = displacement_sweep(GAP, fraction=0.3, points=5)
        voltages = voltage_sweep(15.0, points=4)
        assert len(spec) == 20
        points = spec.points()
        assert points[0]["displacement"] == displacements[0]
        assert points[0]["voltage"] == voltages[0]
        # outer displacement, inner voltage -- the extractor's loop order
        assert points[1]["displacement"] == displacements[0]
        assert points[1]["voltage"] == voltages[1]

    def test_spec_drives_runner(self, extractor):
        spec = extraction_grid(GAP, max_voltage=10.0, displacement_points=2,
                               voltage_points=2)
        result = CampaignRunner().run(spec, extractor.campaign_evaluator())
        assert len(result) == 4 and result.num_failures == 0
        assert set(result.output_names) == {"capacitance", "charge", "force",
                                            "energy", "field"}
