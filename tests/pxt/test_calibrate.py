"""Macromodel calibration: fit lumped parameters back from extracted data."""

from __future__ import annotations

import numpy as np
import pytest

from repro.campaign import ResultCache
from repro.errors import ExtractionError
from repro.optim import GradientDescent, MultiStart, NelderMead, ParameterSpace
from repro.pxt import ParameterExtractor, fit_macromodel_parameters
from repro.pxt.calibrate import MacromodelResidual
from repro.transducers import TransverseElectrostaticTransducer

AREA = 4e-8
GAP = 2e-6

SPACE = ParameterSpace(area=(1e-9, 1e-6, "log"), gap=(5e-7, 1e-5, "log"))

DISPLACEMENTS = [-4e-7, -2e-7, 0.0, 2e-7, 4e-7]


def predict_capacitance(params, displacement):
    """The lumped C(x) macromodel being calibrated (dual-friendly)."""
    transducer = TransverseElectrostaticTransducer(
        area=params["area"], gap=params["gap"])
    return transducer.capacitance(displacement)


def _analytic_targets():
    reference = TransverseElectrostaticTransducer(area=AREA, gap=GAP)
    return [float(reference.capacitance(x)) for x in DISPLACEMENTS]


class TestAnalyticRoundTrip:
    def test_recovers_generating_parameters(self):
        fit = fit_macromodel_parameters(
            predict_capacitance, SPACE, DISPLACEMENTS, _analytic_targets())
        assert fit.params["area"] == pytest.approx(AREA, rel=1e-3)
        assert fit.params["gap"] == pytest.approx(GAP, rel=1e-3)
        assert fit.rms_error < 1e-5

    def test_gradient_solver_uses_ad_through_the_transducer(self):
        fit = fit_macromodel_parameters(
            predict_capacitance, SPACE, DISPLACEMENTS, _analytic_targets(),
            solver=GradientDescent(max_iterations=400), gradient="ad")
        assert fit.params["area"] == pytest.approx(AREA, rel=1e-2)
        assert fit.params["gap"] == pytest.approx(GAP, rel=1e-2)

    def test_multistart_solver_is_accepted(self):
        fit = fit_macromodel_parameters(
            predict_capacitance, SPACE, DISPLACEMENTS, _analytic_targets(),
            solver=MultiStart(solver=NelderMead(max_iterations=200), starts=3,
                              seed=4))
        assert fit.params["area"] == pytest.approx(AREA, rel=1e-2)

    def test_predictions_reproduce_targets(self):
        targets = _analytic_targets()
        fit = fit_macromodel_parameters(
            predict_capacitance, SPACE, DISPLACEMENTS, targets)
        np.testing.assert_allclose(fit.predictions(), targets, rtol=1e-4)


class TestFEExtractionCalibration:
    def test_fits_effective_parameters_from_fe_sweep(self):
        # The forward PXT flow extracts C(x) from FE solves; calibration
        # recovers lumped parameters reproducing that sweep closely.
        extractor = ParameterExtractor(area=AREA, gap=GAP, nx=12, ny=8)
        model = extractor.capacitance_model(DISPLACEMENTS)
        targets = [float(model(x)) for x in DISPLACEMENTS]
        fit = fit_macromodel_parameters(
            predict_capacitance, SPACE, DISPLACEMENTS, targets)
        # FE discretization shifts the effective parameters slightly; the
        # fit must still reproduce the sweep to well under a percent.
        assert fit.rms_error < 1e-3
        assert fit.params["area"] == pytest.approx(AREA, rel=0.05)
        assert fit.params["gap"] == pytest.approx(GAP, rel=0.05)


class TestPlumbing:
    def test_cache_spares_repeat_evaluations(self):
        cache = ResultCache()
        targets = _analytic_targets()
        fit_macromodel_parameters(predict_capacitance, SPACE, DISPLACEMENTS,
                                  targets, cache=cache)
        stores_after_first = cache.stores
        fit_macromodel_parameters(predict_capacitance, SPACE, DISPLACEMENTS,
                                  targets, cache=cache)
        assert cache.hits > 0
        assert cache.stores == stores_after_first  # nothing re-evaluated anew

    def test_residual_payload_covers_the_data(self):
        one = MacromodelResidual(predict_capacitance, [0.0], [1.0])
        two = MacromodelResidual(predict_capacitance, [0.0], [2.0])
        assert one.cache_payload() != two.cache_payload()

    def test_validation(self):
        with pytest.raises(ExtractionError):
            MacromodelResidual(predict_capacitance, [], [])
        with pytest.raises(ExtractionError):
            MacromodelResidual(predict_capacitance, [0.0], [1.0, 2.0])
        with pytest.raises(ExtractionError):
            MacromodelResidual(predict_capacitance, [0.0], [0.0])
        with pytest.raises(ExtractionError):
            MacromodelResidual(predict_capacitance, [0.0], [1.0],
                               weights=[1.0, 2.0])
