"""Tests for the table macromodels."""

from __future__ import annotations

import numpy as np
import pytest
from hypothesis import given, settings, strategies as st

from repro.ad import seed
from repro.errors import MacroModelError
from repro.pxt import BilinearTableModel, PiecewiseLinearModel


class TestPiecewiseLinearModel:
    def make(self):
        xs = (0.0, 1.0, 2.0, 4.0)
        return PiecewiseLinearModel(xs, tuple(x * x for x in xs))

    def test_exact_at_breakpoints(self):
        model = self.make()
        for x, y in zip(model.xs, model.ys):
            assert model(x) == pytest.approx(y)

    def test_linear_between_breakpoints(self):
        model = self.make()
        assert model(0.5) == pytest.approx(0.5)       # between 0 and 1
        assert model(3.0) == pytest.approx((4 + 16) / 2)

    def test_extrapolation_uses_end_segments(self):
        model = self.make()
        slope_last = (16.0 - 4.0) / 2.0
        assert model(5.0) == pytest.approx(16.0 + slope_last)
        slope_first = 1.0
        assert model(-1.0) == pytest.approx(-1.0 * slope_first)

    def test_derivative_is_segment_slope(self):
        model = self.make()
        assert model.derivative(0.5) == pytest.approx(1.0)
        assert model.derivative(3.0) == pytest.approx(6.0)

    def test_dual_input_propagates_slope(self):
        model = self.make()
        result = model(seed(3.0))
        assert result.partial() == pytest.approx(model.derivative(3.0))

    def test_max_relative_error_against_quadratic(self):
        # Use a range where the reference never vanishes so the relative
        # error is meaningful everywhere.
        xs = (1.0, 2.0, 3.0, 4.0)
        model = PiecewiseLinearModel(xs, tuple(x * x for x in xs))
        error = model.max_relative_error(lambda x: x * x)
        assert 0.0 < error < 0.2
        dense = model.resampled(200)
        assert dense.max_relative_error(model) < 1e-9

    def test_resampled_bounds(self):
        model = self.make().resampled(7)
        assert len(model.xs) == 7
        assert model.span == (0.0, 4.0)
        with pytest.raises(MacroModelError):
            self.make().resampled(1)

    def test_validation(self):
        with pytest.raises(MacroModelError):
            PiecewiseLinearModel((0.0,), (1.0,))
        with pytest.raises(MacroModelError):
            PiecewiseLinearModel((0.0, 0.0), (1.0, 2.0))
        with pytest.raises(MacroModelError):
            PiecewiseLinearModel((0.0, 1.0), (1.0,))

    @given(st.floats(min_value=-1.0, max_value=5.0))
    @settings(max_examples=50)
    def test_continuity(self, x):
        """The interpolant is continuous: nearby inputs give nearby outputs."""
        model = self.make()
        assert abs(model(x + 1e-9) - model(x)) < 1e-6


class TestBilinearTableModel:
    def make(self):
        xs = (0.0, 1.0, 2.0)
        ys = (0.0, 10.0)
        values = tuple(tuple(x + 0.1 * y for y in ys) for x in xs)
        return BilinearTableModel(xs, ys, values)

    def test_exact_at_grid_points(self):
        model = self.make()
        assert model(1.0, 10.0) == pytest.approx(2.0)
        assert model(2.0, 0.0) == pytest.approx(2.0)

    def test_bilinear_interpolation_of_bilinear_function_is_exact(self):
        model = self.make()
        assert model(0.5, 5.0) == pytest.approx(0.5 + 0.5)
        assert model(1.7, 2.5) == pytest.approx(1.7 + 0.25)

    def test_clamping_outside_grid(self):
        model = self.make()
        assert model(10.0, 100.0) == pytest.approx(model(2.0, 10.0))
        assert model(-5.0, -5.0) == pytest.approx(model(0.0, 0.0))

    def test_max_relative_error(self):
        model = self.make()
        assert model.max_relative_error(lambda x, y: x + 0.1 * y) < 1e-9

    def test_validation(self):
        with pytest.raises(MacroModelError):
            BilinearTableModel((0.0,), (0.0, 1.0), ((1.0, 2.0),))
        with pytest.raises(MacroModelError):
            BilinearTableModel((0.0, 1.0), (0.0, 1.0), ((1.0, 2.0),))
        with pytest.raises(MacroModelError):
            BilinearTableModel((1.0, 0.0), (0.0, 1.0), ((1.0, 2.0), (3.0, 4.0)))
