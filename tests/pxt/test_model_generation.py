"""Tests for PXT HDL model generation and the data-flow second-order models."""

from __future__ import annotations

import numpy as np
import pytest

from repro.circuit import Circuit, OperatingPointAnalysis, Sine, TransientAnalysis
from repro.errors import ExtractionError
from repro.fem import SpringMassChain, harmonic_response
from repro.hdl import analyze, parse
from repro.pxt import (
    ParameterExtractor,
    SecondOrderFit,
    build_second_order_device,
    fit_second_order,
    generate_electrostatic_macromodel,
    generate_second_order_model,
    generate_table_capacitor,
)
from repro.pxt.macromodel import PiecewiseLinearModel

AREA, GAP = 1e-4, 0.15e-3


@pytest.fixture(scope="module")
def tables():
    extractor = ParameterExtractor(area=AREA, gap=GAP, nx=10, ny=8)
    displacements = sorted(np.linspace(-0.3 * GAP, 0.3 * GAP, 7))
    capacitance = extractor.capacitance_model(displacements)
    force = PiecewiseLinearModel(
        tuple(displacements),
        tuple(extractor.solve_point(x, 10.0).force for x in displacements),
        quantity="force", unit="N")
    return extractor, capacitance, force


class TestGeneratedSources:
    def test_table_capacitor_parses(self, tables):
        _, capacitance, _ = tables
        source = generate_table_capacitor("pxtcap", capacitance, displacement=0.0)
        assert analyze(parse(source), "pxtcap") is not None

    def test_macromodel_parses_and_mentions_tables(self, tables):
        _, capacitance, force = tables
        source = generate_electrostatic_macromodel("pxtel", capacitance, force, 10.0)
        assert "table1d" in source
        assert analyze(parse(source), "pxtel") is not None

    def test_zero_reference_voltage_rejected(self, tables):
        _, capacitance, force = tables
        with pytest.raises(ExtractionError):
            generate_electrostatic_macromodel("pxtel", capacitance, force, 0.0)

    def test_mismatched_table_spans_rejected(self, tables):
        _, capacitance, _ = tables
        other = PiecewiseLinearModel((0.0, 1.0), (1.0, 2.0))
        with pytest.raises(ExtractionError):
            generate_electrostatic_macromodel("pxtel", capacitance, other, 10.0)


class TestSecondOrderGeneration:
    def _fit(self):
        chain = SpringMassChain(masses=(1e-4,), stiffnesses=(200.0,), dampings=(0.04,))
        m, c, k = chain.matrices()
        frequencies = np.linspace(10.0, 1000.0, 200)
        return fit_second_order(frequencies, harmonic_response(m, c, k, frequencies).dof(0))

    def test_generated_hdl_parses(self):
        source = generate_second_order_model("resfit", self._fit())
        assert analyze(parse(source), "resfit") is not None

    def test_nonphysical_fit_rejected(self):
        bad = SecondOrderFit(mass=-1.0, damping=0.0, stiffness=1.0, residual=0.0)
        with pytest.raises(ExtractionError):
            generate_second_order_model("bad", bad)

    def test_dataflow_device_reproduces_resonance(self, fast_options):
        """The behavioral device built from the fit rings at the fitted f0."""
        fit = self._fit()
        circuit = Circuit()
        circuit.force_source("F1", "m", "0", Sine(amplitude=1e-3,
                                                  frequency=fit.natural_frequency_hz))
        device = build_second_order_device("XFIT", fit, circuit.mechanical_node("m"),
                                           circuit.ground)
        circuit.add(device)
        result = TransientAnalysis(circuit, t_stop=0.08, t_step=2e-4,
                                   options=fast_options).run()
        # Driving at resonance: displacement amplitude approaches Q * F/k.
        q_factor = fit.quality_factor
        static = 1e-3 / fit.stiffness
        peak = np.max(np.abs(result.signal("x(XFIT)")))
        assert peak > 0.5 * q_factor * static
        assert peak < 1.5 * q_factor * static

    def test_dataflow_device_static_deflection(self):
        fit = self._fit()
        circuit = Circuit()
        circuit.force_source("F1", "m", "0", 1e-3)
        circuit.add(build_second_order_device("XFIT", fit, circuit.mechanical_node("m"),
                                              circuit.ground))
        circuit.damper("DD", "m", "0", 1e-6)  # keep the matrix well conditioned
        op = OperatingPointAnalysis(circuit).run()
        # At DC the spring term holds the force: x = F/k, but x is an integral
        # state frozen at its initial value in OP, so the force balance happens
        # through the recorded contribution instead.
        assert "force(XFIT)" in op.signals()
