"""Tests for the dual-number automatic differentiation core."""

from __future__ import annotations

import math

import numpy as np
import pytest
from hypothesis import given, strategies as st

from repro.ad import Dual, seed, seed_many, value_of, derivative_of, is_dual

finite = st.floats(min_value=-1e6, max_value=1e6, allow_nan=False, allow_infinity=False)
nonzero = finite.filter(lambda x: abs(x) > 1e-6)


class TestConstruction:
    def test_scalar_derivative_promoted_to_array(self):
        d = Dual(2.0, 1.0)
        assert d.deriv.shape == (1,)

    def test_variable_seed(self):
        d = Dual.variable(3.0, index=1, nvars=3)
        assert d.value == 3.0
        assert list(d.deriv) == [0.0, 1.0, 0.0]

    def test_constant(self):
        d = Dual.constant(5.0, nvars=2)
        assert d.value == 5.0
        assert not np.any(d.deriv)

    def test_seed_many_builds_identity(self):
        duals = seed_many([1.0, 2.0, 3.0])
        matrix = np.vstack([d.deriv for d in duals])
        assert np.allclose(matrix, np.eye(3))

    def test_helpers(self):
        d = seed(4.0)
        assert is_dual(d) and not is_dual(4.0)
        assert value_of(d) == 4.0 and value_of(4.0) == 4.0
        assert derivative_of(d) == 1.0 and derivative_of(4.0) == 0.0

    def test_bad_derivative_shape_rejected(self):
        with pytest.raises(ValueError):
            Dual(1.0, np.zeros((2, 2)))


class TestArithmeticDerivatives:
    """Derivatives of elementary operations match calculus."""

    @given(finite, finite)
    def test_addition(self, a, b):
        x = seed(a)
        assert (x + b).partial() == pytest.approx(1.0)
        assert (b + x).partial() == pytest.approx(1.0)

    @given(finite, finite)
    def test_subtraction(self, a, b):
        x = seed(a)
        assert (x - b).partial() == pytest.approx(1.0)
        assert (b - x).partial() == pytest.approx(-1.0)

    @given(finite, finite)
    def test_multiplication(self, a, b):
        x = seed(a)
        assert (x * b).partial() == pytest.approx(b)

    @given(finite, nonzero)
    def test_division_by_constant(self, a, b):
        x = seed(a)
        assert (x / b).partial() == pytest.approx(1.0 / b)

    @given(nonzero, finite)
    def test_constant_divided_by_dual(self, a, b):
        x = seed(a)
        assert (b / x).partial() == pytest.approx(-b / a ** 2, rel=1e-6)

    @given(nonzero)
    def test_integer_power(self, a):
        x = seed(a)
        assert (x ** 3).partial() == pytest.approx(3 * a ** 2, rel=1e-6)

    def test_power_zero_exponent(self):
        x = seed(2.0)
        result = x ** 0
        assert result.value == 1.0 and result.partial() == 0.0

    def test_dual_exponent(self):
        x = seed(2.0)
        result = 2.0 ** x
        assert result.value == pytest.approx(4.0)
        assert result.partial() == pytest.approx(4.0 * math.log(2.0))

    @given(finite)
    def test_negation(self, a):
        x = seed(a)
        assert (-x).partial() == -1.0

    @given(finite)
    def test_abs_matches_sign(self, a):
        x = seed(a)
        expected = -1.0 if a < 0 else 1.0
        assert abs(x).partial() == expected

    def test_product_rule_two_variables(self):
        x, y = seed_many([3.0, 4.0])
        result = x * y
        assert result.partial(0) == pytest.approx(4.0)
        assert result.partial(1) == pytest.approx(3.0)

    def test_quotient_rule_two_variables(self):
        x, y = seed_many([3.0, 4.0])
        result = x / y
        assert result.partial(0) == pytest.approx(1.0 / 4.0)
        assert result.partial(1) == pytest.approx(-3.0 / 16.0)


class TestComparisonsAndConversions:
    def test_comparisons_use_value(self):
        assert seed(2.0) > 1.0
        assert seed(2.0) >= 2.0
        assert seed(2.0) < 3.0
        assert seed(2.0) <= 2.0

    def test_equality_with_numbers_and_duals(self):
        assert seed(2.0) == 2.0
        assert Dual(1.0, [0.0]) == Dual(1.0, [0.0])
        assert Dual(1.0, [1.0]) != Dual(1.0, [0.0])

    def test_float_and_bool(self):
        assert float(seed(2.5)) == 2.5
        assert bool(seed(1.0)) and not bool(Dual(0.0))

    def test_hashable(self):
        assert isinstance(hash(seed(1.0)), int)

    def test_repr_mentions_value(self):
        assert "2.0" in repr(seed(2.0))


class TestComplexDerivatives:
    """Complex derivative parts (used by the AC linearization) propagate."""

    def test_complex_seed(self):
        x = Dual.variable(1.0, index=0, nvars=1, dtype=complex)
        y = x * 3.0
        assert y.deriv.dtype == complex
        scaled = Dual(0.0, 1j * 2.0 * y.deriv)
        assert scaled.deriv[0] == pytest.approx(6j)

    def test_mixed_arithmetic_keeps_complex_dtype(self):
        x = Dual.variable(2.0, dtype=complex)
        y = (x * x + 1.0) / 2.0
        assert y.deriv.dtype == complex
        assert y.deriv[0] == pytest.approx(2.0)
