"""Tests for the gradient / Jacobian / Hessian drivers."""

from __future__ import annotations

import math

import numpy as np
import pytest
from hypothesis import given, strategies as st

from repro.ad import derivative, gradient, hessian, jacobian
from repro.ad.vector import value_and_gradient

moderate = st.floats(min_value=-5.0, max_value=5.0, allow_nan=False, allow_infinity=False)


class TestDerivative:
    @given(moderate)
    def test_polynomial(self, x):
        assert derivative(lambda v: 3 * v * v + 2 * v + 1, x) == pytest.approx(6 * x + 2, rel=1e-9, abs=1e-9)

    def test_constant_function_returns_zero(self):
        assert derivative(lambda v: 7.0, 2.0) == 0.0


class TestGradient:
    def test_quadratic_form(self):
        def f(x, y):
            return x * x + 3.0 * x * y + 2.0 * y * y

        grad = gradient(f, [1.0, 2.0])
        assert grad == pytest.approx([2 * 1 + 3 * 2, 3 * 1 + 4 * 2])

    def test_value_and_gradient(self):
        value, grad = value_and_gradient(lambda x, y: x * y, [3.0, 4.0])
        assert value == 12.0
        assert grad == pytest.approx([4.0, 3.0])

    def test_constant_gives_zero_gradient(self):
        assert np.allclose(gradient(lambda x, y: 5.0, [1.0, 2.0]), 0.0)

    @given(moderate, moderate)
    def test_electrostatic_coenergy_gradient(self, v, x):
        """Gradient of the Table 2 co-energy matches the Table 3 closed forms."""
        eps_a = 8.8542e-12 * 1e-4
        d = 0.15e-3

        def coenergy(voltage, displacement):
            return 0.5 * eps_a / (d + displacement) * voltage * voltage

        x = x * 1e-5  # keep |x| << d
        grad = gradient(coenergy, [v, x])
        charge_expected = eps_a / (d + x) * v
        force_expected = -0.5 * eps_a * v * v / (d + x) ** 2
        assert grad[0] == pytest.approx(charge_expected, rel=1e-9, abs=1e-18)
        assert grad[1] == pytest.approx(force_expected, rel=1e-9, abs=1e-18)


class TestJacobian:
    def test_linear_map(self):
        def f(x, y):
            return (2.0 * x + y, x - 3.0 * y)

        jac = jacobian(f, [1.0, 1.0])
        assert jac == pytest.approx(np.array([[2.0, 1.0], [1.0, -3.0]]))

    def test_mixed_constant_rows(self):
        def f(x, y):
            return (x * y, 7.0)

        jac = jacobian(f, [2.0, 3.0])
        assert jac[0] == pytest.approx([3.0, 2.0])
        assert jac[1] == pytest.approx([0.0, 0.0])

    def test_empty_output(self):
        assert jacobian(lambda x: (), [1.0]).shape == (0, 1)


class TestHessian:
    def test_quadratic_exact(self):
        def f(x, y):
            return x * x + 3.0 * x * y + 2.0 * y * y

        hess = hessian(f, [0.3, -0.2])
        assert hess == pytest.approx(np.array([[2.0, 3.0], [3.0, 4.0]]), rel=1e-5)

    def test_symmetry(self):
        def f(x, y, z):
            return math.e ** 0 * x * y * z + x * x * y

        hess = hessian(f, [1.0, 2.0, 3.0])
        assert np.allclose(hess, hess.T)

    def test_trig_function(self):
        hess = hessian(lambda x: math.sin(0) + x * x * x, [2.0])
        assert hess[0, 0] == pytest.approx(12.0, rel=1e-4)
