"""Tests for the dual-aware elementary functions."""

from __future__ import annotations

import math

import pytest
from hypothesis import given, strategies as st

from repro.ad import (
    Dual,
    absolute,
    acos,
    asin,
    atan,
    cos,
    cosh,
    exp,
    hypot,
    log,
    maximum,
    minimum,
    seed,
    sign,
    sin,
    sinh,
    sqrt,
    tan,
    tanh,
    where,
)

moderate = st.floats(min_value=-20.0, max_value=20.0, allow_nan=False, allow_infinity=False)
positive = st.floats(min_value=1e-3, max_value=1e3, allow_nan=False, allow_infinity=False)
unit_open = st.floats(min_value=-0.99, max_value=0.99)


def numeric_derivative(fn, x, h=1e-6):
    return (fn(x + h) - fn(x - h)) / (2.0 * h)


class TestPlainNumbers:
    """Functions on plain floats delegate to math."""

    @given(positive)
    def test_sqrt(self, x):
        assert sqrt(x) == pytest.approx(math.sqrt(x))

    @given(moderate)
    def test_exp_sin_cos(self, x):
        assert exp(x) == pytest.approx(math.exp(x))
        assert sin(x) == pytest.approx(math.sin(x))
        assert cos(x) == pytest.approx(math.cos(x))

    def test_hypot_plain(self):
        assert hypot(3.0, 4.0) == pytest.approx(5.0)


class TestDualDerivatives:
    """AD derivatives match central finite differences."""

    @pytest.mark.parametrize("fn,domain", [
        (sqrt, 2.0), (exp, 0.7), (log, 3.0), (sin, 1.1), (cos, 0.4), (tan, 0.5),
        (sinh, 0.8), (cosh, 0.8), (tanh, 0.3), (atan, 2.0), (asin, 0.4), (acos, 0.3),
    ])
    def test_against_finite_difference(self, fn, domain):
        ad_derivative = fn(seed(domain)).partial()
        fd_derivative = numeric_derivative(lambda v: float(fn(v)), domain)
        assert ad_derivative == pytest.approx(fd_derivative, rel=1e-5, abs=1e-8)

    @given(positive)
    def test_sqrt_derivative_formula(self, x):
        assert sqrt(seed(x)).partial() == pytest.approx(0.5 / math.sqrt(x), rel=1e-9)

    @given(moderate)
    def test_exp_derivative_is_value(self, x):
        result = exp(seed(x))
        assert result.partial() == pytest.approx(result.value, rel=1e-12)

    @given(unit_open)
    def test_asin_acos_derivatives_opposite(self, x):
        assert asin(seed(x)).partial() == pytest.approx(-acos(seed(x)).partial(), rel=1e-9)

    def test_chain_rule_composition(self):
        x = seed(0.3)
        result = sin(exp(x * x))
        inner = math.exp(0.09)
        expected = math.cos(inner) * inner * 2 * 0.3
        assert result.partial() == pytest.approx(expected, rel=1e-9)

    def test_hypot_dual(self):
        x = seed(3.0)
        result = hypot(x, 4.0)
        assert result.value == pytest.approx(5.0)
        assert result.partial() == pytest.approx(3.0 / 5.0)


class TestSelectionFunctions:
    def test_sign(self):
        assert sign(seed(-2.0)) == -1.0
        assert sign(3.0) == 1.0
        assert sign(0.0) == 0.0

    def test_absolute(self):
        assert absolute(-4.0) == 4.0
        assert absolute(seed(-4.0)).value == 4.0

    def test_minimum_maximum_pick_active_branch_derivative(self):
        x, y = seed(1.0), Dual(2.0, [5.0])
        assert minimum(x, y) is x
        assert maximum(x, y) is y
        assert minimum(3.0, seed(1.0)).partial() == 1.0

    def test_where(self):
        assert where(True, 1.0, 2.0) == 1.0
        assert where(0, 1.0, 2.0) == 2.0
