"""Tests for the ReducedModel state-space macromodel."""

from __future__ import annotations

import numpy as np
import pytest

from repro.errors import FEMError
from repro.fem import SpringMassChain
from repro.rom import ReducedModel, harmonic_error, rom_from_chain


@pytest.fixture(scope="module")
def chain():
    return SpringMassChain(masses=(1e-4, 2e-4, 1.5e-4),
                           stiffnesses=(200.0, 150.0, 120.0),
                           dampings=(0.05, 0.02, 0.03))


@pytest.fixture(scope="module")
def full_order_rom(chain):
    # Full-order "reduction": must be an exact change of coordinates.
    return rom_from_chain(chain, drive_dof=-1)


class TestReducedModelBasics:
    def test_shapes_and_properties(self, full_order_rom):
        rom = full_order_rom
        assert rom.order == 3
        assert rom.num_inputs == 1
        assert rom.num_outputs == 3
        assert rom.basis.shape == (3, 3)

    def test_validation_rejects_mismatched_shapes(self):
        eye = np.eye(2)
        with pytest.raises(FEMError):
            ReducedModel(M=eye, C=eye, K=np.eye(3), B=np.ones(2), L=np.ones((1, 2)))
        with pytest.raises(FEMError):
            ReducedModel(M=eye, C=eye, K=eye, B=np.ones(3), L=np.ones((1, 2)))
        with pytest.raises(FEMError):
            ReducedModel(M=eye, C=eye, K=eye, B=np.ones(2), L=np.ones((1, 3)))

    def test_first_order_descriptor_consistent(self, full_order_rom):
        a, b, c, e = full_order_rom.first_order()
        r = full_order_rom.order
        assert a.shape == e.shape == (2 * r, 2 * r)
        assert b.shape == (2 * r, 1)
        assert c.shape == (3, 2 * r)
        # Eigenvalues of (A, E) must be the second-order poles: check that
        # the DC gain of the descriptor system matches dc_gain().
        gain = -c @ np.linalg.solve(a, b)
        np.testing.assert_allclose(gain, full_order_rom.dc_gain(), rtol=1e-9)

    def test_dc_gain_matches_static_compliance(self, chain, full_order_rom):
        gain = full_order_rom.dc_gain()
        assert gain[-1, 0] == pytest.approx(chain.static_compliance(), rel=1e-9)

    def test_modal_parameters_match_chain_frequencies(self, chain, full_order_rom):
        omega_sq, _ = full_order_rom.modal_parameters()
        expected = (2.0 * np.pi * chain.natural_frequencies()) ** 2
        np.testing.assert_allclose(np.sort(omega_sq), expected, rtol=1e-8)


class TestHarmonic:
    def test_full_order_harmonic_is_exact(self, chain, full_order_rom):
        mass, damping, stiffness = chain.matrices()
        freqs = np.linspace(20.0, 400.0, 25)
        errors = harmonic_error(full_order_rom, mass, damping, stiffness,
                                freqs, drive_dof=-1)
        assert np.max(errors) < 1e-9

    def test_harmonic_output_shape(self, full_order_rom):
        response = full_order_rom.harmonic([50.0, 100.0])
        assert response.shape == (2, 3)
        assert response.dtype == complex

    def test_empty_grid_rejected(self, full_order_rom):
        with pytest.raises(FEMError):
            full_order_rom.harmonic([])

    def test_subset_output_rom_lifts_through_basis(self, chain):
        # A subset-output ROM that kept its basis is compared by lifting, so
        # the default all-DOF probe works and the metric ignores L entirely
        # (a weighted output map must not skew the error).
        mass, damping, stiffness = chain.matrices()
        rom = rom_from_chain(chain, drive_dof=-1, output_dofs=[0])
        errors = harmonic_error(rom, mass, damping, stiffness, [50.0, 100.0],
                                drive_dof=-1)
        assert np.max(errors) < 1e-9  # full-order reduction is exact
        rom.L = 2.0 * rom.L  # a scaled output map must not change the metric
        scaled = harmonic_error(rom, mass, damping, stiffness, [50.0, 100.0],
                                drive_dof=-1)
        assert np.max(scaled) < 1e-9

    def test_basisless_subset_rom_requires_explicit_probe_dofs(self, chain):
        # Without a basis the row->DOF mapping is positional and cannot be
        # inferred: omitting output_dofs must fail loudly instead of
        # comparing against the wrong DOF.
        mass, damping, stiffness = chain.matrices()
        rom = rom_from_chain(chain, drive_dof=-1, output_dofs=[-1])
        rom.basis = None
        with pytest.raises(FEMError):
            harmonic_error(rom, mass, damping, stiffness, [50.0, 100.0],
                           drive_dof=-1)
        errors = harmonic_error(rom, mass, damping, stiffness, [50.0, 100.0],
                                drive_dof=-1, output_dofs=[-1])
        assert np.max(errors) < 1e-9


class TestTransient:
    def test_step_settles_to_static_deflection(self, chain, full_order_rom):
        # Damped chain: the step response must settle onto K^-1 F.
        times, outputs = full_order_rom.transient(4.0, 1e-3, force=2.0)
        assert times[0] == 0.0 and outputs[0, -1] == 0.0
        assert outputs[-1, -1] == pytest.approx(
            2.0 * chain.static_compliance(), rel=1e-3)

    def test_time_grid_and_shapes(self, full_order_rom):
        times, outputs = full_order_rom.transient(0.1, 0.01)
        assert times.shape[0] == outputs.shape[0] == 11
        assert outputs.shape[1] == 3

    def test_invalid_steps_rejected(self, full_order_rom):
        with pytest.raises(FEMError):
            full_order_rom.transient(-1.0, 0.1)
        with pytest.raises(FEMError):
            full_order_rom.transient(1.0, 2.0)


class TestLift:
    def test_lift_recovers_full_static_solution(self, chain, full_order_rom):
        mass, _, stiffness = chain.matrices()
        force = np.zeros(chain.size)
        force[-1] = 1.0
        q_static = np.linalg.solve(full_order_rom.K, full_order_rom.B[:, 0])
        np.testing.assert_allclose(full_order_rom.lift(q_static),
                                   np.linalg.solve(stiffness, force),
                                   rtol=1e-9)

    def test_lift_without_basis_raises(self):
        rom = ReducedModel(M=np.eye(1), C=np.zeros((1, 1)), K=np.eye(1),
                           B=np.ones(1), L=np.ones((1, 1)))
        with pytest.raises(FEMError):
            rom.lift(np.ones(1))
