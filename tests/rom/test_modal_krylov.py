"""Tests for the modal-truncation and Krylov reduction builders."""

from __future__ import annotations

import numpy as np
import pytest

from repro.errors import FEMError
from repro.fem import CantileverBeam
from repro.rom import harmonic_error, krylov_rom, modal_rom, rom_from_beam

RAYLEIGH = (0.0, 1e-9)


@pytest.fixture(scope="module")
def beam():
    return CantileverBeam(length=300e-6, width=20e-6, thickness=2e-6,
                          youngs_modulus=160e9, density=2330.0, elements=30)


@pytest.fixture(scope="module")
def beam_matrices(beam):
    stiffness, mass = beam.assemble()
    damping = RAYLEIGH[0] * mass + RAYLEIGH[1] * stiffness
    return mass, damping, stiffness


@pytest.fixture(scope="module")
def probe_grid(beam):
    f1 = beam.analytic_first_frequency()
    return np.linspace(0.2 * f1, 5.0 * f1, 40)


class TestModalRom:
    def test_acceptance_order6_within_1pct_at_95pct_of_probes(
            self, beam, beam_matrices, probe_grid):
        # The PR acceptance criterion: order >= 6, <= 1% relative error at
        # >= 95% of probe frequencies on the beam fixture.
        mass, damping, stiffness = beam_matrices
        rom = rom_from_beam(beam, order=6, rayleigh=RAYLEIGH)
        errors = harmonic_error(rom, mass, damping, stiffness, probe_grid,
                                drive_dof=-2, output_dofs=[-2])
        assert np.mean(errors <= 0.01) >= 0.95

    def test_static_correction_fixes_antiresonance(self, beam, beam_matrices,
                                                   probe_grid):
        mass, damping, stiffness = beam_matrices
        plain = modal_rom(mass, stiffness, order=6,
                          inputs=stiffness.shape[0] - 2, rayleigh=RAYLEIGH,
                          static_correction=False)
        corrected = modal_rom(mass, stiffness, order=6,
                              inputs=stiffness.shape[0] - 2, rayleigh=RAYLEIGH)
        err_plain = harmonic_error(plain, mass, damping, stiffness,
                                   probe_grid, drive_dof=-2, output_dofs=[-2])
        err_corr = harmonic_error(corrected, mass, damping, stiffness,
                                  probe_grid, drive_dof=-2, output_dofs=[-2])
        assert np.max(err_corr) < 1e-4
        assert np.max(err_corr) < 0.01 * np.max(err_plain)

    def test_dc_gain_matches_tip_compliance(self, beam):
        rom = rom_from_beam(beam, order=6)
        stiffness, _ = beam.assemble()
        assert rom.dc_gain()[0 if rom.num_outputs == 1 else -2, 0] \
            == pytest.approx(1.0 / beam.tip_stiffness(), rel=1e-6)

    def test_modal_frequencies_match_beam(self, beam, beam_matrices):
        mass, _, stiffness = beam_matrices
        rom = modal_rom(mass, stiffness, order=4, static_correction=False,
                        inputs=stiffness.shape[0] - 2)
        omega_sq, _ = rom.modal_parameters()
        expected = (2.0 * np.pi * beam.natural_frequencies(4)) ** 2
        np.testing.assert_allclose(omega_sq, expected, rtol=1e-8)

    def test_rayleigh_and_damping_matrix_are_exclusive(self, beam_matrices):
        mass, damping, stiffness = beam_matrices
        with pytest.raises(FEMError):
            modal_rom(mass, stiffness, damping, rayleigh=(1.0, 0.0))

    def test_order_bounds(self, beam_matrices):
        mass, _, stiffness = beam_matrices
        with pytest.raises(FEMError):
            modal_rom(mass, stiffness, order=0)
        with pytest.raises(FEMError):
            modal_rom(mass, stiffness, order=mass.shape[0] + 1)

    def test_sparse_matrices_accepted(self, beam, beam_matrices):
        import scipy.sparse as sp

        mass, _, stiffness = beam_matrices
        rom = modal_rom(sp.csr_matrix(mass), sp.csr_matrix(stiffness),
                        order=6, inputs=mass.shape[0] - 2)
        assert rom.dc_gain()[-2, 0] == pytest.approx(
            1.0 / beam.tip_stiffness(), rel=1e-6)


class TestKrylovRom:
    def test_zero_expansion_matches_statics_exactly(self, beam, beam_matrices):
        mass, _, stiffness = beam_matrices
        rom = krylov_rom(mass, stiffness, order=6,
                         inputs=mass.shape[0] - 2,
                         outputs=mass.shape[0] - 2)
        assert rom.dc_gain()[0, 0] == pytest.approx(
            1.0 / beam.tip_stiffness(), rel=1e-9)

    def test_accurate_around_expansion_points(self, beam, beam_matrices,
                                              probe_grid):
        mass, damping, stiffness = beam_matrices
        f1 = beam.analytic_first_frequency()
        rom = krylov_rom(mass, stiffness, damping=damping, order=8,
                         expansion_freqs=(0.0, 2.0 * f1),
                         inputs=mass.shape[0] - 2)
        assert rom.order == 8  # Arnoldi must deliver the full requested basis
        errors = harmonic_error(rom, mass, damping, stiffness, probe_grid,
                                drive_dof=-2)
        assert np.max(errors) < 1e-3

    def test_resolves_first_resonance(self, beam, beam_matrices):
        mass, _, stiffness = beam_matrices
        rom = krylov_rom(mass, stiffness, order=6,
                         expansion_freqs=(0.0, beam.analytic_first_frequency()),
                         inputs=mass.shape[0] - 2)
        omega_sq, _ = rom.modal_parameters()
        f_ritz = np.sqrt(np.min(omega_sq)) / (2.0 * np.pi)
        assert f_ritz == pytest.approx(float(beam.natural_frequencies(1)[0]),
                                       rel=1e-6)

    def test_requires_low_rank_inputs(self, beam_matrices):
        mass, _, stiffness = beam_matrices
        with pytest.raises(FEMError):
            krylov_rom(mass, stiffness, order=4)  # identity input map

    def test_every_expansion_point_contributes(self, beam, beam_matrices):
        # Regression: the order budget must be split across expansion points,
        # not consumed by the early ones with the later ones silently dropped.
        mass, damping, stiffness = beam_matrices
        f1 = beam.analytic_first_frequency()
        high = 6.0 * f1
        rom = krylov_rom(mass, stiffness, damping=damping, order=4,
                         expansion_freqs=(0.0, 2.0 * f1, high),
                         inputs=mass.shape[0] - 2)
        near_high = np.linspace(0.9 * high, 1.1 * high, 10)
        errors = harmonic_error(rom, mass, damping, stiffness, near_high,
                                drive_dof=-2)
        assert np.max(errors) < 0.01  # the high shift was actually used

    def test_order_must_cover_expansion_points(self, beam_matrices):
        mass, _, stiffness = beam_matrices
        with pytest.raises(FEMError):
            krylov_rom(mass, stiffness, order=2,
                       expansion_freqs=(0.0, 1e4, 1e5),
                       inputs=mass.shape[0] - 2)

    def test_multi_input_order_is_honoured(self, beam_matrices):
        # Regression: an order that does not divide the input count must not
        # silently shrink the delivered basis.
        mass, _, stiffness = beam_matrices
        n = mass.shape[0]
        inputs = np.zeros((n, 2))
        inputs[n - 2, 0] = 1.0  # tip deflection
        inputs[n - 1, 1] = 1.0  # tip rotation
        rom = krylov_rom(mass, stiffness, order=5, inputs=inputs)
        assert rom.order == 5

    def test_basis_is_orthonormal(self, beam_matrices):
        mass, _, stiffness = beam_matrices
        rom = krylov_rom(mass, stiffness, order=5,
                         inputs=mass.shape[0] - 2)
        np.testing.assert_allclose(rom.basis.T @ rom.basis, np.eye(rom.order),
                                   atol=1e-10)

    def test_empty_expansion_rejected(self, beam_matrices):
        mass, _, stiffness = beam_matrices
        with pytest.raises(FEMError):
            krylov_rom(mass, stiffness, order=4, expansion_freqs=(),
                       inputs=0)
