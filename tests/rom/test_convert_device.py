"""Tests for the ROM circuit device and the conversion/campaign bridges."""

from __future__ import annotations

import numpy as np
import pytest

from repro.campaign import CampaignRunner, GridSweep, ResultCache
from repro.circuit import ACAnalysis, Circuit, OperatingPointAnalysis, Sine, \
    TransientAnalysis
from repro.errors import FEMError
from repro.fem import CantileverBeam, SpringMassChain
from repro.rom import (BeamROMEvaluator, rom_device, rom_from_beam,
                       rom_from_chain, rom_from_matrices)


@pytest.fixture(scope="module")
def chain():
    return SpringMassChain(masses=(1e-4, 2e-4, 1.5e-4),
                           stiffnesses=(200.0, 150.0, 120.0),
                           dampings=(0.05, 0.02, 0.03))


@pytest.fixture(scope="module")
def chain_rom(chain):
    return rom_from_chain(chain, drive_dof=-1, output_dofs=[-1])


class TestBuilders:
    def test_rom_from_matrices_method_dispatch(self, chain):
        mass, damping, stiffness = chain.matrices()
        modal = rom_from_matrices(mass, stiffness, damping, order=3)
        krylov = rom_from_matrices(mass, stiffness, damping, order=3,
                                   method="krylov")
        assert modal.method == "modal" and krylov.method == "krylov"
        np.testing.assert_allclose(modal.dc_gain(), krylov.dc_gain(),
                                   rtol=1e-8)
        with pytest.raises(FEMError):
            rom_from_matrices(mass, stiffness, method="pod")

    def test_rom_from_beam_default_drive_is_tip(self):
        beam = CantileverBeam(300e-6, 20e-6, 2e-6, 160e9, 2330.0, elements=12)
        rom = rom_from_beam(beam, order=5)
        assert rom.dc_gain()[-2, 0] == pytest.approx(
            1.0 / beam.tip_stiffness(), rel=1e-6)

    def test_rom_device_requires_single_input(self, chain):
        mass, damping, stiffness = chain.matrices()
        multi = rom_from_matrices(mass, stiffness, damping, order=3,
                                  drive_dof=0)
        multi.B = np.ones((3, 2))  # fake a two-input model
        circuit = Circuit("x")
        with pytest.raises(FEMError):
            rom_device("X1", multi, circuit.mechanical_node("m"),
                       circuit.ground)


class TestROMDeviceAnalyses:
    def test_operating_point_static_deflection(self, chain, chain_rom):
        circuit = Circuit("rom op")
        circuit.force_source("F1", "m", "0", 1.0)
        circuit.rom_block("X1", chain_rom, ("m", "0"))
        op = OperatingPointAnalysis(circuit).run()
        # DC: node velocity is zero, recorded displacement is the static one.
        assert op["v(m)"] == pytest.approx(0.0, abs=1e-9)
        assert op["y0(X1)"] == pytest.approx(chain.static_compliance(),
                                             rel=1e-9)

    def test_ac_matches_full_harmonic_solve(self, chain, chain_rom):
        mass, damping, stiffness = chain.matrices()
        circuit = Circuit("rom ac")
        circuit.force_source("F1", "m", "0", 0.0, ac=1.0)
        circuit.rom_block("X1", chain_rom, ("m", "0"))
        freqs = np.linspace(50.0, 400.0, 25)
        ac = ACAnalysis(circuit, freqs).run()
        force = np.zeros(chain.size, dtype=complex)
        force[-1] = 1.0
        reference = []
        for f in freqs:
            omega = 2.0 * np.pi * f
            dynamic = stiffness + 1j * omega * damping - omega * omega * mass
            reference.append(1j * omega * np.linalg.solve(dynamic, force)[-1])
        reference = np.asarray(reference)
        np.testing.assert_allclose(ac["v(m)"], reference, rtol=1e-8)

    def test_transient_matches_reduced_integration(self, chain_rom):
        f0 = 80.0
        circuit = Circuit("rom tran")
        circuit.force_source("F1", "m", "0", Sine(amplitude=1.0, frequency=f0))
        circuit.rom_block("X1", chain_rom, ("m", "0"))
        result = TransientAnalysis(circuit, t_stop=0.05, t_step=2e-5).run()
        t_ref, y_ref = chain_rom.transient(
            0.05, 2e-5, force=lambda t: np.sin(2.0 * np.pi * f0 * t))
        device_x = result.signal("y0(X1)")
        reference = np.interp(result.time, t_ref, y_ref[:, 0])
        scale = np.max(np.abs(reference))
        assert np.max(np.abs(device_x - reference)) < 1e-3 * scale

    def test_describe_mentions_order_and_method(self, chain_rom):
        circuit = Circuit("rom describe")
        circuit.force_source("F1", "m", "0", 1.0)
        device = circuit.rom_block("X1", chain_rom, ("m", "0"))
        assert "order=3" in device.describe()
        assert "modal" in device.describe()

    def test_port_count_must_match_inputs(self, chain_rom):
        circuit = Circuit("rom ports")
        from repro.circuit import ROMDevice
        from repro.errors import DeviceError

        m = circuit.mechanical_node("m")
        k = circuit.mechanical_node("k")
        with pytest.raises(DeviceError):
            ROMDevice("X1", chain_rom, [(m, circuit.ground),
                                        (k, circuit.ground)])


class TestBeamROMEvaluator:
    EVALUATOR = BeamROMEvaluator(
        length=300e-6, width=20e-6, thickness=2e-6, youngs_modulus=160e9,
        density=2330.0, elements=20, f_min=5e3, f_max=1.5e5, probe_points=20)

    def test_order_sweep_converges(self):
        result = CampaignRunner().run(GridSweep(order=[2, 4, 8]),
                                      self.EVALUATOR)
        errors = result.column("max_error")
        assert errors[2] < errors[0]
        assert result.column("within_1pct")[2] >= 0.95

    def test_rows_are_cacheable(self, tmp_path):
        cache = ResultCache(tmp_path)
        runner = CampaignRunner(cache=cache)
        spec = GridSweep(order=[3, 5])
        first = runner.run(spec, self.EVALUATOR)
        second = runner.run(spec, self.EVALUATOR)
        assert first.num_cached == 0 and second.num_cached == 2
        np.testing.assert_allclose(first.column("max_error"),
                                   second.column("max_error"))

    def test_resonance_output_close_to_analytic(self):
        beam = CantileverBeam(300e-6, 20e-6, 2e-6, 160e9, 2330.0, elements=20)
        result = CampaignRunner().run(GridSweep(order=[6]), self.EVALUATOR)
        assert result.column("resonance_hz")[0] == pytest.approx(
            beam.analytic_first_frequency(), rel=1e-2)


class TestEvaluatorMatrixCache:
    EVALUATOR = BeamROMEvaluator(
        length=280e-6, width=18e-6, thickness=2e-6, youngs_modulus=160e9,
        density=2330.0, elements=16, f_min=5e3, f_max=1.2e5, probe_points=15)

    def test_matrices_assembled_once_per_geometry(self):
        from repro.rom.convert import _assembled_beam, _reference_response

        _assembled_beam.cache_clear()
        _reference_response.cache_clear()
        rows = [self.EVALUATOR({"order": order}) for order in (2, 4, 6)]
        assert _assembled_beam.cache_info().misses == 1
        assert _assembled_beam.cache_info().hits >= 2
        assert _reference_response.cache_info().misses == 1
        assert rows[2]["max_error"] <= rows[0]["max_error"]

    def test_cached_reference_matches_direct_scoring(self):
        from repro.fem.structural import CantileverBeam
        from repro.rom import harmonic_error, rom_from_matrices
        from repro.rom.convert import _assembled_beam, _reference_response

        _assembled_beam.cache_clear()
        _reference_response.cache_clear()
        row = self.EVALUATOR({"order": 5})
        beam = CantileverBeam(280e-6, 18e-6, 2e-6, 160e9, 2330.0, elements=16)
        stiffness, mass = beam.assemble()
        rayleigh = (0.0, 1e-9)
        damping = rayleigh[1] * stiffness
        rom = rom_from_matrices(mass, stiffness, order=5, drive_dof=-2,
                                output_dofs=[-2], rayleigh=rayleigh)
        probe = np.linspace(5e3, 1.2e5, 15)
        errors = harmonic_error(rom, mass, damping, stiffness, probe,
                                drive_dof=-2, output_dofs=[-2])
        assert row["max_error"] == pytest.approx(float(np.max(errors)),
                                                 rel=1e-9)

    def test_geometry_change_is_a_cache_miss(self):
        from dataclasses import replace

        from repro.rom.convert import _assembled_beam

        _assembled_beam.cache_clear()
        self.EVALUATOR({"order": 3})
        replace(self.EVALUATOR, thickness=2.5e-6)({"order": 3})
        assert _assembled_beam.cache_info().misses == 2
