"""ROM output sensitivities through a frozen projection basis vs FD."""

from __future__ import annotations

import numpy as np
import pytest

from repro.errors import FEMError
from repro.fem import CantileverBeam
from repro.rom import (ReducedModel, dc_gain_sensitivities,
                       project_matrix_derivatives, rom_from_matrices,
                       rom_output_sensitivities)
from repro.fem.sensitivity import matrix_derivatives

BASE = {"thickness": 2e-6, "length": 300e-6}


def assemble_mck(params):
    beam = CantileverBeam(length=params["length"], width=20e-6,
                          thickness=params["thickness"],
                          youngs_modulus=160e9, density=2330.0, elements=10)
    stiffness, mass = beam.assemble()
    return mass, 1e-9 * stiffness, stiffness


@pytest.fixture(scope="module")
def rom():
    mass, _, stiffness = assemble_mck(BASE)
    return rom_from_matrices(mass, stiffness, order=6, method="modal",
                             drive_dof=-2, output_dofs=[-2],
                             rayleigh=(0.0, 1e-9))


def frozen_basis_model(rom, params) -> ReducedModel:
    """Re-project perturbed full matrices through the *same* basis."""
    mass, damping, stiffness = assemble_mck(params)
    basis = rom.basis
    return ReducedModel(basis.T @ mass @ basis, basis.T @ damping @ basis,
                        basis.T @ stiffness @ basis, rom.B, rom.L,
                        basis=basis)


class TestDCGain:
    def test_matches_frozen_basis_fd(self, rom):
        result = rom_output_sensitivities(rom, assemble_mck, BASE)

        def gain(params):
            return frozen_basis_model(rom, params).dc_gain()[0, 0]

        for k, name in enumerate(BASE):
            step = 1e-5 * BASE[name]
            up = dict(BASE)
            up[name] += step
            down = dict(BASE)
            down[name] -= step
            fd = (gain(up) - gain(down)) / (2.0 * step)
            assert result.matrix[0, k] == pytest.approx(fd, rel=2e-4)
        assert result.value("y0") == pytest.approx(rom.dc_gain()[0, 0],
                                                   rel=1e-12)

    def test_adjoint_direct_agree(self, rom):
        derivatives = project_matrix_derivatives(
            rom, matrix_derivatives(assemble_mck, BASE))
        adjoint = dc_gain_sensitivities(rom, derivatives, tuple(BASE),
                                        method="adjoint")
        direct = dc_gain_sensitivities(rom, derivatives, tuple(BASE),
                                       method="direct")
        np.testing.assert_allclose(adjoint.matrix, direct.matrix, rtol=1e-10)


class TestHarmonicOutputs:
    FREQUENCIES = [1e4, 5e4]

    def test_matches_frozen_basis_fd(self, rom):
        result = rom_output_sensitivities(rom, assemble_mck, BASE,
                                          frequencies=self.FREQUENCIES)

        def response(params, frequency):
            return frozen_basis_model(rom, params).harmonic([frequency])[0, 0]

        for f, frequency in enumerate(self.FREQUENCIES):
            for k, name in enumerate(BASE):
                step = 1e-5 * BASE[name]
                up = dict(BASE)
                up[name] += step
                down = dict(BASE)
                down[name] -= step
                fd = (response(up, frequency) - response(down, frequency)) \
                    / (2.0 * step)
                assert result.matrix[f, 0, k] == pytest.approx(fd, rel=2e-4)

    def test_values_match_rom_harmonic(self, rom):
        result = rom_output_sensitivities(rom, assemble_mck, BASE,
                                          frequencies=self.FREQUENCIES)
        reference = rom.harmonic(self.FREQUENCIES)
        np.testing.assert_allclose(result.values, reference, rtol=1e-10)


class TestGuards:
    def test_basis_less_model_rejected(self):
        model = ReducedModel(np.eye(2), np.zeros((2, 2)), np.eye(2),
                             np.ones(2), np.eye(2))
        with pytest.raises(FEMError, match="no projection basis"):
            project_matrix_derivatives(model, [(np.eye(2),) * 3])

    def test_mismatched_params_rejected(self, rom):
        derivatives = project_matrix_derivatives(
            rom, matrix_derivatives(assemble_mck, BASE))
        with pytest.raises(FEMError, match="align"):
            dc_gain_sensitivities(rom, derivatives, ("only_one",))
