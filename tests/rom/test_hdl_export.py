"""Tests for the ROM -> HDL-A Foster-chain export and its round trip."""

from __future__ import annotations

import numpy as np
import pytest

from repro.circuit import ACAnalysis, Circuit
from repro.errors import ExtractionError
from repro.fem import SpringMassChain
from repro.hdl import instantiate, parse
from repro.pxt import generate_rom_macromodel
from repro.rom import ReducedModel, rom_from_chain, rom_to_hdl

# Rayleigh-damped chain: diagonal modal damping, so the Foster synthesis is
# exact (no off-diagonal damping is discarded).
ALPHA, BETA = 0.5, 1e-5


@pytest.fixture(scope="module")
def chain_system():
    chain = SpringMassChain(masses=(1e-4, 2e-4, 1.5e-4),
                            stiffnesses=(200.0, 150.0, 120.0))
    mass, _, stiffness = chain.matrices()
    damping = ALPHA * mass + BETA * stiffness
    return mass, damping, stiffness


@pytest.fixture(scope="module")
def rayleigh_rom(chain_system):
    from repro.rom import rom_from_matrices

    mass, _, stiffness = chain_system
    return rom_from_matrices(mass, stiffness, order=3, drive_dof=-1,
                             output_dofs=[-1], rayleigh=(ALPHA, BETA))


class TestGeneration:
    def test_source_structure(self, rayleigh_rom):
        source = rom_to_hdl("romchain", rayleigh_rom)
        assert "ENTITY romchain IS" in source
        assert "p0, p1, p2, p3 : mechanical1" in source
        assert source.count("%=") == 3  # one Foster section per mode
        assert "integ(" in source and "ddt(" in source

    def test_parses_and_analyzes(self, rayleigh_rom):
        module = parse(rom_to_hdl("romchain", rayleigh_rom))
        assert module.entity("romchain") is not None

    def test_rigid_body_mode_rejected(self):
        # A free mass (K = 0) has no spring to synthesize.
        rom = ReducedModel(M=np.eye(1), C=np.zeros((1, 1)),
                           K=np.zeros((1, 1)), B=np.ones(1),
                           L=np.ones((1, 1)))
        with pytest.raises(ExtractionError):
            generate_rom_macromodel("free", rom)

    def test_uncoupled_input_rejected(self):
        rom = ReducedModel(M=np.eye(2), C=np.zeros((2, 2)),
                           K=np.diag([1.0, 4.0]), B=np.zeros(2),
                           L=np.eye(2))
        with pytest.raises(ExtractionError):
            generate_rom_macromodel("dead", rom)

    def test_decoupled_modes_are_dropped(self):
        # Only the first mode couples to the input: one section, two pins.
        rom = ReducedModel(M=np.eye(2), C=np.zeros((2, 2)),
                           K=np.diag([1.0, 4.0]), B=np.array([1.0, 0.0]),
                           L=np.eye(2))
        source = generate_rom_macromodel("partial", rom)
        assert "p0, p1 : mechanical1" in source
        assert source.count("%=") == 1


class TestRoundTrip:
    def test_ac_parity_with_reduced_model(self, chain_system, rayleigh_rom):
        source = rom_to_hdl("romchain", rayleigh_rom)
        module = parse(source)
        circuit = Circuit("hdl rom roundtrip")
        circuit.force_source("F1", "m", "0", 0.0, ac=1.0)
        pins = {"p0": circuit.mechanical_node("m"),
                "p1": circuit.mechanical_node("i1"),
                "p2": circuit.mechanical_node("i2"),
                "p3": circuit.ground}
        circuit.behavioral(instantiate(module, "romchain", name="X1",
                                       generics={}, pins=pins))
        freqs = np.linspace(40.0, 400.0, 20)
        ac = ACAnalysis(circuit, freqs).run()
        # v(m) must equal j*omega times the ROM's drive-point compliance.
        expected = 2j * np.pi * freqs * rayleigh_rom.harmonic(freqs)[:, 0]
        np.testing.assert_allclose(ac["v(m)"], expected, rtol=1e-6)

    def test_full_fem_parity(self, chain_system, rayleigh_rom):
        # HDL chain against the raw (M, C, K) harmonic solve: end-to-end
        # distillation error for a Rayleigh-damped structure.
        mass, damping, stiffness = chain_system
        source = rom_to_hdl("romchain", rayleigh_rom)
        module = parse(source)
        circuit = Circuit("hdl rom fem parity")
        circuit.force_source("F1", "m", "0", 0.0, ac=1.0)
        pins = {"p0": circuit.mechanical_node("m"),
                "p1": circuit.mechanical_node("i1"),
                "p2": circuit.mechanical_node("i2"),
                "p3": circuit.ground}
        circuit.behavioral(instantiate(module, "romchain", name="X1",
                                       generics={}, pins=pins))
        freqs = np.linspace(40.0, 400.0, 15)
        ac = ACAnalysis(circuit, freqs).run()
        force = np.zeros(mass.shape[0], dtype=complex)
        force[-1] = 1.0
        for value, f in zip(ac["v(m)"], freqs):
            omega = 2.0 * np.pi * f
            dynamic = stiffness + 1j * omega * damping - omega * omega * mass
            reference = 1j * omega * np.linalg.solve(dynamic, force)[-1]
            assert abs(value - reference) <= 1e-6 * abs(reference)
