"""Integration test: the figure-5 experiment end to end.

This is the headline claim of the paper: the nonlinear behavioral (HDL-A)
transducer model and the linearized equivalent circuit agree at the
linearization voltage (10 V), while the linear model overshoots below it
(5 V) and undershoots above it (15 V).
"""

from __future__ import annotations

import numpy as np
import pytest

from repro.circuit import SimulationOptions
from repro.system import run_figure5_comparison
from repro.system.comparison import measure_runtime_penalty


@pytest.fixture(scope="module")
def comparison():
    options = SimulationOptions(trtol=10.0)
    return run_figure5_comparison(amplitudes=(5.0, 10.0, 15.0), t_step=4e-4,
                                  options=options)


class TestFigure5:
    def test_agreement_at_linearization_voltage(self, comparison):
        run = comparison.run_for(10.0)
        assert run.plateau_ratio == pytest.approx(1.0, abs=0.05)

    def test_linear_model_overshoots_at_5V(self, comparison):
        run = comparison.run_for(5.0)
        assert run.linear_overshoots
        assert run.plateau_ratio == pytest.approx(2.0, rel=0.1)

    def test_linear_model_undershoots_at_15V(self, comparison):
        run = comparison.run_for(15.0)
        assert not run.linear_overshoots
        assert run.plateau_ratio == pytest.approx(2.0 / 3.0, rel=0.1)

    def test_behavioral_displacement_scales_quadratically(self, comparison):
        x5 = comparison.run_for(5.0).behavioral_plateau
        x10 = comparison.run_for(10.0).behavioral_plateau
        x15 = comparison.run_for(15.0).behavioral_plateau
        assert x10 / x5 == pytest.approx(4.0, rel=0.05)
        assert x15 / x5 == pytest.approx(9.0, rel=0.05)

    def test_bias_displacement_close_to_table4(self, comparison):
        run = comparison.run_for(10.0)
        assert run.behavioral_plateau == pytest.approx(1e-8, rel=0.05)

    def test_displacements_are_positive_as_in_the_paper_plot(self, comparison):
        for run in comparison.runs:
            assert run.behavioral_plateau > 0.0
            assert run.linearized_plateau > 0.0

    def test_ringing_visible_in_transients(self, comparison):
        """The under-critically damped resonator overshoots on the pulse edge."""
        run = comparison.run_for(10.0)
        signal = run.behavioral.signal("x(XDCR)")
        assert np.max(signal) > 1.2 * run.behavioral_plateau

    def test_table_rows_and_summary(self, comparison):
        rows = comparison.table_rows()
        assert len(rows) == 3
        assert {row["amplitude_V"] for row in rows} == {5.0, 10.0, 15.0}
        assert "runtime penalty" in comparison.summary()

    def test_behavioral_model_is_slower_than_linearized(self, comparison):
        assert comparison.behavioral_runtime > comparison.linearized_runtime


class TestRuntimePenalty:
    def test_measurement_returns_positive_penalty(self):
        data = measure_runtime_penalty(t_step=1e-3, repeats=1)
        assert data["behavioral_s"] > 0.0
        assert data["linearized_s"] > 0.0
        assert data["penalty"] > 1.0
