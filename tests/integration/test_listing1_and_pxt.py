"""Integration tests: Listing 1 through the HDL front-end, and the full
PXT workflow (FE extraction -> HDL generation -> system simulation)."""

from __future__ import annotations

import numpy as np
import pytest

from repro.circuit import Circuit, Pulse, SimulationOptions, TransientAnalysis
from repro.hdl import instantiate, parse
from repro.hdl.codegen import LISTING1_SOURCE
from repro.pxt import ParameterExtractor, generate_electrostatic_macromodel
from repro.pxt.macromodel import PiecewiseLinearModel
from repro.system import PAPER_PARAMETERS, build_behavioral_system, build_drive_waveform

OPTIONS = SimulationOptions(trtol=10.0)


def build_listing1_system(amplitude=10.0):
    """The figure-3 system with the transducer parsed from Listing 1."""
    circuit = Circuit("listing-1 system")
    drive = build_drive_waveform(amplitude)
    circuit.voltage_source("VS", "a", "0", drive)
    module = parse(LISTING1_SOURCE)
    device = instantiate(
        module, "eletran", name="XDCR",
        generics={"A": PAPER_PARAMETERS.area, "d": PAPER_PARAMETERS.gap,
                  "er": PAPER_PARAMETERS.epsilon_r},
        pins={"a": circuit.electrical_node("a"), "b": circuit.ground,
              "c": circuit.mechanical_node("m"), "e": circuit.ground})
    circuit.add(device)
    PAPER_PARAMETERS.resonator().add_to_circuit(circuit, "m")
    return circuit, drive


class TestListing1System:
    """The parsed HDL-A model must reproduce the Python behavioral model."""

    @pytest.fixture(scope="class")
    def results(self):
        listing_circuit, drive = build_listing1_system(10.0)
        t_stop = drive.delay + drive.rise + drive.width
        listing_result = TransientAnalysis(listing_circuit, t_stop=t_stop, t_step=4e-4,
                                           options=OPTIONS).run()
        python_circuit = build_behavioral_system(PAPER_PARAMETERS, drive)
        python_result = TransientAnalysis(python_circuit, t_stop=t_stop, t_step=4e-4,
                                          options=OPTIONS).run()
        return listing_result, python_result, drive

    def test_quasi_static_displacement_matches_table4(self, results):
        listing_result, _, drive = results
        plateau_time = drive.delay + drive.rise + drive.width
        x_final = listing_result.at("x(XDCR)", plateau_time)
        assert x_final == pytest.approx(1e-8, rel=0.05)

    def test_listing1_matches_python_behavioral_model(self, results):
        listing_result, python_result, drive = results
        probes = np.linspace(drive.delay, drive.delay + drive.rise + drive.width, 25)
        x_listing = listing_result.sample("x(XDCR)", probes)
        x_python = python_result.sample("x(XDCR)", probes)
        assert np.allclose(x_listing, x_python, rtol=2e-2, atol=1e-11)

    def test_mass_and_transducer_agree_on_displacement(self, results):
        listing_result, _, _ = results
        assert listing_result.final("x(res_m)") == pytest.approx(
            listing_result.final("x(XDCR)"), rel=1e-3)


class TestPXTWorkflow:
    """FE sweep -> macromodel -> generated HDL -> system simulation."""

    @pytest.fixture(scope="class")
    def generated_device_source(self):
        extractor = ParameterExtractor(area=PAPER_PARAMETERS.area, gap=PAPER_PARAMETERS.gap,
                                       nx=10, ny=8)
        displacements = sorted(np.linspace(-0.3 * PAPER_PARAMETERS.gap,
                                           0.3 * PAPER_PARAMETERS.gap, 9))
        capacitance = extractor.capacitance_model(displacements)
        force = PiecewiseLinearModel(
            tuple(displacements),
            tuple(extractor.solve_point(x, 10.0).force for x in displacements),
            quantity="force", unit="N")
        return generate_electrostatic_macromodel("pxtel", capacitance, force, 10.0)

    def test_generated_model_simulates_like_the_analytic_one(self, generated_device_source):
        module = parse(generated_device_source)
        circuit = Circuit("pxt system")
        drive = Pulse(0.0, 10.0, delay=2e-3, rise=2e-3, width=40e-3)
        circuit.voltage_source("VS", "a", "0", drive)
        device = instantiate(
            module, "pxtel", name="XDCR", generics={"vref": 10.0},
            pins={"a": circuit.electrical_node("a"), "b": circuit.ground,
                  "c": circuit.mechanical_node("m"), "e": circuit.ground})
        circuit.add(device)
        PAPER_PARAMETERS.resonator().add_to_circuit(circuit, "m")
        result = TransientAnalysis(circuit, t_stop=40e-3, t_step=4e-4,
                                   options=OPTIONS).run()
        assert result.final("x(res_m)") == pytest.approx(1e-8, rel=0.05)

    def test_generated_model_scales_quadratically_with_voltage(self, generated_device_source):
        module = parse(generated_device_source)
        finals = {}
        for amplitude in (5.0, 10.0):
            circuit = Circuit("pxt system")
            drive = Pulse(0.0, amplitude, delay=2e-3, rise=2e-3, width=40e-3)
            circuit.voltage_source("VS", "a", "0", drive)
            device = instantiate(
                module, "pxtel", name="XDCR", generics={"vref": 10.0},
                pins={"a": circuit.electrical_node("a"), "b": circuit.ground,
                      "c": circuit.mechanical_node("m"), "e": circuit.ground})
            circuit.add(device)
            PAPER_PARAMETERS.resonator().add_to_circuit(circuit, "m")
            result = TransientAnalysis(circuit, t_stop=40e-3, t_step=4e-4,
                                       options=OPTIONS).run()
            finals[amplitude] = result.final("x(res_m)")
        assert finals[10.0] / finals[5.0] == pytest.approx(4.0, rel=0.05)
