"""Shared fixtures for the test suite."""

from __future__ import annotations

import pytest

from repro.circuit import SimulationOptions
from repro.system.microsystem import PAPER_PARAMETERS, Table4Parameters
from repro.transducers import TransverseElectrostaticTransducer


@pytest.fixture
def paper_parameters() -> Table4Parameters:
    """The paper's Table 4 parameter set."""
    return PAPER_PARAMETERS


@pytest.fixture
def paper_transducer() -> TransverseElectrostaticTransducer:
    """The transverse electrostatic transducer with Table 4 geometry."""
    return PAPER_PARAMETERS.transducer()


@pytest.fixture
def fast_options() -> SimulationOptions:
    """Slightly relaxed solver options for quick transient tests."""
    return SimulationOptions(reltol=1e-3, trtol=10.0)
