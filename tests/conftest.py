"""Shared fixtures for the test suite."""

from __future__ import annotations

import os

import pytest

from repro.circuit import SimulationOptions
from repro.system.microsystem import PAPER_PARAMETERS, Table4Parameters
from repro.transducers import TransverseElectrostaticTransducer


@pytest.fixture
def paper_parameters() -> Table4Parameters:
    """The paper's Table 4 parameter set."""
    return PAPER_PARAMETERS


@pytest.fixture
def paper_transducer() -> TransverseElectrostaticTransducer:
    """The transverse electrostatic transducer with Table 4 geometry."""
    return PAPER_PARAMETERS.transducer()


@pytest.fixture
def fast_options() -> SimulationOptions:
    """Slightly relaxed solver options for quick transient tests."""
    return SimulationOptions(reltol=1e-3, trtol=10.0)


@pytest.fixture(autouse=True)
def telemetry_smoke_mode(monkeypatch):
    """``REPRO_TELEMETRY_SMOKE=1``: force full instrumentation everywhere.

    CI's telemetry-smoke job re-runs a subset of the suite with every
    :class:`SimulationOptions` instance coerced to ``telemetry="full"``,
    ``health_check=True`` and ``forensics=True``, proving the instrumented
    hot paths survive real workloads (sessions nest, so analyses opening
    their own sessions inside an already-forced one are fine).  Without the
    environment variable this fixture is a no-op; tests that assert
    telemetry-off behaviour are excluded from the smoke job's subset.
    """
    if not os.environ.get("REPRO_TELEMETRY_SMOKE"):
        yield
        return
    original = SimulationOptions.__post_init__

    def forced(self):
        self.telemetry = "full"
        self.health_check = True
        self.forensics = True
        original(self)

    monkeypatch.setattr(SimulationOptions, "__post_init__", forced)
    yield
