"""Tests for engineering-unit parsing and formatting."""

from __future__ import annotations

import math

import pytest
from hypothesis import given, strategies as st

from repro.errors import UnitError
from repro.units import format_quantity, format_si, parse_quantity


class TestParseQuantity:
    def test_plain_numbers_pass_through(self):
        assert parse_quantity(3.5) == 3.5
        assert parse_quantity(7) == 7.0

    def test_plain_string_number(self):
        assert parse_quantity("42") == 42.0
        assert parse_quantity("-1.5e-3") == -1.5e-3

    @pytest.mark.parametrize("text,expected", [
        ("1k", 1e3),
        ("2meg", 2e6),
        ("3u", 3e-6),
        ("0.15m", 0.15e-3),
        ("5.8637p", 5.8637e-12),
        ("10n", 10e-9),
        ("1f", 1e-15),
        ("2.2G", 2.2e9),
        ("1T", 1e12),
    ])
    def test_engineering_suffixes(self, text, expected):
        assert parse_quantity(text) == pytest.approx(expected)

    @pytest.mark.parametrize("text,expected", [
        ("10pF", 10e-12),
        ("200nH", 200e-9),
        ("0.15mm", 0.15e-3),
        ("2megohm", 2e6),
    ])
    def test_unit_names_after_suffix_are_ignored(self, text, expected):
        assert parse_quantity(text) == pytest.approx(expected)

    def test_bare_unit_without_prefix(self):
        # Letters that are not engineering suffixes are treated as unit names.
        assert parse_quantity("10V") == 10.0
        assert parse_quantity("3Hz") == 3.0

    def test_spice_prefix_collision_follows_spice(self):
        # As in SPICE, a leading letter that IS a prefix wins: 200N = 200 nano.
        assert parse_quantity("200N") == pytest.approx(200e-9)

    def test_percent(self):
        assert parse_quantity("5%") == pytest.approx(0.05)

    def test_mil_suffix(self):
        assert parse_quantity("10mil") == pytest.approx(254e-6)

    @pytest.mark.parametrize("bad", ["", "abc", "1..2", "--3", None, float("nan")])
    def test_malformed_input_raises(self, bad):
        with pytest.raises(UnitError):
            parse_quantity(bad)

    def test_case_insensitive(self):
        assert parse_quantity("1K") == parse_quantity("1k")
        assert parse_quantity("3U") == parse_quantity("3u")

    @given(st.floats(min_value=-1e20, max_value=1e20, allow_nan=False))
    def test_roundtrip_plain_floats(self, value):
        assert parse_quantity(value) == value


class TestFormatQuantity:
    def test_zero(self):
        assert format_quantity(0.0, "F") == "0F"

    def test_pico(self):
        assert format_quantity(5.8637e-12, "F") == "5.864pF"

    def test_kilo(self):
        assert format_quantity(1500.0, "Hz") == "1.5kHz"

    def test_unity_range(self):
        assert format_quantity(2.5, "V") == "2.5V"

    def test_nonfinite_passthrough(self):
        assert "inf" in format_quantity(float("inf"), "V")

    @given(st.floats(min_value=1e-17, max_value=1e13, allow_nan=False,
                     allow_infinity=False).filter(lambda x: x > 0))
    def test_formats_roundtrip_through_parse(self, value):
        text = format_quantity(value, digits=12)
        parsed = parse_quantity(text)
        assert parsed == pytest.approx(value, rel=1e-6)

    def test_format_si(self):
        assert format_si(1.23456789e-3, "m", digits=4) == "0.001235 m"
        assert format_si(5.0) == "5"
