"""Aggregation of linalg cache counters into CampaignResult.solver_stats."""

from __future__ import annotations

import numpy as np
import pytest

from repro.campaign import CampaignResult, CampaignRow, CampaignRunner, GridSweep
from repro.campaign.runner import CircuitEvaluator
from repro.circuit import Circuit
from repro.circuit.devices.passive import Resistor
from repro.circuit.devices.sources import VoltageSource
from repro.linalg import FactorizationCache, metrics


def build_divider(params: dict) -> Circuit:
    circuit = Circuit()
    n_in = circuit.electrical_node("in")
    n_out = circuit.electrical_node("out")
    circuit.add(VoltageSource("V1", n_in, circuit.ground, 5.0))
    circuit.add(Resistor("R1", n_in, n_out, float(params["r_top"])))
    circuit.add(Resistor("R2", n_out, circuit.ground, 1e3))
    return circuit


def build_behavioral(params: dict) -> Circuit:
    """Divider with a behavioral conductance: exercises the HDL compiler."""
    from repro.circuit.devices.behavioral import BehavioralDevice, Port
    from repro.natures import ELECTRICAL

    circuit = Circuit()
    n_in = circuit.electrical_node("in")
    n_out = circuit.electrical_node("out")
    circuit.add(VoltageSource("V1", n_in, circuit.ground,
                              float(params["v"])))
    circuit.add(Resistor("R1", n_in, n_out, 1e3))

    def behavior(ctx):
        ctx.contribute("p", ctx.param("g") * ctx.across("p"))

    circuit.add(BehavioralDevice(
        "G1", [Port("p", n_out, circuit.ground, ELECTRICAL)], behavior,
        params={"g": 1e-3}))
    return circuit


def cached_evaluator(point: dict) -> dict:
    """Evaluator that exercises the FactorizationCache inside workers."""
    cache = FactorizationCache(maxsize=4)
    matrix = np.eye(3) * float(point["v"])
    cache.factorize(matrix)
    cache.factorize(matrix)  # second call is a guaranteed hit
    solution = cache.solve(matrix, np.ones(3))
    return {"x0": float(solution[0])}


class TestMetricsModule:
    def test_record_snapshot_delta(self):
        before = metrics.snapshot()
        metrics.record("factorizations", 3)
        delta = metrics.counter_delta(before)
        assert delta["factorizations"] == 3
        assert delta["structure_reuses"] == 0

    def test_unknown_counter_rejected(self):
        with pytest.raises(KeyError):
            metrics.record("bogus")

    def test_merge(self):
        total = {name: 1 for name in metrics.COUNTER_NAMES}
        metrics.merge_counters(total, {"factorizations": 4})
        assert total["factorizations"] == 5


class TestCampaignAggregation:
    SPEC = GridSweep(v=[1.0, 2.0, 3.0, 4.0])

    def test_serial_counts_cache_traffic(self):
        result = CampaignRunner("serial").run(self.SPEC, cached_evaluator)
        stats = result.solver_stats
        # Per point: 2 hits (the repeat factorize + the cached solve),
        # 1 miss, 1 real factorization.
        assert stats["factorization_cache_hits"] == 2 * len(self.SPEC.points())
        assert stats["factorization_cache_misses"] == len(self.SPEC.points())
        assert stats["factorizations"] == len(self.SPEC.points())

    def test_pool_matches_serial(self):
        serial = CampaignRunner("serial").run(self.SPEC, cached_evaluator)
        pool = CampaignRunner("pool", processes=2).run(self.SPEC,
                                                       cached_evaluator)
        assert pool.solver_stats == serial.solver_stats

    def test_circuit_evaluator_factorizations_visible(self):
        evaluator = CircuitEvaluator(build_divider, outputs=("v(out)",))
        spec = GridSweep(r_top=[5e2, 1e3, 2e3])
        result = CampaignRunner("serial").run(spec, evaluator)
        assert result.solver_stats["factorizations"] >= 3

    def test_solver_summary_rates(self):
        result = CampaignRunner("serial").run(self.SPEC, cached_evaluator)
        summary = result.solver_summary()
        assert summary["factorization_cache_hit_rate"] == pytest.approx(2 / 3)
        assert summary["structure_reuse_rate"] == 0.0

    def test_repr_mentions_factorizations(self):
        result = CampaignRunner("serial").run(self.SPEC, cached_evaluator)
        assert "factorizations" in repr(result)

    def test_derived_results_have_empty_stats(self):
        result = CampaignRunner("serial").run(self.SPEC, cached_evaluator)
        filtered = result.filter(lambda row: row["v"] > 2.0)
        assert filtered.solver_stats == {}
        summary = filtered.solver_summary()
        assert summary["factorization_cache_hit_rate"] == 0.0

    def test_manual_construction_defaults_empty(self):
        row = CampaignRow(0, {"v": 1.0}, {"y": 2.0})
        result = CampaignResult([row])
        assert result.solver_stats == {}


class TestHdlCompileCounters:
    SPEC = GridSweep(v=[1.0, 2.0, 3.0])

    def test_behavioral_campaign_counts_kernel_cache(self):
        evaluator = CircuitEvaluator(build_behavioral, outputs=("v(out)",))
        result = CampaignRunner("serial").run(self.SPEC, evaluator)
        stats = result.solver_stats
        # One kernel-cache event per point (the fingerprint-keyed cache is
        # process-wide, so the compile itself may predate this campaign --
        # only the compile+hit total is deterministic here).
        events = stats["hdl_compiles"] + stats["hdl_compile_cache_hits"]
        assert events >= len(self.SPEC.points())
        assert stats["hdl_compile_cache_hits"] >= 2
        summary = result.solver_summary()
        assert summary["hdl_compile_cache_hit_rate"] > 0.0

    def test_non_behavioral_campaign_reports_zero_rate(self):
        result = CampaignRunner("serial").run(self.SPEC, cached_evaluator)
        stats = result.solver_stats
        assert stats["hdl_compiles"] == 0
        assert stats["hdl_compile_cache_hits"] == 0
        assert result.solver_summary()["hdl_compile_cache_hit_rate"] == 0.0
