"""CampaignRunner ``ledger=``: auto-recording campaign profiles.

Rides the PR 6 determinism contract: the merged telemetry a campaign
records is identical between serial and pool execution for every
counter-family metric, so two records of the same campaign diff to zero
everywhere except wall-clock timings.
"""

from __future__ import annotations

import numpy as np

from repro.campaign import CampaignRunner, GridSweep
from repro.campaign.runner import CircuitEvaluator
from repro.circuit import Circuit
from repro.circuit.devices.passive import Resistor
from repro.circuit.devices.sources import VoltageSource
from repro.telemetry.ledger import RunLedger, diff


def build_divider(params: dict) -> Circuit:
    circuit = Circuit()
    n_in = circuit.electrical_node("in")
    n_out = circuit.electrical_node("out")
    circuit.add(VoltageSource("V1", n_in, circuit.ground, 5.0))
    circuit.add(Resistor("R1", n_in, n_out, float(params["r_top"])))
    circuit.add(Resistor("R2", n_out, circuit.ground, 1e3))
    return circuit


def _evaluator() -> CircuitEvaluator:
    return CircuitEvaluator(build_divider, analysis="op", outputs=["v(out)"])


SPEC = GridSweep({"r_top": np.linspace(500.0, 2000.0, 8)})


class TestCampaignRecording:
    def test_run_appends_record_and_sets_id(self, tmp_path):
        ledger = RunLedger(tmp_path)
        result = CampaignRunner(telemetry="summary",
                                ledger=ledger).run(SPEC, _evaluator())
        assert result.run_record_id is not None
        record = ledger.load(result.run_record_id)
        assert record.label == "campaign"
        assert record.span_totals["op.run"]["count"] == len(SPEC)
        assert record.options_fingerprint

    def test_directory_path_is_wrapped_and_telemetry_upgraded(self, tmp_path):
        runner = CampaignRunner(ledger=str(tmp_path))
        assert isinstance(runner.ledger, RunLedger)
        # A record without a profile would be empty: "off" upgrades.
        assert runner.telemetry == "summary"
        result = runner.run(SPEC, _evaluator())
        assert result.telemetry is not None
        assert len(runner.ledger) == 1

    def test_no_ledger_means_no_record(self):
        result = CampaignRunner(telemetry="summary").run(SPEC, _evaluator())
        assert result.run_record_id is None

    def test_same_campaign_shares_options_fingerprint(self, tmp_path):
        ledger = RunLedger(tmp_path)
        a = CampaignRunner(ledger=ledger).run(SPEC, _evaluator())
        b = CampaignRunner(ledger=ledger).run(SPEC, _evaluator())
        rec_a, rec_b = ledger.load(a.run_record_id), ledger.load(b.run_record_id)
        assert rec_a.options_fingerprint == rec_b.options_fingerprint
        other_spec = GridSweep({"r_top": np.linspace(500.0, 2000.0, 4)})
        c = CampaignRunner(ledger=ledger).run(other_spec, _evaluator())
        assert ledger.load(c.run_record_id).options_fingerprint != \
            rec_a.options_fingerprint

    def test_serial_and_pool_records_diff_to_zero(self, tmp_path):
        """The acceptance contract: only wall-clock timings may differ."""
        ledger = RunLedger(tmp_path)
        serial = CampaignRunner(backend="serial", telemetry="summary",
                                ledger=ledger).run(SPEC, _evaluator())
        pool = CampaignRunner(backend="pool", processes=2, chunk_size=2,
                              telemetry="summary",
                              ledger=ledger).run(SPEC, _evaluator())
        delta_view = diff(ledger.load(serial.run_record_id),
                          ledger.load(pool.run_record_id))
        assert delta_view.structurally_identical
        assert not delta_view.changed("counter")
        # And gauges: last-written state is deterministic per point too.
        for delta in delta_view.changed():
            assert delta.family == "time"
