"""Batched campaign execution: parity with serial, backend resolution.

Evaluator builders are module-level so the batch-pool backend can pickle
them to worker processes.
"""

from __future__ import annotations

import numpy as np
import pytest

from repro.campaign import (CampaignRunner, CircuitEvaluator, CornerSet,
                            FunctionEvaluator, GridSweep, MonteCarlo, Normal)
from repro.circuit import Circuit, SimulationOptions
from repro.errors import CampaignError

SECTIONS = 6


def build_ladder(params):
    """Nonlinear diode ladder; every device stamps batch-safe."""
    circuit = Circuit("ladder")
    circuit.voltage_source("VS", "n0", "0", params.get("vdd", 5.0))
    for i in range(SECTIONS):
        resistance = params.get("rscale", 100.0) if i == 0 else 100.0
        circuit.resistor(f"R{i}", f"n{i}", f"n{i + 1}", resistance)
        circuit.diode(f"D{i}", f"n{i + 1}", "0")
    return circuit


PARAM_MAP = {"vdd": "VS.dc", "rscale": "R0.resistance"}


def double_rscale(value):
    return 2.0 * value


def last_node(result, params):
    return {"v_last": float(result.column(f"v(n{SECTIONS})")[-1])}


def spring_fn(point):
    return {"force": point["vdd"] ** 2}


def batch_evaluator(**kwargs):
    return CircuitEvaluator(build_ladder, param_map=PARAM_MAP, **kwargs)


def assert_rows_identical(serial, batch, rtol=1e-12):
    """Value rows within rtol; error rows byte-equal."""
    assert len(serial) == len(batch)
    for a, b in zip(serial, batch):
        assert a.params == b.params
        assert a.error == b.error
        if a.error is None:
            assert set(a.outputs) == set(b.outputs)
            for key, value in a.outputs.items():
                scale = max(1.0, abs(value))
                assert abs(b.outputs[key] - value) / scale <= rtol


class TestBatchParity:
    def test_grid_sweep_op(self):
        spec = GridSweep(vdd=[3.0, 4.0, 5.0, 6.0], rscale=[80.0, 120.0])
        serial = CampaignRunner(backend="serial").run(
            spec, CircuitEvaluator(build_ladder))
        batch = CampaignRunner(backend="batch").run(spec, batch_evaluator())
        assert_rows_identical(serial, batch)

    def test_monte_carlo_op(self):
        spec = MonteCarlo({"vdd": Normal(5.0, 0.5),
                           "rscale": Normal(100.0, 10.0)},
                          samples=24, seed=42)
        serial = CampaignRunner(backend="serial").run(
            spec, CircuitEvaluator(build_ladder))
        batch = CampaignRunner(backend="batch").run(spec, batch_evaluator())
        assert_rows_identical(serial, batch)

    def test_monte_carlo_op_superlu(self):
        options = SimulationOptions(linear_solver="sparse", sparse_threshold=1)
        spec = MonteCarlo({"vdd": Normal(5.0, 0.5)}, samples=12, seed=7)
        serial = CampaignRunner(backend="serial").run(
            spec, CircuitEvaluator(build_ladder, options=options))
        batch = CampaignRunner(backend="batch").run(
            spec, batch_evaluator(options=options))
        assert_rows_identical(serial, batch)

    def test_corner_set_op(self):
        spec = CornerSet({
            "slow": {"vdd": 4.5, "rscale": 120.0},
            "nom": {"vdd": 5.0, "rscale": 100.0},
            "fast": {"vdd": 5.5, "rscale": 80.0},
        })
        serial = CampaignRunner(backend="serial").run(
            spec, CircuitEvaluator(build_ladder))
        batch = CampaignRunner(backend="batch").run(spec, batch_evaluator())
        assert_rows_identical(serial, batch)

    def test_dc_sweep_with_reduce(self):
        spec = GridSweep(rscale=[60.0, 100.0, 140.0, 180.0])
        args = {"source_name": "VS", "values": np.linspace(0.0, 6.0, 5)}
        serial = CampaignRunner(backend="serial").run(
            spec, CircuitEvaluator(build_ladder, analysis="dc",
                                   analysis_args=args, reduce=last_node))
        batch = CampaignRunner(backend="batch").run(
            spec, batch_evaluator(analysis="dc", analysis_args=args,
                                  reduce=last_node))
        assert_rows_identical(serial, batch)

    def test_param_map_transform(self):
        spec = GridSweep(vdd=[4.0, 5.0, 6.0, 7.0], rscale=[50.0, 60.0])
        evaluator = CircuitEvaluator(
            build_ladder,
            param_map={"vdd": "VS.dc",
                       "rscale": ("R0.resistance", double_rscale)})
        batch = CampaignRunner(backend="batch").run(spec, evaluator)

        def doubled(params):
            params = dict(params)
            params["rscale"] = 2.0 * params["rscale"]
            return build_ladder(params)

        serial = CampaignRunner(backend="serial").run(
            spec, CircuitEvaluator(doubled))
        assert_rows_identical(serial, batch)

    def test_mixed_convergence_error_rows_byte_equal(self):
        # A NaN lane fails in both paths; the batch retires it to the serial
        # path, so its error row must be byte-identical to serial's.
        spec = GridSweep(vdd=[4.0, float("nan"), 5.0, 6.0])
        serial = CampaignRunner(backend="serial").run(
            spec, CircuitEvaluator(build_ladder))
        batch = CampaignRunner(backend="batch").run(spec, batch_evaluator())
        errors = [row.error for row in serial if row.error is not None]
        assert errors, "expected at least one failing point"
        assert_rows_identical(serial, batch)

    def test_batch_pool_composes(self):
        spec = MonteCarlo({"vdd": Normal(5.0, 0.5)}, samples=16, seed=3)
        serial = CampaignRunner(backend="serial").run(
            spec, CircuitEvaluator(build_ladder))
        pooled = CampaignRunner(backend="batch", processes=2,
                                batch_size=4).run(spec, batch_evaluator())
        assert_rows_identical(serial, pooled)


class TestBackendResolution:
    def test_batch_requires_capable_evaluator(self):
        spec = GridSweep(vdd=[1.0, 2.0])
        with pytest.raises(CampaignError, match="batch-capable"):
            CampaignRunner(backend="batch").run(
                spec, FunctionEvaluator(spring_fn))
        with pytest.raises(CampaignError, match="batch-capable"):
            # No param_map -> point-by-point only.
            CampaignRunner(backend="batch").run(
                spec, CircuitEvaluator(build_ladder))

    def test_auto_picks_batch_for_capable_evaluator(self):
        runner = CampaignRunner(backend="auto")
        resolved = runner._resolve_backend(batch_evaluator(), n_points=16)
        assert resolved == "batch"
        assert runner._resolve_backend(FunctionEvaluator(spring_fn),
                                       n_points=16) in ("serial", "pool")

    def test_unknown_backend_rejected(self):
        with pytest.raises(CampaignError, match="unknown backend"):
            CampaignRunner(backend="vectorized")

    def test_batch_size_validated(self):
        with pytest.raises(CampaignError):
            CampaignRunner(backend="batch", batch_size=0)

    def test_auto_falls_back_serial_for_unbatchable_options(self):
        # The CG backend has no batched counterpart: the evaluator reports
        # itself non-capable and auto stays serial/pool.  (Chord-mode
        # Newton, once in the same boat, is batchable now.)
        options = SimulationOptions(linear_solver="cg")
        evaluator = CircuitEvaluator(
            build_ladder, param_map=PARAM_MAP, options=options)
        spec = GridSweep(vdd=[3.0, 4.0, 5.0, 6.0])
        serial = CampaignRunner(backend="serial").run(
            spec, CircuitEvaluator(build_ladder, options=options))
        result = CampaignRunner(backend="auto", processes=1).run(
            spec, evaluator)
        assert_rows_identical(serial, result)


class TestBatchTelemetry:
    def test_batch_metrics_flow_into_campaign_telemetry(self):
        spec = GridSweep(vdd=[3.0, 4.0, 5.0, 6.0, 7.0])
        result = CampaignRunner(backend="batch", telemetry="summary").run(
            spec, batch_evaluator())
        histograms = result.telemetry["metrics"]["histograms"]
        assert histograms["batch.size"]["count"] >= 1
        assert histograms["batch.size"]["max"] == 5.0
        assert histograms["batch.solve_s"]["count"] >= 1
        summary = result.solver_summary()
        assert summary["telemetry"]["metrics"]["histograms"][
            "batch.size"]["count"] >= 1
