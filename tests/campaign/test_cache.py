"""Tests for content-addressed campaign result caching."""

from __future__ import annotations

import numpy as np
import pytest

from repro.campaign import ResultCache, canonicalize, scenario_key
from repro.errors import CampaignError


class TestScenarioKey:
    def test_stable_and_order_independent(self):
        a = scenario_key({"gap": 2e-6, "area": 1e-4}, {"voltage": 5.0})
        b = scenario_key({"area": 1e-4, "gap": 2e-6}, {"voltage": 5.0})
        assert a == b and len(a) == 64

    def test_value_changes_key(self):
        base = scenario_key({"gap": 2e-6}, {"voltage": 5.0})
        assert scenario_key({"gap": 2e-6}, {"voltage": 5.0000001}) != base
        assert scenario_key({"gap": 2.0000001e-6}, {"voltage": 5.0}) != base

    def test_numpy_values_canonicalize(self):
        assert scenario_key({"v": np.float64(5.0)}) == scenario_key({"v": 5.0})
        assert (scenario_key({"vals": np.array([1.0, 2.0])})
                == scenario_key({"vals": [1.0, 2.0]}))

    def test_uncacheable_type_rejected(self):
        with pytest.raises(CampaignError):
            canonicalize(object())


class TestResultCache:
    def test_memory_round_trip(self):
        cache = ResultCache()
        key = scenario_key({"v": 1.0})
        assert cache.get(key) is None
        cache.put(key, {"force": 1.5})
        assert cache.get(key) == {"force": 1.5}
        assert cache.stats()["hits"] == 1 and cache.stats()["misses"] == 1

    def test_disk_round_trip_across_instances(self, tmp_path):
        key = scenario_key({"v": 2.0})
        ResultCache(tmp_path).put(key, {"force": 2.5, "cap": 1e-12})
        fresh = ResultCache(tmp_path)  # empty memory, warm disk
        assert fresh.get(key) == {"force": 2.5, "cap": 1e-12}
        assert fresh.get(key) == {"force": 2.5, "cap": 1e-12}  # now from memory
        assert fresh.stats()["hits"] == 2

    def test_nan_rows_survive_disk(self, tmp_path):
        cache = ResultCache(tmp_path)
        key = scenario_key({"v": 3.0})
        cache.put(key, {"force": float("nan")})
        restored = ResultCache(tmp_path).get(key)
        assert np.isnan(restored["force"])

    def test_invalidate_and_clear(self, tmp_path):
        cache = ResultCache(tmp_path)
        key = scenario_key({"v": 4.0})
        cache.put(key, {"x": 1.0})
        cache.invalidate(key)
        assert not cache.contains(key)
        assert ResultCache(tmp_path).get(key) is None
        cache.put(key, {"x": 1.0})
        cache.clear()
        assert cache.stats() == {"hits": 0, "disk_hits": 0, "misses": 0,
                                 "stores": 0, "evictions": 0,
                                 "hit_rate": 0.0, "disk_hit_rate": 0.0,
                                 "memory_entries": 0, "entries": 0, "bytes": 0}
        assert ResultCache(tmp_path).get(key) is None

    def test_stats_reports_disk_entries_and_bytes(self, tmp_path):
        cache = ResultCache(tmp_path)
        for v in (1.0, 2.0, 3.0):
            cache.put(scenario_key({"v": v}), {"force": v})
        stats = cache.stats()
        assert stats["entries"] == 3
        assert stats["memory_entries"] == 3
        assert stats["bytes"] > 0
        # A fresh instance sees the same persistent entries with cold memory.
        fresh_stats = ResultCache(tmp_path).stats()
        assert fresh_stats["entries"] == 3
        assert fresh_stats["memory_entries"] == 0
        assert fresh_stats["bytes"] == stats["bytes"]
        cache.clear()
        assert cache.stats()["entries"] == 0
        assert cache.stats()["bytes"] == 0

    def test_memory_only_stats_counts_memory_entries(self):
        cache = ResultCache()
        cache.put(scenario_key({"v": 9.0}), {"x": 1.0})
        stats = cache.stats()
        assert stats["entries"] == 1 and stats["bytes"] == 0

    def test_stats_derived_hit_rates(self, tmp_path):
        cache = ResultCache(tmp_path)
        key = scenario_key({"v": 10.0})
        assert cache.stats()["hit_rate"] == 0.0  # no traffic yet, not NaN
        cache.put(key, {"x": 1.0})
        cache.get(key)                       # memory hit
        cache.get(scenario_key({"v": 11.0}))  # miss
        fresh = ResultCache(tmp_path)
        fresh.get(key)  # disk hit (promoted)
        fresh.get(key)  # memory hit
        stats = cache.stats()
        assert stats["hit_rate"] == pytest.approx(0.5)
        assert stats["disk_hits"] == 0 and stats["disk_hit_rate"] == 0.0
        fresh_stats = fresh.stats()
        assert fresh_stats["hit_rate"] == pytest.approx(1.0)
        assert fresh_stats["disk_hits"] == 1
        assert fresh_stats["disk_hit_rate"] == pytest.approx(0.5)

    def test_atomic_write_leaves_no_temp_files(self, tmp_path):
        import os

        cache = ResultCache(tmp_path)
        for v in range(10):
            cache.put(scenario_key({"v": float(v)}), {"x": float(v)})
        # A failing serialization (TypeError inside json.dump) must clean up
        # its temp file too, not only OSError-class failures, and must not
        # leave a phantom row in the memory layer or count a store.
        stores_before = cache.stats()["stores"]
        bad_key = scenario_key({"v": 99.0})
        with pytest.raises(TypeError):
            cache.put(bad_key, {"x": object()})
        leftovers = [name
                     for _, _, names in os.walk(tmp_path)
                     for name in names if not name.endswith(".json")]
        assert leftovers == []
        assert not cache.contains(bad_key)
        assert cache.stats()["stores"] == stores_before


class TestDiskEviction:
    def _fill(self, cache, count, payload_floats=50):
        keys = []
        for v in range(count):
            key = scenario_key({"v": float(v)})
            cache.put(key, {f"x{i}": float(i) for i in range(payload_floats)})
            keys.append(key)
        return keys

    def test_validation(self, tmp_path):
        with pytest.raises(CampaignError):
            ResultCache(tmp_path, max_disk_bytes=0)
        with pytest.raises(CampaignError):
            ResultCache(max_disk_bytes=1024)  # memory-only: cap is meaningless

    def test_unlimited_by_default(self, tmp_path):
        cache = ResultCache(tmp_path)
        self._fill(cache, 12)
        assert cache.stats()["entries"] == 12
        assert cache.stats()["evictions"] == 0

    def test_cap_enforced_lru(self, tmp_path):
        import os
        import time

        cache = ResultCache(tmp_path)
        keys = self._fill(cache, 6)
        entry_bytes = cache.stats()["bytes"] // 6
        # Make the first key the most recently used (on disk) before
        # re-opening with a cap that only fits three entries.
        os.utime(cache._path(keys[0]),
                 times=(time.time() + 60.0, time.time() + 60.0))
        capped = ResultCache(tmp_path, max_disk_bytes=3 * entry_bytes + 10)
        new_key = scenario_key({"v": 99.0})
        capped.put(new_key, {f"x{i}": float(i) for i in range(50)})
        stats = capped.stats()
        assert stats["bytes"] <= 3 * entry_bytes + 10
        assert stats["evictions"] >= 3
        # The freshly stored key and the most-recently-touched old key
        # survive; the stale middle keys were pruned.
        assert capped.contains(new_key)
        assert capped.contains(keys[0])
        assert not capped.contains(keys[1])

    def test_oversized_row_keeps_itself(self, tmp_path):
        cache = ResultCache(tmp_path, max_disk_bytes=64)
        key = scenario_key({"v": 1.0})
        cache.put(key, {f"x{i}": float(i) for i in range(100)})
        # The row exceeds the cap on its own but must not evict itself.
        assert cache.contains(key)

    def test_eviction_drops_memory_layer_too(self, tmp_path):
        cache = ResultCache(tmp_path, max_disk_bytes=400)
        keys = self._fill(cache, 8)
        for key in keys[:-1]:
            if not cache.contains(key):
                assert cache.get(key) is None
                break
        else:
            pytest.fail("expected at least one eviction")
