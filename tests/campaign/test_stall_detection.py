"""Pool-worker stall detection: a hung worker warns, never hangs the run.

The evaluator functions are module-level so the pool backend can pickle
them.  Timings are generous (hang = minutes, timeout = fractions of a
second) so the tests stay deterministic on loaded CI machines while
finishing quickly.
"""

from __future__ import annotations

import time
import warnings

import numpy as np
import pytest

from repro import telemetry
from repro.campaign import CampaignRunner, GridSweep
from repro.errors import CampaignError


def sleepy_evaluator(point):
    """Sleep for the point's delay, then return it (picklable)."""
    time.sleep(point["delay"])
    return {"y": point["delay"]}


def hanging_evaluator(point):
    """Hang essentially forever on the poisoned point (picklable)."""
    if point["delay"] > 0.0:
        time.sleep(600.0)
    return {"y": point["delay"]}


class TestValidation:
    def test_stall_timeout_must_be_positive(self):
        with pytest.raises(CampaignError):
            CampaignRunner(backend="pool", stall_timeout=0.0)

    def test_abandon_requires_timeout(self):
        with pytest.raises(CampaignError):
            CampaignRunner(backend="pool", stall_abandon=True)


class TestStallDetection:
    def test_slow_worker_warns_but_run_completes(self):
        # One chunk takes ~1 s against a 0.2 s timeout: the parent must warn
        # (at least once) and still deliver every row.
        spec = GridSweep(delay=[0.0, 1.0, 0.0, 0.0])
        runner = CampaignRunner(backend="pool", processes=2, chunk_size=1,
                                stall_timeout=0.2)
        with pytest.warns(telemetry.StallWarning, match="delivered nothing"):
            result = runner.run(spec, sleepy_evaluator)
        assert len(result) == 4 and result.num_failures == 0
        np.testing.assert_allclose(result.column("y"), [0.0, 1.0, 0.0, 0.0])

    def test_hung_worker_is_abandoned_not_waited_for(self):
        # The poisoned point sleeps for minutes; with stall_abandon the
        # campaign must terminate the pool, keep the delivered rows and mark
        # the undelivered ones as stalled-error rows -- and do all of that
        # quickly (the no-hang guarantee).
        spec = GridSweep(delay=[0.0, 600.0, 0.0])
        runner = CampaignRunner(backend="pool", processes=1, chunk_size=1,
                                stall_timeout=0.5, stall_abandon=True)
        t0 = time.perf_counter()
        with pytest.warns(telemetry.StallWarning, match="abandoning"):
            result = runner.run(spec, hanging_evaluator)
        assert time.perf_counter() - t0 < 30.0
        assert len(result) == 3
        stalled = [row for row in result
                   if row.error and row.error.startswith("StallError")]
        assert stalled, "the hung point must come back as a StallError row"
        # With a single worker, the first point completes before the hang.
        assert result[0].ok and result[0]["y"] == pytest.approx(0.0)

    def test_no_timeout_no_warning(self):
        spec = GridSweep(delay=[0.0, 0.0])
        runner = CampaignRunner(backend="pool", processes=2, chunk_size=1)
        with warnings.catch_warnings():
            warnings.simplefilter("error", telemetry.StallWarning)
            result = runner.run(spec, sleepy_evaluator)
        assert result.num_failures == 0


class TestHeartbeats:
    def test_pool_chunks_ship_heartbeats_into_progress_events(self):
        spec = GridSweep(delay=[0.0, 0.0, 0.0, 0.0])
        events = []
        with telemetry.reporting(events.append):
            CampaignRunner(backend="pool", processes=2,
                           chunk_size=2).run(spec, sleepy_evaluator)
        beats = [e for e in events if e.phase == "campaign" and "pid" in e.data]
        assert len(beats) == 2  # one per delivered chunk
        for event in beats:
            assert event.data["points"] == 2
            assert event.data["pid"] != 0
            assert event.data["wall_s"] >= 0.0
        final = events[-1]
        assert final.done and final.completed == 4

    def test_serial_backend_reports_per_point(self):
        spec = GridSweep(delay=[0.0, 0.0, 0.0])
        events = []
        with telemetry.reporting(events.append):
            CampaignRunner(backend="serial").run(spec, sleepy_evaluator)
        campaign = [e for e in events if e.phase == "campaign"]
        assert [e.completed for e in campaign] == [1.0, 2.0, 3.0, 3.0]
        assert campaign[-1].done
