"""Tests for campaign execution: backends, determinism, caching, evaluators.

The module-level evaluator functions are required: the pool backend pickles
the evaluator to its worker processes.
"""

from __future__ import annotations

import numpy as np
import pytest

from repro.campaign import (
    CampaignRunner,
    CircuitEvaluator,
    FunctionEvaluator,
    GridSweep,
    MonteCarlo,
    Normal,
    ResultCache,
    Uniform,
    evaluator_payload,
    scenario_key,
)
from repro.circuit import Circuit, SimulationOptions
from repro.errors import CampaignError


def quadratic_evaluator(point):
    """v, k -> spring force and energy (picklable module-level evaluator)."""
    v, k = point["v"], point.get("k", 1.0)
    return {"force": k * v * v, "energy": 0.5 * k * v * v}


def failing_evaluator(point):
    if point["v"] > 2.0:
        raise ValueError(f"no solution at v={point['v']}")
    return {"force": point["v"]}


def spring_fn(config, params, options):
    return {"force": config["scale"] * params["v"], "gmin": options.gmin}


def build_divider(params):
    """Resistive divider with a swept top resistor (picklable factory)."""
    circuit = Circuit("divider")
    circuit.voltage_source("V1", "in", "0", params.get("vin", 10.0))
    circuit.resistor("R1", "in", "out", params["r_top"])
    circuit.resistor("R2", "out", "0", 1000.0)
    return circuit


class TestBackends:
    def test_serial_pool_identical_grid(self):
        spec = GridSweep(v=[0.0, 1.0, 2.0, 3.0], k=[1.0, 2.0])
        serial = CampaignRunner(backend="serial").run(spec, quadratic_evaluator)
        pool = CampaignRunner(backend="pool", processes=2).run(
            spec, quadratic_evaluator)
        assert serial.to_rows() == pool.to_rows()

    def test_serial_pool_identical_monte_carlo(self):
        # The headline determinism contract: one seed, identical results on
        # every backend, bit for bit.
        spec = MonteCarlo({"v": Uniform(0.0, 10.0), "k": Normal(2.0, 0.2)},
                          samples=24, seed=123)
        serial = CampaignRunner().run(spec, quadratic_evaluator)
        pool = CampaignRunner(backend="pool", processes=3, chunk_size=5).run(
            spec, quadratic_evaluator)
        assert serial.to_rows() == pool.to_rows()
        assert [row.params for row in serial] == spec.points()

    def test_result_order_matches_spec_order(self):
        spec = GridSweep(v=[3.0, 1.0, 2.0])
        result = CampaignRunner(backend="pool", processes=2, chunk_size=1).run(
            spec, quadratic_evaluator)
        np.testing.assert_allclose(result.column("v"), [3.0, 1.0, 2.0])
        np.testing.assert_allclose(result.column("force"), [9.0, 1.0, 4.0])

    def test_validation(self):
        with pytest.raises(CampaignError):
            CampaignRunner(backend="threads")
        with pytest.raises(CampaignError):
            CampaignRunner(processes=0)
        with pytest.raises(CampaignError):
            CampaignRunner(chunk_size=0)


class TestErrorCapture:
    @pytest.mark.parametrize("backend", ["serial", "pool"])
    def test_point_failure_does_not_abort(self, backend):
        spec = GridSweep(v=[1.0, 2.0, 3.0, 4.0])
        runner = CampaignRunner(backend=backend, processes=2)
        result = runner.run(spec, failing_evaluator)
        assert len(result) == 4 and result.num_failures == 2
        assert result.error(2) == "ValueError: no solution at v=3.0"
        np.testing.assert_allclose(result.column("force")[:2], [1.0, 2.0])
        assert np.isnan(result.column("force")[2])

    def test_non_mapping_output_is_captured(self):
        result = CampaignRunner().run(GridSweep(v=[1.0]), lambda point: 3.0)
        assert result.num_failures == 1
        assert "CampaignError" in result.error(0)

    def test_pool_worker_exception_isolated_per_point(self):
        # An exception raised inside a multiprocessing worker must mark only
        # that row as failed: the error text crosses the process boundary,
        # yield statistics count the loss, and every other point -- including
        # points sharing the failing point's dispatch chunk -- is unaffected.
        spec = GridSweep(v=[1.0, 2.0, 3.0, 4.0, 1.5, 0.5])
        result = CampaignRunner(backend="pool", processes=2,
                                chunk_size=3).run(spec, failing_evaluator)
        assert len(result) == 6
        failed = result.failures()
        assert {row.params["v"] for row in failed} == {3.0, 4.0}
        assert result.error(2) == "ValueError: no solution at v=3.0"
        assert result.error(3) == "ValueError: no solution at v=4.0"
        ok_forces = [row["force"] for row in result if row.ok]
        np.testing.assert_allclose(ok_forces, [1.0, 2.0, 1.5, 0.5])
        assert result.yield_fraction() == pytest.approx(4.0 / 6.0)
        assert result.yield_fraction(lambda row: row["force"] >= 1.0) \
            == pytest.approx(3.0 / 6.0)


class TestCaching:
    def test_second_run_is_all_hits(self, tmp_path):
        cache = ResultCache(tmp_path)
        spec = GridSweep(v=[1.0, 2.0, 3.0])
        runner = CampaignRunner(cache=cache)
        first = runner.run(spec, quadratic_evaluator)
        assert first.num_cached == 0 and cache.stats()["stores"] == 3
        second = runner.run(spec, quadratic_evaluator)
        assert second.num_cached == 3
        assert second.to_rows() == first.to_rows()

    def test_extending_an_axis_only_computes_new_points(self, tmp_path):
        cache = ResultCache(tmp_path)
        runner = CampaignRunner(cache=cache)
        runner.run(GridSweep(v=[1.0, 2.0]), quadratic_evaluator)
        result = runner.run(GridSweep(v=[1.0, 2.0, 3.0]), quadratic_evaluator)
        assert result.num_cached == 2
        assert cache.stats()["stores"] == 3

    def test_failures_are_not_cached(self, tmp_path):
        cache = ResultCache(tmp_path)
        runner = CampaignRunner(cache=cache)
        runner.run(GridSweep(v=[1.0, 3.0]), failing_evaluator)
        assert cache.stats()["stores"] == 1
        result = runner.run(GridSweep(v=[1.0, 3.0]), failing_evaluator)
        assert result.num_cached == 1 and result.num_failures == 1

    def test_option_change_invalidates(self, tmp_path):
        # Same spec, same function -- but the evaluator's options differ, so
        # the content hash differs and nothing is served stale.
        cache = ResultCache(tmp_path)
        spec = GridSweep(v=[1.0, 2.0])
        loose = FunctionEvaluator(spring_fn, {"scale": 2.0},
                                  SimulationOptions(gmin=1e-12))
        tight = FunctionEvaluator(spring_fn, {"scale": 2.0},
                                  SimulationOptions(gmin=1e-9))
        runner = CampaignRunner(cache=cache)
        first = runner.run(spec, loose)
        second = runner.run(spec, tight)
        assert first.num_cached == 0 and second.num_cached == 0
        assert cache.stats()["stores"] == 4
        assert second.column("gmin")[0] == pytest.approx(1e-9)
        # And the keys really differ at the hash level:
        point = spec.points()[0]
        assert (scenario_key(evaluator_payload(loose), point)
                != scenario_key(evaluator_payload(tight), point))

    def test_config_change_invalidates(self, tmp_path):
        cache = ResultCache(tmp_path)
        spec = GridSweep(v=[1.0])
        runner = CampaignRunner(cache=cache)
        runner.run(spec, FunctionEvaluator(spring_fn, {"scale": 2.0}))
        result = runner.run(spec, FunctionEvaluator(spring_fn, {"scale": 3.0}))
        assert result.num_cached == 0
        assert result.column("force")[0] == pytest.approx(3.0)


class TestCircuitEvaluator:
    def test_op_over_grid(self):
        evaluator = CircuitEvaluator(build_divider, analysis="op",
                                     outputs=("v(out)",))
        spec = GridSweep(r_top=[1000.0, 3000.0, 9000.0])
        result = CampaignRunner().run(spec, evaluator)
        np.testing.assert_allclose(result.column("v(out)"), [5.0, 2.5, 1.0],
                                   rtol=1e-9)

    def test_pool_matches_serial(self):
        evaluator = CircuitEvaluator(build_divider, outputs=("v(out)",))
        spec = GridSweep(r_top=[500.0, 1000.0, 2000.0, 4000.0])
        serial = CampaignRunner().run(spec, evaluator)
        pool = CampaignRunner(backend="pool", processes=2).run(spec, evaluator)
        assert serial.to_rows() == pool.to_rows()

    def test_per_point_options_select_linear_solver(self):
        # A campaign axis can flip solver routing per point; the physics
        # must not change.
        evaluator = CircuitEvaluator(build_divider, outputs=("v(out)",))
        spec = GridSweep(r_top=[1000.0],
                         **{"options.linear_solver": ["dense", "sparse"]})
        result = CampaignRunner().run(spec, evaluator)
        assert result.num_failures == 0
        dense_v, sparse_v = result.column("v(out)")
        assert sparse_v == pytest.approx(dense_v, rel=1e-12)
        assert dense_v == pytest.approx(5.0, rel=1e-6)

    def test_unknown_option_is_captured_per_point(self):
        evaluator = CircuitEvaluator(build_divider, outputs=("v(out)",))
        spec = GridSweep(r_top=[1000.0], **{"options.bogus": [1.0]})
        result = CampaignRunner().run(spec, evaluator)
        assert result.num_failures == 1
        assert "bogus" in result.error(0)

    def test_waveform_analysis_requires_reduce(self):
        with pytest.raises(CampaignError):
            CircuitEvaluator(build_divider, analysis="dc",
                             analysis_args={"source_name": "V1",
                                            "values": [1.0, 2.0]})

    def test_cache_payload_covers_recipe(self):
        a = CircuitEvaluator(build_divider, outputs=("v(out)",))
        b = CircuitEvaluator(build_divider, outputs=("v(out)",),
                             options=SimulationOptions(reltol=1e-6))
        assert evaluator_payload(a) != evaluator_payload(b)
        assert evaluator_payload(a)["build"].endswith("build_divider")
