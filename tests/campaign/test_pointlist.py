"""PointList campaign spec: explicit ordered scenario points."""

from __future__ import annotations

import pytest

from repro.campaign import CampaignRunner, PointList, spec_from_dict
from repro.errors import CampaignError


def double_evaluator(point):
    return {"twice": 2.0 * float(point["x"]) + float(point["y"])}


class TestPointList:
    def test_points_in_order(self):
        spec = PointList([{"x": 1.0}, {"x": 3.0}, {"x": 2.0}])
        assert spec.names == ("x",)
        assert len(spec) == 3
        assert [p["x"] for p in spec.points()] == [1.0, 3.0, 2.0]

    def test_points_are_copies(self):
        spec = PointList([{"x": 1.0}])
        spec.points()[0]["x"] = 99.0
        assert spec.points()[0]["x"] == 1.0

    def test_rejects_empty_and_inconsistent(self):
        with pytest.raises(CampaignError):
            PointList([])
        with pytest.raises(CampaignError, match="point #1"):
            PointList([{"x": 1.0}, {"y": 2.0}])

    def test_round_trip_serialization(self):
        spec = PointList([{"x": 1.0, "y": 2.0}, {"x": 3.0, "y": 4.0}])
        rebuilt = spec_from_dict(spec.to_dict())
        assert isinstance(rebuilt, PointList)
        assert rebuilt.points() == spec.points()

    def test_combinators_work(self):
        spec = PointList([{"x": 1.0}, {"x": 2.0}]).zip(
            PointList([{"y": 10.0}, {"y": 20.0}]))
        assert spec.points() == [{"x": 1.0, "y": 10.0}, {"x": 2.0, "y": 20.0}]

    @pytest.mark.parametrize("backend", ["serial", "pool"])
    def test_runner_integration(self, backend):
        spec = PointList([{"x": 1.0, "y": 0.5}, {"x": -1.0, "y": 0.0}])
        runner = CampaignRunner(backend=backend, processes=2)
        result = runner.run(spec, double_evaluator)
        assert [row["twice"] for row in result] == [2.5, -2.0]
