"""Tests for the columnar CampaignResult table."""

from __future__ import annotations

import numpy as np
import pytest

from repro.campaign import CampaignResult, CampaignRow
from repro.errors import CampaignError


def _result():
    rows = [
        CampaignRow(0, {"corner": "slow", "v": 1.0}, {"force": 1.0}),
        CampaignRow(1, {"corner": "slow", "v": 2.0}, {"force": 4.0}),
        CampaignRow(2, {"corner": "fast", "v": 1.0}, {"force": 2.0},
                    from_cache=True),
        CampaignRow(3, {"corner": "fast", "v": 2.0}, {},
                    error="ConvergenceError: pulled in"),
    ]
    return CampaignResult(rows, param_names=("corner", "v"))


class TestColumns:
    def test_param_and_output_columns(self):
        result = _result()
        assert result.columns() == ("corner", "v", "force")
        np.testing.assert_allclose(result.column("v"), [1.0, 2.0, 1.0, 2.0])
        assert list(result.column("corner")) == ["slow", "slow", "fast", "fast"]

    def test_failed_rows_become_nan(self):
        force = _result().column("force")
        np.testing.assert_allclose(force[:3], [1.0, 4.0, 2.0])
        assert np.isnan(force[3])

    def test_ok_mask_and_failures(self):
        result = _result()
        assert list(result.ok_mask) == [True, True, True, False]
        assert result.num_failures == 1
        assert result.num_cached == 1
        assert result.failures()[0].error.startswith("ConvergenceError")
        assert result.error(3) is not None and result.error(0) is None

    def test_unknown_column_rejected(self):
        with pytest.raises(CampaignError):
            _result().column("nope")


class TestFilterGroup:
    def test_filter_by_param_value(self):
        slow = _result().filter(corner="slow")
        assert len(slow) == 2
        np.testing.assert_allclose(slow.column("force"), [1.0, 4.0])

    def test_filter_by_predicate(self):
        big = _result().filter(lambda row: row.ok and row["force"] > 1.5)
        assert len(big) == 2

    def test_group_by(self):
        groups = _result().group_by("corner")
        assert set(groups) == {"slow", "fast"}
        assert len(groups["fast"]) == 2
        assert groups["fast"].num_failures == 1

    def test_group_by_output_skips_failed_rows(self):
        groups = _result().group_by("force")
        assert set(groups) == {1.0, 4.0, 2.0}
        assert all(len(group) == 1 for group in groups.values())


class TestStatistics:
    def test_aggregates_skip_failures(self):
        result = _result()
        assert result.mean("force") == pytest.approx(7.0 / 3.0)
        assert result.minimum("force") == 1.0
        assert result.maximum("force") == 4.0
        assert result.percentile("force", 50.0) == 2.0
        summary = result.summary("force")
        assert summary["count"] == 3 and summary["p50"] == 2.0

    def test_yield_counts_failures_against(self):
        result = _result()
        # 3 of 4 points succeeded at all:
        assert result.yield_fraction() == pytest.approx(0.75)
        # 2 of 4 meet the spec limit; the failed point is a yield loss:
        assert result.yield_fraction(lambda row: row["force"] >= 2.0) \
            == pytest.approx(0.5)

    def test_empty_aggregation_rejected(self):
        result = CampaignResult([CampaignRow(0, {"v": 1.0}, {}, error="boom")],
                                param_names=("v",))
        with pytest.raises(CampaignError):
            result.mean("force")
        with pytest.raises(CampaignError):
            CampaignResult([]).yield_fraction()

    def test_to_rows(self):
        rows = _result().to_rows()
        assert rows[0] == {"corner": "slow", "v": 1.0, "force": 1.0, "error": None}
        assert rows[3]["error"].startswith("ConvergenceError")
