"""Tests for campaign specifications: grids, Monte Carlo, corners, combinators."""

from __future__ import annotations

import pytest

from repro.campaign import (
    CornerSet,
    Discrete,
    GridSweep,
    LogNormal,
    MonteCarlo,
    Normal,
    Uniform,
    spec_from_dict,
)
from repro.errors import CampaignError


class TestGridSweep:
    def test_cartesian_order_last_axis_fastest(self):
        spec = GridSweep(x=[0.0, 1.0], v=[5.0, 10.0, 15.0])
        points = spec.points()
        assert len(spec) == 6 and len(points) == 6
        assert points[0] == {"x": 0.0, "v": 5.0}
        assert points[1] == {"x": 0.0, "v": 10.0}
        assert points[3] == {"x": 1.0, "v": 5.0}
        assert spec.names == ("x", "v")

    def test_matches_nested_loop_order(self):
        xs, vs = [0.0, 1.0, 2.0], [3.0, 4.0]
        expected = [{"x": x, "v": v} for x in xs for v in vs]
        assert GridSweep(x=xs, v=vs).points() == expected

    def test_validation(self):
        with pytest.raises(CampaignError):
            GridSweep()
        with pytest.raises(CampaignError):
            GridSweep(x=[])
        with pytest.raises(CampaignError):
            GridSweep({"x": [1.0]}, x=[2.0])


class TestMonteCarlo:
    def test_same_seed_same_points(self):
        dists = {"gap": Normal(2e-6, 1e-7), "v": Uniform(0.0, 10.0)}
        a = MonteCarlo(dists, samples=16, seed=42).points()
        b = MonteCarlo(dists, samples=16, seed=42).points()
        assert a == b

    def test_different_seed_differs(self):
        dists = {"v": Uniform(0.0, 10.0)}
        a = MonteCarlo(dists, samples=8, seed=1).points()
        b = MonteCarlo(dists, samples=8, seed=2).points()
        assert a != b

    def test_wide_seeds_are_not_truncated(self):
        # Seeds differing only above bit 31 must still generate distinct
        # sample streams.
        dists = {"v": Uniform(0.0, 10.0)}
        a = MonteCarlo(dists, samples=8, seed=0).points()
        b = MonteCarlo(dists, samples=8, seed=2 ** 32).points()
        assert a != b

    def test_insertion_order_does_not_change_draws(self):
        # Per-name child generators: adding/reordering parameters must not
        # shift the samples of an existing parameter.
        a = MonteCarlo({"gap": Normal(1.0, 0.1), "v": Uniform(0, 1)},
                       samples=8, seed=7).points()
        b = MonteCarlo({"v": Uniform(0, 1), "gap": Normal(1.0, 0.1)},
                       samples=8, seed=7).points()
        assert [p["gap"] for p in a] == [p["gap"] for p in b]
        assert [p["v"] for p in a] == [p["v"] for p in b]

    def test_normal_clipping(self):
        points = MonteCarlo({"gap": Normal(1.0, 10.0, low=0.5, high=1.5)},
                            samples=64, seed=0).points()
        assert all(0.5 <= p["gap"] <= 1.5 for p in points)

    def test_lognormal_positive(self):
        points = MonteCarlo({"k": LogNormal(0.0, 2.0)}, samples=32, seed=0).points()
        assert all(p["k"] > 0.0 for p in points)

    def test_discrete_choices(self):
        points = MonteCarlo({"variant": Discrete(["a", "b"])},
                            samples=32, seed=0).points()
        assert {p["variant"] for p in points} <= {"a", "b"}

    def test_validation(self):
        with pytest.raises(CampaignError):
            MonteCarlo({}, samples=4)
        with pytest.raises(CampaignError):
            MonteCarlo({"v": Uniform(0, 1)}, samples=0)
        with pytest.raises(CampaignError):
            MonteCarlo({"v": 3.0}, samples=4)
        with pytest.raises(CampaignError):
            MonteCarlo({"v": Uniform(0, 1)}, samples=4, seed=-1)
        with pytest.raises(CampaignError):
            Uniform(1.0, 1.0)
        with pytest.raises(CampaignError):
            Normal(0.0, 0.0)


class TestCornerSet:
    def test_points_carry_labels(self):
        spec = CornerSet({"slow": {"k": 1.8, "gap": 2.2e-6},
                          "fast": {"k": 2.2, "gap": 1.8e-6}})
        points = spec.points()
        assert len(spec) == 2
        assert points[0] == {"corner": "slow", "k": 1.8, "gap": 2.2e-6}
        assert "corner" in spec.names

    def test_validation(self):
        with pytest.raises(CampaignError):
            CornerSet({})
        with pytest.raises(CampaignError):
            CornerSet({"a": {"k": 1.0}, "b": {"gap": 1.0}})
        with pytest.raises(CampaignError):
            CornerSet({"a": {"corner": 1.0}})


class TestCombinators:
    def test_zip_merges_pointwise(self):
        spec = GridSweep(x=[1.0, 2.0]).zip(GridSweep(v=[10.0, 20.0]))
        assert spec.points() == [{"x": 1.0, "v": 10.0}, {"x": 2.0, "v": 20.0}]

    def test_zip_rejects_length_mismatch_and_name_clash(self):
        with pytest.raises(CampaignError):
            GridSweep(x=[1.0, 2.0]).zip(GridSweep(v=[1.0]))
        with pytest.raises(CampaignError):
            GridSweep(x=[1.0]).zip(GridSweep(x=[2.0]))

    def test_product_left_outer(self):
        spec = CornerSet({"lo": {"k": 1.0}, "hi": {"k": 2.0}}).product(
            GridSweep(v=[5.0, 10.0]))
        points = spec.points()
        assert len(spec) == 4
        assert points[0] == {"corner": "lo", "k": 1.0, "v": 5.0}
        assert points[1] == {"corner": "lo", "k": 1.0, "v": 10.0}
        assert points[2]["corner"] == "hi"


class TestSerialization:
    @pytest.mark.parametrize("spec", [
        GridSweep(x=[0.0, 1.0], v=[2.0, 3.0]),
        MonteCarlo({"gap": Normal(2e-6, 1e-7, low=1e-6), "v": Uniform(0, 10),
                    "k": LogNormal(0.0, 0.5), "variant": Discrete(["a", "b"])},
                   samples=6, seed=9),
        CornerSet({"slow": {"k": 1.8}, "fast": {"k": 2.2}}),
        GridSweep(x=[1.0, 2.0]).zip(GridSweep(v=[3.0, 4.0])),
        CornerSet({"lo": {"k": 1.0}}).product(GridSweep(v=[5.0])),
    ])
    def test_round_trip_preserves_points(self, spec):
        rebuilt = spec_from_dict(spec.to_dict())
        assert rebuilt.points() == spec.points()
        assert rebuilt.names == spec.names

    def test_unknown_kind_rejected(self):
        with pytest.raises(CampaignError):
            spec_from_dict({"kind": "no-such-spec"})
