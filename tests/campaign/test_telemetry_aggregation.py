"""Cross-process telemetry aggregation: pool workers ship profile deltas.

The determinism contract: a campaign's merged telemetry (span counts and
metric counters) must be identical whether the points run serially in the
parent or split into chunks over pool workers -- only wall-clock timings may
differ between backends.
"""

from __future__ import annotations

import numpy as np
import pytest

from repro.campaign import CampaignRunner, GridSweep
from repro.campaign.runner import CircuitEvaluator
from repro.circuit import Circuit, SimulationOptions
from repro.circuit.devices.passive import Resistor
from repro.circuit.devices.sources import VoltageSource
from repro.errors import CampaignError


def build_divider(params: dict) -> Circuit:
    circuit = Circuit()
    n_in = circuit.electrical_node("in")
    n_out = circuit.electrical_node("out")
    circuit.add(VoltageSource("V1", n_in, circuit.ground, 5.0))
    circuit.add(Resistor("R1", n_in, n_out, float(params["r_top"])))
    circuit.add(Resistor("R2", n_out, circuit.ground, 1e3))
    return circuit


def _evaluator() -> CircuitEvaluator:
    return CircuitEvaluator(build_divider, analysis="op", outputs=["v(out)"])


SPEC = GridSweep({"r_top": np.linspace(500.0, 2000.0, 8)})


def _span_counts(result) -> dict[str, int]:
    return {name: entry["count"]
            for name, entry in result.telemetry["span_totals"].items()}


class TestCampaignTelemetry:
    def test_off_by_default(self):
        result = CampaignRunner().run(SPEC, _evaluator())
        assert result.telemetry is None
        assert result.telemetry_report() is None
        assert "telemetry" not in result.solver_summary()

    def test_invalid_mode_rejected(self):
        with pytest.raises(CampaignError):
            CampaignRunner(telemetry="everything")

    def test_serial_profile_collected(self):
        result = CampaignRunner(telemetry="summary").run(SPEC, _evaluator())
        assert result.num_failures == 0
        assert result.telemetry["mode"] == "summary"
        counts = _span_counts(result)
        assert counts["op.run"] == len(SPEC)
        assert result.telemetry["wall_s"] > 0.0

    def test_pool_matches_serial_deterministically(self):
        serial = CampaignRunner(backend="serial", telemetry="summary").run(
            SPEC, _evaluator())
        pool = CampaignRunner(backend="pool", processes=2, chunk_size=2,
                              telemetry="summary").run(SPEC, _evaluator())
        assert serial.num_failures == 0 and pool.num_failures == 0
        assert _span_counts(serial) == _span_counts(pool)
        assert serial.telemetry["metrics"].get("counters", {}) == \
            pool.telemetry["metrics"].get("counters", {})
        serial_hist = serial.telemetry["metrics"].get("histograms", {})
        pool_hist = pool.telemetry["metrics"].get("histograms", {})
        assert set(serial_hist) == set(pool_hist)
        for name in serial_hist:  # counts agree; timings are machine noise
            assert serial_hist[name]["count"] == pool_hist[name]["count"]

    def test_solver_summary_includes_profile(self):
        result = CampaignRunner(telemetry="summary").run(SPEC, _evaluator())
        summary = result.solver_summary()
        assert summary["telemetry"]["mode"] == "summary"
        assert summary["telemetry"]["span_totals"]["op.run"]["count"] == len(SPEC)
        # The exported block is a copy, not a view of the result's profile.
        summary["telemetry"]["span_totals"]["op.run"]["count"] = -1
        assert result.telemetry["span_totals"]["op.run"]["count"] == len(SPEC)

    def test_telemetry_report_renders(self):
        result = CampaignRunner(telemetry="summary").run(SPEC, _evaluator())
        report = result.telemetry_report()
        assert report.spans == []  # aggregate-only across processes
        table = report.profile_summary()
        assert "op.run" in table

    def test_derived_results_carry_no_profile(self):
        result = CampaignRunner(telemetry="summary").run(SPEC, _evaluator())
        assert result.filter(lambda row: True).telemetry is None
