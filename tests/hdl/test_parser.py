"""Tests for the HDL-A parser."""

from __future__ import annotations

import pytest

from repro.errors import HDLParseError
from repro.hdl import parse
from repro.hdl.ast_nodes import (
    Assignment,
    BinaryOp,
    Contribution,
    FunctionCall,
    Identifier,
    IfStatement,
    NumberLiteral,
    PinAccess,
    UnaryOp,
)
from repro.hdl.codegen import LISTING1_SOURCE

MINIMAL = """
ENTITY r IS
  GENERIC (rval : analog := 1000.0);
  PIN (p, n : electrical);
END ENTITY r;
ARCHITECTURE a OF r IS
BEGIN
  RELATION
    PROCEDURAL FOR dc, ac, transient =>
      [p, n].i %= [p, n].v / rval;
  END RELATION;
END ARCHITECTURE a;
"""


class TestEntityParsing:
    def test_minimal_entity(self):
        module = parse(MINIMAL)
        entity = module.entity("r")
        assert entity is not None
        assert entity.generic_names() == ("rval",)
        assert entity.generics[0].default == 1000.0
        assert entity.pin_names() == ("p", "n")
        assert entity.pin("p").nature == "electrical"

    def test_entity_lookup_case_insensitive(self):
        module = parse(MINIMAL)
        assert module.entity("R") is module.entity("r")

    def test_listing1_interface(self):
        module = parse(LISTING1_SOURCE)
        entity = module.entity("eletran")
        assert entity.generic_names() == ("A", "d", "er")
        assert entity.pin_names() == ("a", "b", "c", "e")
        assert entity.pin("c").nature == "mechanical1"

    def test_mismatched_closing_name_rejected(self):
        bad = MINIMAL.replace("END ENTITY r;", "END ENTITY wrong;")
        with pytest.raises(HDLParseError):
            parse(bad)

    def test_missing_semicolon_rejected(self):
        bad = MINIMAL.replace("END ENTITY r;", "END ENTITY r")
        with pytest.raises(HDLParseError):
            parse(bad)

    def test_garbage_toplevel_rejected(self):
        with pytest.raises(HDLParseError):
            parse("PROCEDURE nope;")


class TestArchitectureParsing:
    def test_declarations_and_blocks(self):
        module = parse(LISTING1_SOURCE)
        arch = module.architecture_of("eletran")
        assert arch.name == "a"
        assert set(arch.states()) == {"V", "S"}
        assert set(arch.variables()) == {"e0", "x"}
        domains = [block.domains for block in arch.blocks]
        assert ("init",) in domains
        assert any("transient" in d for d in domains)

    def test_architecture_selection_by_name(self):
        module = parse(LISTING1_SOURCE)
        assert module.architecture_of("eletran", "a") is not None
        assert module.architecture_of("eletran", "missing") is None

    def test_statement_kinds_in_listing1(self):
        module = parse(LISTING1_SOURCE)
        arch = module.architecture_of("eletran")
        main = [b for b in arch.blocks if b.applies_to("transient")][0]
        assert isinstance(main.statements[0], Assignment)
        contributions = [s for s in main.statements if isinstance(s, Contribution)]
        assert len(contributions) == 2
        assert contributions[0].quantity == "i"
        assert contributions[1].quantity == "f"

    def test_if_statement(self):
        source = MINIMAL.replace(
            "[p, n].i %= [p, n].v / rval;",
            """
            IF [p, n].v > 1.0 THEN
              [p, n].i %= 1.0;
            ELSIF [p, n].v < -1.0 THEN
              [p, n].i %= -1.0;
            ELSE
              [p, n].i %= 0.0;
            END IF;
            """)
        module = parse(source)
        arch = module.architecture_of("r")
        statement = arch.blocks[0].statements[0]
        assert isinstance(statement, IfStatement)
        assert len(statement.branches) == 2
        assert len(statement.else_branch) == 1


class TestExpressions:
    def _expression_of(self, text):
        source = MINIMAL.replace("[p, n].v / rval", text)
        module = parse(source)
        statement = module.architecture_of("r").blocks[0].statements[0]
        return statement.value

    def test_precedence_mul_before_add(self):
        expr = self._expression_of("1.0 + 2.0 * 3.0")
        assert isinstance(expr, BinaryOp) and expr.operator == "+"
        assert isinstance(expr.right, BinaryOp) and expr.right.operator == "*"

    def test_parentheses_override(self):
        expr = self._expression_of("(1.0 + 2.0) * 3.0")
        assert expr.operator == "*"
        assert isinstance(expr.left, BinaryOp) and expr.left.operator == "+"

    def test_power_operator(self):
        expr = self._expression_of("[p, n].v ** 2")
        assert expr.operator == "**"
        assert isinstance(expr.left, PinAccess)

    def test_unary_minus(self):
        expr = self._expression_of("-rval")
        assert isinstance(expr, UnaryOp) and expr.operator == "-"
        assert isinstance(expr.operand, Identifier)

    def test_function_call_with_arguments(self):
        expr = self._expression_of("table1d([p, n].v, 0.0, 1.0, 2.0, 3.0)")
        assert isinstance(expr, FunctionCall)
        assert expr.name == "table1d"
        assert len(expr.arguments) == 5

    def test_comparison_operator(self):
        expr = self._expression_of("rval >= 2.0")
        assert expr.operator == ">="

    def test_number_literal(self):
        expr = self._expression_of("8.8542e-12")
        assert isinstance(expr, NumberLiteral)
        assert expr.value == pytest.approx(8.8542e-12)

    def test_node_ids_are_unique(self):
        module = parse(LISTING1_SOURCE)
        arch = module.architecture_of("eletran")
        ids = []

        def collect(node):
            ids.append(node.node_id)
            for attr in ("left", "right", "operand", "value"):
                child = getattr(node, attr, None)
                if child is not None and hasattr(child, "node_id"):
                    collect(child)
            for child in getattr(node, "arguments", ()):
                collect(child)

        for block in arch.blocks:
            for statement in block.statements:
                collect(statement)
        non_zero = [i for i in ids if i != 0]
        assert len(non_zero) == len(set(non_zero))

    def test_generic_default_must_be_literal(self):
        bad = MINIMAL.replace(":= 1000.0", ":= rval + 1.0")
        with pytest.raises(HDLParseError):
            parse(bad)


class TestDiagnostics:
    """Parse errors carry line/column and the offending source text."""

    def test_error_points_at_offending_token(self):
        bad = MINIMAL.replace("PIN (p, n : electrical);",
                              "PIN (p, n : electrical)")
        with pytest.raises(HDLParseError) as excinfo:
            parse(bad)
        # The parser trips on the END keyword (the pin clause on the line
        # above never closed); position and text both ride along on the
        # exception.
        assert excinfo.value.line == 5
        assert excinfo.value.column >= 1
        assert "';'" in str(excinfo.value)
        assert f"line {excinfo.value.line}" in str(excinfo.value)

    def test_literal_default_error_carries_position(self):
        bad = MINIMAL.replace(":= 1000.0", ":= rval + 1.0")
        with pytest.raises(HDLParseError) as excinfo:
            parse(bad)
        assert "'rval'" in str(excinfo.value)
        assert excinfo.value.line == 3
        assert excinfo.value.column > 1

    def test_variable_default_error_carries_position(self):
        bad = MINIMAL.replace(
            "ARCHITECTURE a OF r IS",
            "ARCHITECTURE a OF r IS\n  VARIABLE x : analog := foo;")
        with pytest.raises(HDLParseError) as excinfo:
            parse(bad)
        assert "'foo'" in str(excinfo.value)
        assert excinfo.value.line == 7

    def test_eof_rendered_as_end_of_input(self):
        with pytest.raises(HDLParseError) as excinfo:
            parse("ENTITY r IS")
        assert "end of input" in str(excinfo.value)
        assert "''" not in str(excinfo.value)
