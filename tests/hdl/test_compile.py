"""Behavioral-model compiler: bit-identity corpus and IR pass unit tests.

The compiler's contract is that compiled kernels replicate the AD
interpreter's IEEE-754 arithmetic operation by operation, so every analysis
result -- operating points, AC sweeps, transients, dual-seeded parameter
gradients -- must be **bitwise identical** with ``behavioral_compile`` on
and off.  The corpus below covers the behavioral device idioms used across
the suite: linear and nonlinear contributions, ``ddt``/``integ`` state,
extra unknowns with equations, records, data-dependent guards, and the
forensics/health-check instrumentation paths.
"""

from __future__ import annotations

import numpy as np
import pytest

from repro.ad.functions import exp
from repro.circuit import (
    ACAnalysis,
    Circuit,
    OperatingPointAnalysis,
    SimulationOptions,
    Step,
    TransientAnalysis,
)
from repro.circuit.devices.behavioral import BehavioralDevice, Port
from repro.circuit.mna import MNASystem
from repro.hdl import compile as hdl_compile
from repro.hdl.compile import ir, passes
from repro.natures import ELECTRICAL

COMPILED = SimulationOptions(behavioral_compile=True)
INTERP = SimulationOptions(behavioral_compile=False)


# ------------------------------------------------------------------- corpus
def behavioral_resistor(circuit, name, p, n, resistance):
    def behavior(ctx):
        ctx.contribute("e", ctx.across("e") / ctx.param("R"))

    return circuit.add(BehavioralDevice(
        name, [Port("e", circuit.electrical_node(p),
                    circuit.electrical_node(n), ELECTRICAL)],
        behavior, params={"R": resistance}))


def behavioral_capacitor(circuit, name, p, n, capacitance):
    def behavior(ctx):
        ctx.contribute("e", ctx.param("C") * ctx.ddt(ctx.across("e"),
                                                     key="v"))

    return circuit.add(BehavioralDevice(
        name, [Port("e", circuit.electrical_node(p),
                    circuit.electrical_node(n), ELECTRICAL)],
        behavior, params={"C": capacitance}))


def diode_circuit() -> Circuit:
    """Exponential behavioral diode behind a resistor: nonlinear Newton."""
    circuit = Circuit()
    circuit.voltage_source("V1", "n1", "0", 2.0)
    circuit.resistor("R1", "n1", "n2", 1e3)

    def behavior(ctx):
        v = ctx.across("e")
        ctx.contribute("e",
                       ctx.param("isat") * (exp(v / ctx.param("vt")) - 1.0))

    circuit.add(BehavioralDevice(
        "DB", [Port("e", circuit.electrical_node("n2"), circuit.ground,
                    ELECTRICAL)],
        behavior, params={"isat": 1e-9, "vt": 0.05}))
    return circuit


def rc_circuit() -> Circuit:
    """Step-driven RC with behavioral R and C plus an integ/record monitor."""
    circuit = Circuit()
    circuit.voltage_source("V1", "in", "0", Step(0.0, 5.0, ramp=1e-9))
    behavioral_resistor(circuit, "XR", "in", "out", 1e3)
    behavioral_capacitor(circuit, "XC", "out", "0", 1e-6)

    def monitor(ctx):
        # Leaky integral of the node voltage: exercises integ + record.
        q = ctx.integ(ctx.across("e"), key="q", initial=0.0)
        ctx.contribute("e", 1e-9 * q)
        ctx.record("q", q)

    circuit.add(BehavioralDevice(
        "XQ", [Port("e", circuit.electrical_node("out"), circuit.ground,
                    ELECTRICAL)], monitor))
    return circuit


def inductor_circuit() -> Circuit:
    """Behavioral inductor: extra unknown + branch equation + ddt."""
    circuit = Circuit()
    circuit.voltage_source("V1", "in", "0", Step(0.0, 1.0, ramp=1e-9))
    circuit.resistor("R1", "in", "out", 10.0)

    def behavior(ctx):
        current = ctx.unknown("i")
        ctx.contribute("e", current)
        ctx.equation("i", ctx.across("e") - 10e-3 * ctx.ddt(current, key="i"))

    circuit.add(BehavioralDevice(
        "XL", [Port("e", circuit.electrical_node("out"), circuit.ground,
                    ELECTRICAL)],
        behavior, extra_unknowns=("i",)))
    return circuit


def guarded_circuit() -> Circuit:
    """Piecewise conductance: the trace guard flips as the drive ramps."""
    circuit = Circuit()
    circuit.voltage_source("V1", "in", "0", Step(0.0, 4.0, ramp=2e-3))
    circuit.resistor("R1", "in", "out", 1e3)

    def behavior(ctx):
        v = ctx.across("e")
        if v > 2.0:
            ctx.contribute("e", (v - 1.0) / ctx.param("R"))
        else:
            ctx.contribute("e", v / (2.0 * ctx.param("R")))

    circuit.add(BehavioralDevice(
        "XG", [Port("e", circuit.electrical_node("out"), circuit.ground,
                    ELECTRICAL)],
        behavior, params={"R": 1e3}))
    return circuit


def _op_pair(build):
    return (OperatingPointAnalysis(build(), COMPILED).run(),
            OperatingPointAnalysis(build(), INTERP).run())


def _transient_pair(build, t_stop=2e-3, t_step=10e-6, **opts):
    results = []
    for base in (COMPILED, INTERP):
        options = SimulationOptions(
            behavioral_compile=base.behavioral_compile, **opts)
        results.append(TransientAnalysis(build(), t_stop=t_stop,
                                         t_step=t_step,
                                         options=options).run())
    return results


def assert_transients_identical(compiled, interp):
    assert np.array_equal(compiled.time, interp.time)
    assert set(compiled._data) == set(interp._data)
    for name in interp._data:
        assert np.array_equal(np.asarray(compiled._data[name]),
                              np.asarray(interp._data[name])), name


class TestBitIdenticalAnalyses:
    def test_operating_point_nonlinear(self):
        compiled, interp = _op_pair(diode_circuit)
        assert np.array_equal(compiled.raw, interp.raw)
        assert compiled.iterations == interp.iterations

    def test_operating_point_linear_divider(self):
        def build():
            circuit = Circuit()
            circuit.voltage_source("V1", "in", "0", 6.0)
            circuit.resistor("R1", "in", "out", 1e3)
            behavioral_resistor(circuit, "X1", "out", "0", 2e3)
            return circuit

        compiled, interp = _op_pair(build)
        assert np.array_equal(compiled.raw, interp.raw)

    def test_ac_sweep(self):
        def run(options):
            circuit = Circuit()
            circuit.voltage_source("V1", "in", "0", 0.0, ac=1.0)
            behavioral_resistor(circuit, "XR", "in", "out", 1e3)
            behavioral_capacitor(circuit, "XC", "out", "0", 1e-6)
            return ACAnalysis(circuit, [10.0, 159.0, 5e3], options).run()

        compiled, interp = run(COMPILED), run(INTERP)
        assert np.array_equal(np.asarray(compiled["v(out)"]),
                              np.asarray(interp["v(out)"]))

    def test_transient_rc_with_integ_and_record(self):
        compiled, interp = _transient_pair(rc_circuit)
        assert_transients_identical(compiled, interp)
        assert "q(XQ)" in interp._data

    def test_transient_extra_unknown_equation(self):
        compiled, interp = _transient_pair(inductor_circuit)
        assert_transients_identical(compiled, interp)

    def test_transient_backward_euler(self):
        compiled, interp = _transient_pair(rc_circuit,
                                           integration_method="backward_euler")
        assert_transients_identical(compiled, interp)

    def test_transient_guard_crossing_retraces(self):
        # The drive ramp crosses the v > 2 guard mid-run: the runtime must
        # retrace and compile the second variant, not fall back silently.
        before = hdl_compile.cache_info()["kernels"]
        compiled, interp = _transient_pair(guarded_circuit, t_stop=4e-3)
        assert_transients_identical(compiled, interp)
        assert hdl_compile.cache_info()["kernels"] >= before

    def test_forensics_and_health_paths(self):
        compiled, interp = _transient_pair(rc_circuit, forensics=True,
                                           health_check=True)
        assert_transients_identical(compiled, interp)


class TestDualSeededGradients:
    def test_sensitivities_match_interpreter_bitwise(self):
        params = ["DB.isat", "DB.vt", "R1.resistance"]
        matrices = []
        for options in (COMPILED, INTERP):
            analysis = OperatingPointAnalysis(diode_circuit(), options)
            matrices.append(
                analysis.sensitivities(params, ["v(n2)"]).matrix)
        assert np.array_equal(matrices[0], matrices[1])

    def test_parameter_gradients_analytic(self):
        # i = v / R so di/dR = -v / R^2 at the operating point.
        circuit = Circuit()
        circuit.voltage_source("V1", "in", "0", 6.0)
        circuit.resistor("R1", "in", "out", 1e3)
        device = behavioral_resistor(circuit, "X1", "out", "0", 2e3)
        op = OperatingPointAnalysis(circuit, COMPILED).run()
        system = MNASystem(circuit)
        ctx = system.assemble(op.raw, "op", 0.0, None, COMPILED, 1.0,
                              want_jacobian=False)
        grads = hdl_compile.parameter_gradients(device, ctx)
        assert grads is not None
        (_, per_param), = grads.items()
        v = op.voltage("out")
        assert per_param["R"] == pytest.approx(-v / 2e3 ** 2, rel=1e-12)


class TestEscapeHatches:
    def test_options_flag_keeps_interpreter(self):
        before = hdl_compile.cache_info()["kernels"]
        result = TransientAnalysis(rc_circuit(), t_stop=5e-4, t_step=10e-6,
                                   options=INTERP).run()
        assert len(result.time) > 1
        assert hdl_compile.cache_info()["kernels"] == before

    def test_environment_variable_forces_interpreter(self, monkeypatch):
        monkeypatch.setenv("REPRO_BEHAVIORAL_INTERP", "1")
        circuit = diode_circuit()
        before = hdl_compile.cache_info()["kernels"]
        forced = OperatingPointAnalysis(circuit, COMPILED).run()
        assert hdl_compile.cache_info()["kernels"] == before
        assert not hdl_compile.batch_ready(circuit["DB"])
        monkeypatch.delenv("REPRO_BEHAVIORAL_INTERP")
        compiled = OperatingPointAnalysis(diode_circuit(), COMPILED).run()
        assert np.array_equal(forced.raw, compiled.raw)


class TestBatchCompiled:
    def test_compiled_behavioral_is_batch_safe_with_serial_parity(self):
        from repro.circuit.analysis.batch import (ParameterColumns,
                                                  batched_operating_points)

        circuit = diode_circuit()
        # The compiled kernels make the behavioral diode batch-safe: the
        # whole batch stamps vectorized, no per-lane interpreter fallback.
        assert circuit["DB"].batch_safe is True
        vdd = np.array([1.0, 2.0, 3.0])
        columns = ParameterColumns(circuit, [("V1", "dc", vdd)])
        results = batched_operating_points(circuit, COMPILED, columns)
        assert all(op is not None for op in results)
        for lane, op in enumerate(results):
            columns.set_lane(lane)
            try:
                reference = OperatingPointAnalysis(circuit, COMPILED).run()
            finally:
                columns.restore()
            assert op.iterations == reference.iterations
            for key, value in reference.items():
                scale = max(1.0, abs(value))
                assert abs(op[key] - value) / scale <= 1e-12

    def test_batch_safe_honors_options_escape_hatch(self):
        circuit = diode_circuit()
        assert circuit["DB"].batch_safe_for(COMPILED) is True
        assert circuit["DB"].batch_safe_for(INTERP) is False


class TestIRPasses:
    def test_constant_folding_matches_python_floats(self):
        builder = ir.IRBuilder()
        node = builder.binary("/", builder.const(1.0), builder.const(3.0))
        assert isinstance(node, ir.Const)
        assert node.value.hex() == (1.0 / 3.0).hex()

    def test_hash_consing_is_cse(self):
        builder = ir.IRBuilder()
        v = builder.input("across", "e")
        a = builder.binary("*", v, builder.const(2.0))
        b = builder.binary("*", v, builder.const(2.0))
        assert a is b  # structurally equal -> the same interned object

    @pytest.mark.parametrize("make", [
        lambda b, x: b.binary("*", x, b.const(1.0)),
        lambda b, x: b.binary("*", b.const(1.0), x),
        lambda b, x: b.binary("/", x, b.const(1.0)),
        lambda b, x: b.binary("**", x, b.const(1.0)),
        lambda b, x: b.binary("-", x, b.const(0.0)),
        lambda b, x: b.unary("pos", x),
        lambda b, x: b.unary("neg", b.unary("neg", x)),
    ], ids=["mul1", "1mul", "div1", "pow1", "sub0", "pos", "negneg"])
    def test_exact_identities_simplify_away(self, make):
        builder = ir.IRBuilder()
        x = builder.input("across", "e")
        assert passes.simplify(builder, make(builder, x)) is x

    @pytest.mark.parametrize("make", [
        # x + 0.0 flips -0.0 to +0.0; 0.0 - x has the same zero-sign
        # hazard; x * 0.0 is wrong for negative and non-finite x.
        lambda b, x: b.binary("+", x, b.const(0.0)),
        lambda b, x: b.binary("-", b.const(0.0), x),
        lambda b, x: b.binary("*", x, b.const(0.0)),
    ], ids=["add0", "0sub", "mul0"])
    def test_inexact_identities_preserved(self, make):
        builder = ir.IRBuilder()
        x = builder.input("across", "e")
        node = make(builder, x)
        assert passes.simplify(builder, node) is node

    def test_simplify_is_idempotent(self):
        builder = ir.IRBuilder()
        x = builder.input("across", "e")
        node = builder.binary("*", builder.unary("neg", builder.unary(
            "neg", x)), builder.const(1.0))
        once = passes.simplify(builder, node)
        assert passes.simplify(builder, once) is once


class TestFingerprint:
    def test_deterministic(self):
        payload = ("op", ("e", 1.0, ("across", "e")), None, True)
        assert ir.fingerprint(payload) == ir.fingerprint(payload)

    def test_component_sensitivity(self):
        base = ("op", ("e", 1.0))
        assert ir.fingerprint(base) != ir.fingerprint(("op", ("e", 2.0)))
        assert ir.fingerprint(base) != ir.fingerprint(("dc", ("e", 1.0)))

    def test_zero_sign_and_type_distinguished(self):
        assert ir.fingerprint((0.0,)) != ir.fingerprint((-0.0,))
        assert ir.fingerprint((1,)) != ir.fingerprint(("1",))
        assert ir.fingerprint((1,)) != ir.fingerprint((1.0,))
        assert ir.fingerprint((True,)) != ir.fingerprint((1,))

    def test_nesting_shape_distinguished(self):
        assert ir.fingerprint(("a", ("b", "c"))) != \
            ir.fingerprint(("a", "b", "c"))

    def test_equivalent_devices_share_kernels(self):
        # Two independent devices with structurally identical behaviours
        # land on the same fingerprint -> the same cached KernelSet.
        kernels = []
        for _ in range(2):
            circuit = Circuit()
            circuit.voltage_source("V1", "a", "0", 1.0)
            device = behavioral_resistor(circuit, "XS", "a", "0", 123.0)
            kernels.append(hdl_compile.compile_device(device))
        assert kernels[0] is kernels[1]
