"""Tests for the HDL-A lexer."""

from __future__ import annotations

import pytest

from repro.errors import HDLLexError
from repro.hdl import tokenize
from repro.hdl.tokens import TokenType


def kinds(source):
    return [token.type for token in tokenize(source)]


def values(source):
    return [token.value for token in tokenize(source)[:-1]]


class TestBasicTokens:
    def test_empty_source_yields_eof(self):
        tokens = tokenize("")
        assert len(tokens) == 1 and tokens[0].type is TokenType.EOF

    def test_keywords_case_insensitive(self):
        for text in ("ENTITY", "entity", "Entity"):
            assert tokenize(text)[0].type is TokenType.KEYWORD

    def test_identifier_with_underscore_and_digits(self):
        token = tokenize("my_pin2")[0]
        assert token.type is TokenType.IDENT and token.value == "my_pin2"

    @pytest.mark.parametrize("text,expected", [
        ("42", 42.0),
        ("3.14", 3.14),
        ("8.8542e-12", 8.8542e-12),
        ("1E6", 1e6),
        (".5", 0.5),
        ("2.", 2.0),
    ])
    def test_numbers(self, text, expected):
        token = tokenize(text)[0]
        assert token.type is TokenType.NUMBER
        assert float(token.value) == pytest.approx(expected)

    def test_operators(self):
        source = ":= %= => ** /= <= >= < > = + - * / ( ) [ ] , ; : ."
        types = kinds(source)[:-1]
        assert TokenType.ASSIGN in types
        assert TokenType.CONTRIB in types
        assert TokenType.ARROW in types
        assert TokenType.POWER in types
        assert TokenType.NEQ in types
        assert types.count(TokenType.LPAREN) == 1

    def test_comments_are_skipped(self):
        tokens = tokenize("a := 1.0; -- this is a comment\nb := 2.0;")
        text = [t.value for t in tokens if t.type is TokenType.IDENT]
        assert text == ["a", "b"]

    def test_string_literal(self):
        token = tokenize('"hello world"')[0]
        assert token.type is TokenType.STRING and token.value == "hello world"

    def test_unterminated_string_raises(self):
        with pytest.raises(HDLLexError):
            tokenize('"oops')

    def test_unexpected_character_raises_with_position(self):
        with pytest.raises(HDLLexError) as excinfo:
            tokenize("a := 1.0;\nb := #;")
        assert excinfo.value.line == 2

    def test_positions_tracked(self):
        tokens = tokenize("a\n  b")
        assert tokens[0].line == 1 and tokens[0].column == 1
        assert tokens[1].line == 2 and tokens[1].column == 3


class TestListing1Tokens:
    def test_contribution_line_tokenizes(self):
        source = "[a, b].i %= e0*er*A/(d + x)*ddt(V);"
        token_values = values(source)
        assert "%=" in token_values and "ddt" in token_values

    def test_full_listing_token_count_reasonable(self):
        from repro.hdl.codegen import LISTING1_SOURCE

        tokens = tokenize(LISTING1_SOURCE)
        assert tokens[-1].type is TokenType.EOF
        assert len(tokens) > 100
