"""Tests for the HDL built-in function library."""

from __future__ import annotations

import pytest
from hypothesis import given, strategies as st

from repro.ad import seed
from repro.errors import HDLElaborationError
from repro.hdl.stdlib import ANALOG_OPERATORS, BUILTIN_FUNCTIONS, limit, table1d


class TestRegistry:
    def test_analog_operators_are_not_pure_functions(self):
        assert "ddt" in ANALOG_OPERATORS and "integ" in ANALOG_OPERATORS
        assert "ddt" not in BUILTIN_FUNCTIONS

    def test_expected_functions_present(self):
        for name in ("sqrt", "exp", "log", "sin", "cos", "abs", "min", "max",
                     "table1d", "limit", "sign", "tanh"):
            assert name in BUILTIN_FUNCTIONS

    def test_functions_accept_duals(self):
        result = BUILTIN_FUNCTIONS["sqrt"](seed(4.0))
        assert result.value == pytest.approx(2.0)
        assert result.partial() == pytest.approx(0.25)


class TestTable1D:
    def test_interpolation_and_extrapolation(self):
        args = (0.0, 0.0, 1.0, 10.0, 2.0, 40.0)
        assert table1d(0.5, *args) == pytest.approx(5.0)
        assert table1d(1.5, *args) == pytest.approx(25.0)
        assert table1d(3.0, *args) == pytest.approx(70.0)   # extrapolated
        assert table1d(-1.0, *args) == pytest.approx(-10.0)

    def test_dual_input_carries_segment_slope(self):
        args = (0.0, 0.0, 1.0, 10.0, 2.0, 40.0)
        result = table1d(seed(1.5), *args)
        assert result.partial() == pytest.approx(30.0)

    def test_argument_validation(self):
        with pytest.raises(HDLElaborationError):
            table1d(0.5, 0.0, 1.0)               # too few breakpoints
        with pytest.raises(HDLElaborationError):
            table1d(0.5, 0.0, 1.0, 2.0)          # odd argument count
        with pytest.raises(HDLElaborationError):
            table1d(0.5, 1.0, 0.0, 0.0, 1.0)     # non-increasing abscissae

    @given(st.floats(-3.0, 6.0))
    def test_continuity(self, x):
        args = (0.0, 1.0, 1.0, 3.0, 2.0, 2.0, 4.0, 8.0)
        assert abs(table1d(x + 1e-9, *args) - table1d(x, *args)) < 1e-6


class TestLimit:
    def test_clamping(self):
        assert limit(5.0, 0.0, 1.0) == 1.0
        assert limit(-5.0, 0.0, 1.0) == 0.0
        assert limit(0.3, 0.0, 1.0) == 0.3

    def test_dual_passes_through_inside_range(self):
        result = limit(seed(0.5), 0.0, 1.0)
        assert result.partial() == pytest.approx(1.0)

    def test_invalid_bounds(self):
        with pytest.raises(HDLElaborationError):
            limit(0.5, 1.0, 0.0)
