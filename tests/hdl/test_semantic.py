"""Tests for HDL-A semantic analysis."""

from __future__ import annotations

import pytest

from repro.errors import HDLSemanticError
from repro.hdl import analyze, parse
from repro.hdl.codegen import LISTING1_SOURCE

TEMPLATE = """
ENTITY dev IS
  GENERIC (g : analog);
  PIN (a, b : electrical; c, e : mechanical1);
END ENTITY dev;
ARCHITECTURE arch OF dev IS
  VARIABLE x : analog;
  STATE V : analog;
BEGIN
  RELATION
    PROCEDURAL FOR dc, ac, transient =>
      {body}
  END RELATION;
END ARCHITECTURE arch;
"""


def analyzed(body):
    return analyze(parse(TEMPLATE.format(body=body)), "dev")


class TestValidModels:
    def test_listing1_analyzes(self):
        model = analyze(parse(LISTING1_SOURCE), "eletran")
        assert ("a", "b") in model.port_pairs
        assert ("c", "e") in model.port_pairs
        assert model.pin_natures["c"] == "mechanical_translation"
        assert set(model.states) == {"V", "S"}

    def test_port_name_derivation(self):
        model = analyze(parse(LISTING1_SOURCE), "eletran")
        assert model.port_name("a", "b") == "a_b"

    def test_contribution_of_force_allowed_on_mechanical_pair(self):
        model = analyzed("[c, e].f %= g*[a, b].v;")
        assert ("c", "e") in model.port_pairs


class TestRejectedModels:
    def test_unknown_entity(self):
        with pytest.raises(HDLSemanticError, match="unknown entity"):
            analyze(parse(LISTING1_SOURCE), "nonexistent")

    def test_missing_architecture(self):
        module = parse(TEMPLATE.format(body="[a, b].i %= 0.0;"))
        with pytest.raises(HDLSemanticError, match="no architecture"):
            analyze(module, "dev", "other")

    def test_unknown_identifier(self):
        with pytest.raises(HDLSemanticError, match="identifier"):
            analyzed("[a, b].i %= undefined_name;")

    def test_unknown_function(self):
        with pytest.raises(HDLSemanticError, match="unknown function"):
            analyzed("[a, b].i %= mystery(1.0);")

    def test_ddt_arity_checked(self):
        with pytest.raises(HDLSemanticError, match="exactly one argument"):
            analyzed("[a, b].i %= ddt(1.0, 2.0);")

    def test_undeclared_pin(self):
        with pytest.raises(HDLSemanticError, match="not declared"):
            analyzed("[a, z].i %= 0.0;")

    def test_mixed_nature_pin_pair(self):
        with pytest.raises(HDLSemanticError, match="different natures"):
            analyzed("[a, c].i %= 0.0;")

    def test_reading_through_quantity_rejected(self):
        with pytest.raises(HDLSemanticError, match="across quantity"):
            analyzed("[a, b].i %= [a, b].i;")

    def test_contributing_across_quantity_rejected(self):
        with pytest.raises(HDLSemanticError, match="through quantity"):
            analyzed("[a, b].v %= 1.0;")

    def test_model_with_no_pin_reference_rejected(self):
        source = """
        ENTITY dead IS
          GENERIC (g : analog);
          PIN (a, b : electrical);
        END ENTITY dead;
        ARCHITECTURE arch OF dead IS
          VARIABLE x : analog;
        BEGIN
          RELATION
            PROCEDURAL FOR dc, ac, transient =>
              x := g;
          END RELATION;
        END ARCHITECTURE arch;
        """
        with pytest.raises(HDLSemanticError, match="never references any pin"):
            analyze(parse(source), "dead")

    def test_unknown_nature(self):
        source = TEMPLATE.replace("mechanical1", "gravitational")
        with pytest.raises(HDLSemanticError, match="unknown nature"):
            analyze(parse(source.format(body="[a, b].i %= 0.0;")), "dev")

    def test_assigned_names_become_known(self):
        # x is declared, y is assigned before use: both must be accepted.
        model = analyzed("x := 1.0; y := x + 1.0; [a, b].i %= y;")
        assert model is not None
