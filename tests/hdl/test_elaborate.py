"""Tests for HDL elaboration: parsed models behave like native devices."""

from __future__ import annotations

import numpy as np
import pytest

from repro.circuit import (
    ACAnalysis,
    Circuit,
    OperatingPointAnalysis,
    Step,
    TransientAnalysis,
)
from repro.errors import HDLElaborationError
from repro.hdl import instantiate, parse
from repro.hdl.codegen import LISTING1_SOURCE

RESISTOR_HDL = """
ENTITY rbeh IS
  GENERIC (rval : analog := 100.0);
  PIN (p, n : electrical);
END ENTITY rbeh;
ARCHITECTURE a OF rbeh IS
BEGIN
  RELATION
    PROCEDURAL FOR dc, ac, transient =>
      [p, n].i %= [p, n].v / rval;
  END RELATION;
END ARCHITECTURE a;
"""

CAPACITOR_HDL = """
ENTITY cbeh IS
  GENERIC (cval : analog);
  PIN (p, n : electrical);
END ENTITY cbeh;
ARCHITECTURE a OF cbeh IS
  STATE V : analog;
BEGIN
  RELATION
    PROCEDURAL FOR dc, ac, transient =>
      V := [p, n].v;
      [p, n].i %= cval*ddt(V);
  END RELATION;
END ARCHITECTURE a;
"""

PIECEWISE_HDL = """
ENTITY clip IS
  GENERIC (lim : analog := 1.0);
  PIN (p, n : electrical);
END ENTITY clip;
ARCHITECTURE a OF clip IS
  VARIABLE v : analog;
BEGIN
  RELATION
    PROCEDURAL FOR dc, ac, transient =>
      v := [p, n].v;
      IF v > lim THEN
        [p, n].i %= (v - lim)*1.0e-3;
      ELSIF v < -lim THEN
        [p, n].i %= (v + lim)*1.0e-3;
      ELSE
        [p, n].i %= 0.0;
      END IF;
  END RELATION;
END ARCHITECTURE a;
"""


def add_hdl(circuit, source, entity, name, generics, pins):
    module = parse(source)
    node_map = {pin: circuit.node(node, nature) for pin, (node, nature) in pins.items()}
    device = instantiate(module, entity, name=name, generics=generics, pins=node_map)
    return circuit.add(device)


class TestResistorModel:
    def test_divider_with_hdl_resistor(self):
        circuit = Circuit()
        circuit.voltage_source("V1", "in", "0", 10.0)
        circuit.resistor("R1", "in", "out", 1e3)
        add_hdl(circuit, RESISTOR_HDL, "rbeh", "X1", {"rval": 3e3},
                {"p": ("out", "electrical"), "n": ("0", "electrical")})
        op = OperatingPointAnalysis(circuit).run()
        assert op.voltage("out") == pytest.approx(7.5, rel=1e-6)

    def test_generic_default_used_when_omitted(self):
        circuit = Circuit()
        circuit.voltage_source("V1", "in", "0", 1.0)
        add_hdl(circuit, RESISTOR_HDL, "rbeh", "X1", {},
                {"p": ("in", "electrical"), "n": ("0", "electrical")})
        op = OperatingPointAnalysis(circuit).run()
        assert op["i(X1.p_n)"] == pytest.approx(1.0 / 100.0, rel=1e-6)

    def test_missing_generic_raises(self):
        module = parse(CAPACITOR_HDL)
        circuit = Circuit()
        with pytest.raises(HDLElaborationError, match="generic"):
            instantiate(module, "cbeh", name="X1", generics={},
                        pins={"p": circuit.electrical_node("a"), "n": circuit.ground})

    def test_unknown_generic_raises(self):
        module = parse(RESISTOR_HDL)
        circuit = Circuit()
        with pytest.raises(HDLElaborationError, match="unknown generics"):
            instantiate(module, "rbeh", name="X1", generics={"bogus": 1.0},
                        pins={"p": circuit.electrical_node("a"), "n": circuit.ground})

    def test_missing_pin_raises(self):
        module = parse(RESISTOR_HDL)
        circuit = Circuit()
        with pytest.raises(HDLElaborationError, match="not connected"):
            instantiate(module, "rbeh", name="X1", generics={},
                        pins={"p": circuit.electrical_node("a")})

    def test_unknown_pin_raises(self):
        module = parse(RESISTOR_HDL)
        circuit = Circuit()
        with pytest.raises(HDLElaborationError, match="unknown pins"):
            instantiate(module, "rbeh", name="X1", generics={},
                        pins={"p": circuit.electrical_node("a"), "n": circuit.ground,
                              "z": circuit.ground})


class TestCapacitorModel:
    def test_rc_step_response_matches_native_capacitor(self):
        hdl_circuit = Circuit()
        hdl_circuit.voltage_source("V1", "in", "0", Step(0.0, 5.0, ramp=1e-9))
        hdl_circuit.resistor("R1", "in", "out", 1e3)
        add_hdl(hdl_circuit, CAPACITOR_HDL, "cbeh", "X1", {"cval": 1e-6},
                {"p": ("out", "electrical"), "n": ("0", "electrical")})

        native = Circuit()
        native.voltage_source("V1", "in", "0", Step(0.0, 5.0, ramp=1e-9))
        native.resistor("R1", "in", "out", 1e3)
        native.capacitor("C1", "out", "0", 1e-6)

        res_hdl = TransientAnalysis(hdl_circuit, t_stop=4e-3, t_step=20e-6).run()
        res_nat = TransientAnalysis(native, t_stop=4e-3, t_step=20e-6).run()
        probe_times = np.linspace(0.1e-3, 3.9e-3, 20)
        assert np.allclose(res_hdl.sample("v(out)", probe_times),
                           res_nat.sample("v(out)", probe_times), rtol=1e-3)

    def test_ac_response_matches_native_capacitor(self):
        hdl_circuit = Circuit()
        hdl_circuit.voltage_source("V1", "in", "0", 0.0, ac=1.0)
        hdl_circuit.resistor("R1", "in", "out", 1e3)
        add_hdl(hdl_circuit, CAPACITOR_HDL, "cbeh", "X1", {"cval": 1e-6},
                {"p": ("out", "electrical"), "n": ("0", "electrical")})
        f_corner = 1.0 / (2.0 * np.pi * 1e-3)
        result = ACAnalysis(hdl_circuit, [f_corner]).run()
        assert abs(result.at("v(out)", f_corner)) == pytest.approx(1 / np.sqrt(2), rel=1e-6)

    def test_state_recorded_in_outputs(self):
        circuit = Circuit()
        circuit.voltage_source("V1", "in", "0", 2.0)
        circuit.resistor("R1", "in", "out", 1e3)
        add_hdl(circuit, CAPACITOR_HDL, "cbeh", "X1", {"cval": 1e-9},
                {"p": ("out", "electrical"), "n": ("0", "electrical")})
        op = OperatingPointAnalysis(circuit).run()
        assert op["V(X1)"] == pytest.approx(2.0, rel=1e-6)


class TestPiecewiseModel:
    def test_dead_zone_behaviour(self):
        circuit = Circuit()
        circuit.voltage_source("V1", "in", "0", 0.5)
        add_hdl(circuit, PIECEWISE_HDL, "clip", "X1", {"lim": 1.0},
                {"p": ("in", "electrical"), "n": ("0", "electrical")})
        op = OperatingPointAnalysis(circuit).run()
        assert op["i(X1.p_n)"] == pytest.approx(0.0, abs=1e-12)

    def test_conducting_region(self):
        circuit = Circuit()
        circuit.voltage_source("V1", "in", "0", 3.0)
        add_hdl(circuit, PIECEWISE_HDL, "clip", "X1", {"lim": 1.0},
                {"p": ("in", "electrical"), "n": ("0", "electrical")})
        op = OperatingPointAnalysis(circuit).run()
        assert op["i(X1.p_n)"] == pytest.approx(2e-3, rel=1e-6)

    def test_negative_region_symmetry(self):
        circuit = Circuit()
        circuit.voltage_source("V1", "in", "0", -3.0)
        add_hdl(circuit, PIECEWISE_HDL, "clip", "X1", {"lim": 1.0},
                {"p": ("in", "electrical"), "n": ("0", "electrical")})
        op = OperatingPointAnalysis(circuit).run()
        assert op["i(X1.p_n)"] == pytest.approx(-2e-3, rel=1e-6)


class TestListing1Elaboration:
    def test_listing1_builds_a_two_port_device(self):
        circuit = Circuit()
        module = parse(LISTING1_SOURCE)
        device = instantiate(
            module, "eletran", name="XD",
            generics={"A": 1e-4, "d": 0.15e-3, "er": 1.0},
            pins={"a": circuit.electrical_node("drive"), "b": circuit.ground,
                  "c": circuit.mechanical_node("plate"), "e": circuit.ground})
        circuit.add(device)
        circuit.voltage_source("VS", "drive", "0", 10.0)
        circuit.mass("M1", "plate", 1e-4)
        circuit.spring("K1", "plate", "0", 200.0)
        circuit.damper("D1", "plate", "0", 0.04)
        op = OperatingPointAnalysis(circuit).run()
        # At DC the electrostatic force is recorded through the contribution.
        force = op["i(XD.c_e)"]
        expected = 8.8542e-12 * 1e-4 * 100.0 / (2.0 * (0.15e-3) ** 2)
        assert abs(force) == pytest.approx(expected, rel=1e-6)
