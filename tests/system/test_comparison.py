"""Unit tests for the figure-5 comparison harness objects."""

from __future__ import annotations

import math

import numpy as np
import pytest

from repro.circuit import SimulationOptions
from repro.circuit.analysis.results import TransientResult
from repro.system import PAPER_PARAMETERS, run_figure5_comparison
from repro.system.comparison import (
    BEHAVIORAL_DISPLACEMENT,
    Figure5Comparison,
    Figure5Run,
    _plateau,
)
from repro.system.microsystem import build_drive_waveform


def _fake_result(plateau_value: float) -> TransientResult:
    time = np.linspace(0.0, 60e-3, 301)
    signal = np.full_like(time, plateau_value)
    return TransientResult(time, {BEHAVIORAL_DISPLACEMENT: signal,
                                  "x(res_m)": signal})


def _fake_run(amplitude, behavioral, linearized) -> Figure5Run:
    return Figure5Run(amplitude=amplitude,
                      behavioral=_fake_result(behavioral),
                      linearized=_fake_result(linearized),
                      behavioral_plateau=behavioral,
                      linearized_plateau=linearized)


class TestFigure5Run:
    def test_ratio_and_overshoot_flags(self):
        run = _fake_run(5.0, 1.0e-9, 2.0e-9)
        assert run.plateau_ratio == pytest.approx(2.0)
        assert run.linear_overshoots
        run = _fake_run(15.0, 3.0e-9, 2.0e-9)
        assert not run.linear_overshoots

    def test_zero_behavioral_plateau_gives_nan_ratio(self):
        run = _fake_run(1.0, 0.0, 1.0e-9)
        assert math.isnan(run.plateau_ratio)


class TestFigure5Comparison:
    def _comparison(self):
        comparison = Figure5Comparison(parameters=PAPER_PARAMETERS)
        comparison.runs = [
            _fake_run(5.0, 1.0e-9, 2.0e-9),
            _fake_run(10.0, 4.0e-9, 4.0e-9),
            _fake_run(15.0, 9.0e-9, 6.0e-9),
        ]
        comparison.behavioral_runtime = 1.0
        comparison.linearized_runtime = 0.1
        return comparison

    def test_run_for_selects_nearest_amplitude(self):
        comparison = self._comparison()
        assert comparison.run_for(9.0).amplitude == 10.0
        assert comparison.run_for(100.0).amplitude == 15.0

    def test_runtime_penalty(self):
        comparison = self._comparison()
        assert comparison.runtime_penalty == pytest.approx(10.0)
        comparison.linearized_runtime = 0.0
        assert math.isnan(comparison.runtime_penalty)

    def test_table_rows_content(self):
        rows = self._comparison().table_rows()
        assert [row["amplitude_V"] for row in rows] == [5.0, 10.0, 15.0]
        assert rows[0]["expected_ratio_V0_over_V"] == pytest.approx(2.0)

    def test_summary_mentions_every_amplitude(self):
        text = self._comparison().summary()
        for token in ("5.0", "10.0", "15.0", "runtime penalty"):
            assert token in text


class TestPlateauHelper:
    def test_plateau_averages_second_half_of_pulse(self):
        drive = build_drive_waveform(10.0)
        time = np.linspace(0.0, 60e-3, 601)
        signal = np.where(time < drive.delay + drive.rise, 0.0, 2.0e-9)
        result = TransientResult(time, {BEHAVIORAL_DISPLACEMENT: signal})
        assert _plateau(result, BEHAVIORAL_DISPLACEMENT, drive) == pytest.approx(2.0e-9)

    def test_plateau_falls_back_to_final_value(self):
        drive = build_drive_waveform(10.0)
        time = np.linspace(0.0, 1e-3, 11)  # run ends before the plateau window
        result = TransientResult(time, {BEHAVIORAL_DISPLACEMENT: np.linspace(0, 1e-9, 11)})
        assert _plateau(result, BEHAVIORAL_DISPLACEMENT, drive) == pytest.approx(1e-9)


class TestSingleAmplitudeEndToEnd:
    def test_single_run_at_bias_voltage(self, fast_options):
        comparison = run_figure5_comparison(amplitudes=(10.0,), t_step=8e-4,
                                            options=fast_options)
        assert len(comparison.runs) == 1
        run = comparison.runs[0]
        assert run.plateau_ratio == pytest.approx(1.0, abs=0.08)
        assert comparison.behavioral_runtime > 0.0
