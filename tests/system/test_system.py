"""Tests for the microsystem assembly layer (resonator, figure-3/4 netlists)."""

from __future__ import annotations

import math

import numpy as np
import pytest

from repro.circuit import ACAnalysis, OperatingPointAnalysis, TransientAnalysis, frequency_grid
from repro.errors import NetlistError
from repro.system import (
    MechanicalResonator,
    PAPER_PARAMETERS,
    Table4Parameters,
    build_behavioral_system,
    build_drive_waveform,
    build_linearized_system,
)
from repro.system.microsystem import build_three_pulse_waveform


class TestMechanicalResonator:
    def setup_method(self):
        self.resonator = MechanicalResonator(mass=1e-4, stiffness=200.0, damping=0.04)

    def test_derived_quantities(self):
        assert self.resonator.natural_frequency_rad == pytest.approx(math.sqrt(2e6))
        assert self.resonator.natural_frequency_hz == pytest.approx(225.08, rel=1e-3)
        assert self.resonator.damping_ratio == pytest.approx(0.1414, rel=1e-2)
        assert self.resonator.quality_factor == pytest.approx(3.536, rel=1e-2)
        assert self.resonator.is_underdamped

    def test_static_deflection(self):
        assert self.resonator.static_deflection(2e-6) == pytest.approx(1e-8)

    def test_overshoot_and_settling(self):
        zeta = self.resonator.damping_ratio
        expected = math.exp(-zeta * math.pi / math.sqrt(1 - zeta * zeta))
        assert self.resonator.step_overshoot() == pytest.approx(expected)
        assert self.resonator.settling_time() > 0.0

    def test_damped_frequency_below_natural(self):
        assert self.resonator.damped_frequency_rad < self.resonator.natural_frequency_rad

    def test_add_to_circuit(self):
        from repro.circuit import Circuit

        circuit = Circuit()
        circuit.force_source("F1", "m", "0", 1e-6)
        devices = self.resonator.add_to_circuit(circuit, "m")
        assert set(devices) == {"mass", "spring", "damper"}
        assert "res_m" in circuit and "res_k" in circuit and "res_a" in circuit

    def test_validation(self):
        with pytest.raises(NetlistError):
            MechanicalResonator(mass=0.0, stiffness=1.0, damping=1.0)

    def test_summary(self):
        assert "Q =" in self.resonator.summary()


class TestTable4Parameters:
    def test_defaults_match_paper_table4(self):
        p = PAPER_PARAMETERS
        assert p.area == 1e-4 and p.gap == 0.15e-3 and p.epsilon_r == 1.0
        assert p.mass == 1e-4 and p.stiffness == 200.0 and p.damping == 0.04
        assert p.dc_voltage == 10.0
        assert p.dc_displacement == 1e-8
        assert p.dc_capacitance == pytest.approx(5.8637e-12)

    def test_derived_bias_point_close_to_printed_values(self):
        lin = PAPER_PARAMETERS.derived_bias_point()
        assert lin.bias_displacement == pytest.approx(PAPER_PARAMETERS.dc_displacement, rel=2e-2)
        assert lin.c0 == pytest.approx(PAPER_PARAMETERS.dc_capacitance, rel=1e-2)

    def test_transducer_and_resonator_factories(self):
        assert PAPER_PARAMETERS.transducer().area == 1e-4
        assert PAPER_PARAMETERS.resonator().quality_factor > 1.0


class TestDriveWaveforms:
    def test_single_pulse_plateau_value(self):
        drive = build_drive_waveform(10.0)
        plateau_time = drive.delay + drive.rise + 0.5 * drive.width
        assert drive.value(plateau_time) == 10.0
        assert drive.value(0.0) == 0.0

    def test_negative_amplitude_rejected(self):
        from repro.errors import TransducerError

        with pytest.raises(TransducerError):
            build_drive_waveform(-1.0)

    def test_three_pulse_waveform_hits_all_levels(self):
        drive = build_three_pulse_waveform()
        values = {drive.value(t) for t in np.arange(0.0, 0.18, 1e-4)}
        assert any(abs(v - 5.0) < 1e-9 for v in values)
        assert any(abs(v - 10.0) < 1e-9 for v in values)
        assert any(abs(v - 15.0) < 1e-9 for v in values)


class TestSystemNetlists:
    def test_behavioral_system_structure(self):
        circuit = build_behavioral_system(PAPER_PARAMETERS, 10.0)
        assert "VS" in circuit and "XDCR" in circuit and "res_m" in circuit

    def test_linearized_system_structure(self):
        circuit = build_linearized_system(PAPER_PARAMETERS, 10.0)
        assert "XLIN_C0" in circuit and "XLIN_Gf" in circuit

    def test_behavioral_dc_bias_force(self):
        circuit = build_behavioral_system(PAPER_PARAMETERS, 10.0)
        op = OperatingPointAnalysis(circuit).run()
        expected = abs(PAPER_PARAMETERS.transducer().force(10.0, 0.0))
        assert abs(op["force(XDCR)"]) == pytest.approx(expected, rel=1e-6)

    def test_behavioral_ac_resonance_near_resonator_frequency(self):
        circuit = build_behavioral_system(PAPER_PARAMETERS, 10.0)
        resonator = PAPER_PARAMETERS.resonator()
        grid = frequency_grid(50.0, 1000.0, 40)
        result = ACAnalysis(circuit, grid).run()
        # The mechanical node velocity peaks near the resonator natural frequency.
        assert result.resonance_frequency("v(m)") == pytest.approx(
            resonator.natural_frequency_hz, rel=0.1)

    def test_gap_orientation_passthrough(self):
        circuit = build_behavioral_system(PAPER_PARAMETERS, 10.0, gap_orientation="closing")
        op = OperatingPointAnalysis(circuit).run()
        assert op["force(XDCR)"] > 0.0
