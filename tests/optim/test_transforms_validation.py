"""Design-vector validation of ParameterSpace.decode / decode_dual."""

from __future__ import annotations

import numpy as np
import pytest

from repro.errors import OptimizationError
from repro.optim import ParameterSpace

SPACE = ParameterSpace(gap=(1e-6, 1e-4, "log"), area=(1e-9, 1e-6))


class TestDesignVectorValidation:
    @pytest.mark.parametrize("bad", [[0.5], [0.1, 0.2, 0.3], 0.5,
                                     [[0.1, 0.2]]])
    def test_wrong_shape_raises_with_parameter_names(self, bad):
        with pytest.raises(OptimizationError) as excinfo:
            SPACE.decode(bad)
        message = str(excinfo.value)
        assert "gap" in message and "area" in message
        assert "(2,)" in message
        assert "broadcast" in message

    @pytest.mark.parametrize("bad", [[0.5], [0.1, 0.2, 0.3]])
    def test_decode_dual_validates_too(self, bad):
        with pytest.raises(OptimizationError, match="one entry per"):
            SPACE.decode_dual(bad)

    def test_non_numeric_rejected(self):
        with pytest.raises(OptimizationError, match="numeric"):
            SPACE.decode(["a", "b"])

    def test_valid_vector_still_decodes(self):
        decoded = SPACE.decode(np.array([0.0, 1.0]))
        assert decoded["gap"] == pytest.approx(1e-6)
        assert decoded["area"] == pytest.approx(1e-6)

    def test_encode_still_roundtrips(self):
        z = SPACE.encode({"gap": 1e-5, "area": 5e-7})
        decoded = SPACE.decode(z)
        assert decoded["gap"] == pytest.approx(1e-5, rel=1e-12)
        assert decoded["area"] == pytest.approx(5e-7, rel=1e-12)
