"""Yield optimization: common random numbers, determinism, improvement.

The toy process: a device passes when its sampled parameter stays below a
hard limit.  The design variable shifts the distribution mean, so the exact
yield is the Gaussian CDF of the margin -- enough structure to verify that
the optimizer pushes the design away from the limit and that common random
numbers make the stochastic objective deterministic.
"""

from __future__ import annotations

import pytest

from repro.campaign import CampaignRunner, MonteCarlo, Normal, ResultCache
from repro.errors import OptimizationError
from repro.optim import NelderMead, ParameterSpace, YieldOptimizer

LIMIT = 5.0
SIGMA = 0.5
SAMPLES = 64

SPACE = ParameterSpace(center=(3.0, 6.0))


def build_spec(params, seed):
    """Process variation around the designed center (CRN seed threaded)."""
    return MonteCarlo({"value": Normal(params["center"], SIGMA)},
                      samples=SAMPLES, seed=seed)


def sample_evaluator(point):
    value = float(point["value"])
    return {"value": value, "margin": LIMIT - value}


def sample_passes(row):
    return row["margin"] > 0.0


def penalized_evaluator(point):
    # A second spec: value must ALSO stay above 3.6, so yield peaks between.
    value = float(point["value"])
    return {"value": value}


def window_passes(row):
    return 3.6 < row["value"] < LIMIT


def _optimizer(**kwargs) -> YieldOptimizer:
    defaults = dict(space=SPACE, build_spec=build_spec,
                    evaluator=sample_evaluator, passed=sample_passes, seed=42)
    defaults.update(kwargs)
    return YieldOptimizer(**defaults)


class TestYieldEvaluation:
    def test_yield_fraction_matches_direct_count(self):
        optimizer = _optimizer()
        params = {"center": 4.5}
        spec = build_spec(params, 42)
        result = CampaignRunner().run(spec, sample_evaluator)
        expected = sum(1 for row in result if row["margin"] > 0.0) / SAMPLES
        assert optimizer.yield_at(params) == pytest.approx(expected)

    def test_common_random_numbers_are_deterministic(self):
        optimizer = _optimizer()
        one = optimizer.yield_at({"center": 4.0})
        two = optimizer.yield_at({"center": 4.0})
        assert one == two
        # Same seed in a fresh optimizer: identical draws.
        assert _optimizer().yield_at({"center": 4.0}) == one

    def test_yield_is_monotone_in_the_margin(self):
        optimizer = _optimizer()
        # With CRN the comparison is exact: a safer design can never look
        # worse on the shared sample set.
        assert optimizer.yield_at({"center": 3.2}) >= \
            optimizer.yield_at({"center": 4.8})


class TestYieldOptimization:
    def test_maximize_pushes_away_from_limit(self):
        result = _optimizer().maximize()
        assert result.yield_fraction == pytest.approx(1.0)
        # Any center comfortably below the limit achieves 100 % on 64
        # samples; the optimizer must have moved off the risky side.
        assert result.params["center"] < 4.5

    def test_window_spec_lands_inside_the_window(self):
        optimizer = _optimizer(evaluator=penalized_evaluator,
                               passed=window_passes)
        result = optimizer.maximize(
            solver=NelderMead(max_iterations=80, xtol=1e-4, ftol=1e-12))
        # The pass window (3.6, 5.0) is +-1.4 sigma around its midpoint, so
        # the best achievable yield is ~84 %; the optimizer must land near
        # the midpoint and well above the edge yields (~50 %).
        assert 3.9 < result.params["center"] < 4.7
        assert result.yield_fraction > 0.8

    def test_maximize_is_deterministic(self):
        one = _optimizer().maximize()
        two = _optimizer().maximize()
        assert one.params == two.params
        assert one.yield_fraction == two.yield_fraction

    def test_objective_cache_spares_repeat_designs(self):
        cache = ResultCache()
        optimizer = _optimizer(cache=cache)
        objective = optimizer.objective()
        z = SPACE.encode({"center": 4.0})
        objective.value(z)
        objective.value(z)
        assert objective.evaluations == 1
        assert objective.cache_hits == 1

    def test_validation(self):
        with pytest.raises(OptimizationError):
            YieldOptimizer(SPACE, "not callable", sample_evaluator,
                           sample_passes)
