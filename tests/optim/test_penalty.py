"""Penalty / augmented-quadratic inequality constraints over the solvers."""

from __future__ import annotations

import numpy as np
import pytest

from repro.errors import OptimizationError
from repro.optim import (Constraint, GradientDescent, NelderMead, Objective,
                         ParameterSpace, PenaltyObjective,
                         minimize_with_penalty)

SPACE = ParameterSpace(a=(0.0, 5.0), b=(0.1, 10.0, "log"))


def bowl(params):
    """Unconstrained optimum at a=4, b as small as possible."""
    return (params["a"] - 4.0) ** 2 + params["b"]


def a_value(params):
    return params["a"]


def area(params):
    return params["a"] * params["b"]


class TestConstraint:
    def test_violation_sides(self):
        constraint = Constraint(a_value, lower=1.0, upper=3.0)
        assert constraint.violation({"a": 2.0}) == 0.0
        assert constraint.violation({"a": 0.5}) == pytest.approx(0.5)
        # the upper side scales by max(|bound|, 1) = 3
        assert constraint.violation({"a": 3.5}) == pytest.approx(0.5 / 3.0)

    def test_scaling(self):
        constraint = Constraint(a_value, upper=100.0)
        # default scale = max(|bound|, 1) = 100
        assert constraint.violation({"a": 150.0}) == pytest.approx(0.5)
        scaled = Constraint(a_value, upper=100.0, scale=10.0)
        assert scaled.violation({"a": 150.0}) == pytest.approx(5.0)

    def test_needs_some_bound(self):
        with pytest.raises(OptimizationError, match="bound"):
            Constraint(a_value)

    def test_bound_ordering(self):
        with pytest.raises(OptimizationError, match="lower bound exceeds"):
            Constraint(a_value, lower=2.0, upper=1.0)


class TestPenaltyObjective:
    def test_feasible_region_adds_no_penalty(self):
        objective = Objective(bowl, SPACE)
        penalized = PenaltyObjective(objective,
                                     [Constraint(a_value, upper=4.5)],
                                     weight=1e6)
        z = SPACE.encode({"a": 2.0, "b": 1.0})
        assert penalized.value(z) == pytest.approx(objective.value(z))
        assert penalized.max_violation(z) == 0.0

    def test_gradient_matches_numeric(self):
        objective = Objective(bowl, SPACE)
        penalized = PenaltyObjective(objective,
                                     [Constraint(a_value, upper=1.5),
                                      Constraint(area, upper=2.0)],
                                     weight=25.0)
        z = np.array([0.7, 0.5])  # both constraints active
        _, gradient = penalized.value_and_gradient(z)
        numeric = np.zeros_like(gradient)
        for i in range(z.size):
            up = z.copy()
            down = z.copy()
            up[i] += 1e-7
            down[i] -= 1e-7
            numeric[i] = (penalized.value(up) - penalized.value(down)) / 2e-7
        np.testing.assert_allclose(gradient, numeric, rtol=1e-4)

    def test_dual_dropping_constraint_falls_back_to_fd(self):
        def lossy(params):
            return float(params["a"])  # strips the dual

        objective = Objective(bowl, SPACE)
        penalized = PenaltyObjective(objective,
                                     [Constraint(lossy, upper=1.5)],
                                     weight=25.0)
        z = np.array([0.7, 0.5])
        _, gradient = penalized.value_and_gradient(z)
        numeric = np.zeros_like(gradient)
        for i in range(z.size):
            up = z.copy()
            down = z.copy()
            up[i] += 1e-6
            down[i] -= 1e-6
            numeric[i] = (penalized.value(up) - penalized.value(down)) / 2e-6
        np.testing.assert_allclose(gradient, numeric, rtol=1e-3)

    def test_requires_constraints(self):
        with pytest.raises(OptimizationError, match="at least one"):
            PenaltyObjective(Objective(bowl, SPACE), [])


class TestMinimizeWithPenalty:
    def test_active_constraint_is_respected(self):
        # min (a-4)^2 + b  s.t.  a <= 1.5: optimum sits on the constraint.
        result, penalized = minimize_with_penalty(
            Objective(bowl, SPACE), [Constraint(a_value, upper=1.5)],
            solver=NelderMead(max_iterations=400, xtol=1e-9, ftol=1e-16),
            feasibility_tol=1e-5)
        assert result.params["a"] == pytest.approx(1.5, abs=5e-3)
        assert result.params["b"] == pytest.approx(0.1, rel=1e-3)
        assert penalized.max_violation(result.x) <= 1e-5

    def test_inactive_constraint_recovers_unconstrained_optimum(self):
        result, _ = minimize_with_penalty(
            Objective(bowl, SPACE), [Constraint(a_value, upper=4.5)],
            solver=NelderMead(max_iterations=400, xtol=1e-9, ftol=1e-16))
        assert result.params["a"] == pytest.approx(4.0, abs=1e-3)

    def test_gradient_descent_solver_works(self):
        result, penalized = minimize_with_penalty(
            Objective(bowl, SPACE), [Constraint(a_value, upper=1.5)],
            solver=GradientDescent(max_iterations=200),
            feasibility_tol=1e-4)
        assert result.params["a"] == pytest.approx(1.5, abs=2e-2)
        assert penalized.max_violation(result.x) <= 1e-4

    def test_two_constraints_pullin_style(self):
        # "margin >= X while area <= Y" shape: keep a >= 2 while a*b <= 1.
        # Feasible optimum: a as close to 4 as area allows -> a*b = 1 with
        # b at its lower bound 0.1 -> a = min(4, 1/0.1) ... a=4 gives
        # area 0.4 <= 1, feasible; tighten to a*b <= 0.25 -> a = 2.5.
        constraints = [Constraint(a_value, lower=2.0),
                       Constraint(area, upper=0.25)]
        result, penalized = minimize_with_penalty(
            Objective(bowl, SPACE), constraints,
            solver=NelderMead(max_iterations=600, xtol=1e-10, ftol=1e-18),
            feasibility_tol=1e-4)
        assert penalized.max_violation(result.x) <= 1e-4
        assert result.params["a"] == pytest.approx(2.5, abs=2e-2)
