"""Parameter transforms: bounds, scales, encode/decode, dual chain rule."""

from __future__ import annotations

import numpy as np
import pytest

from repro.ad import Dual
from repro.errors import OptimizationError
from repro.optim import Parameter, ParameterSpace


class TestParameter:
    def test_linear_decode_encode_roundtrip(self):
        p = Parameter("a", 2.0, 10.0)
        assert p.decode(0.0) == 2.0
        assert p.decode(1.0) == 10.0
        assert p.decode(0.5) == 6.0
        assert p.encode(6.0) == pytest.approx(0.5)

    def test_log_decode_encode_roundtrip(self):
        p = Parameter("gap", 1e-6, 1e-2, scale="log")
        assert p.decode(0.0) == pytest.approx(1e-6)
        assert p.decode(1.0) == pytest.approx(1e-2)
        assert p.decode(0.5) == pytest.approx(1e-4)
        assert p.encode(1e-4) == pytest.approx(0.5)

    def test_encode_clips_out_of_bounds(self):
        p = Parameter("a", 0.0, 1.0)
        assert p.encode(-3.0) == 0.0
        assert p.encode(7.0) == 1.0

    def test_validation(self):
        with pytest.raises(OptimizationError):
            Parameter("a", 1.0, 1.0)
        with pytest.raises(OptimizationError):
            Parameter("a", 0.0, 1.0, scale="sqrt")
        with pytest.raises(OptimizationError):
            Parameter("a", -1.0, 1.0, scale="log")
        with pytest.raises(OptimizationError):
            Parameter("a", 0.0, np.inf)

    def test_log_encode_rejects_non_positive(self):
        with pytest.raises(OptimizationError):
            Parameter("a", 1.0, 2.0, scale="log").encode(0.0)


class TestParameterSpace:
    def test_keyword_shorthand(self):
        space = ParameterSpace(a=(0.0, 2.0), gap=(1e-6, 1e-3, "log"))
        assert space.names == ("a", "gap")
        assert space.parameters[1].scale == "log"

    def test_decode_encode(self):
        space = ParameterSpace(a=(0.0, 2.0), b=(1.0, 100.0, "log"))
        z = np.array([0.25, 0.5])
        params = space.decode(z)
        assert params["a"] == pytest.approx(0.5)
        assert params["b"] == pytest.approx(10.0)
        np.testing.assert_allclose(space.encode(params), z)

    def test_decode_dual_chain_rule(self):
        space = ParameterSpace(a=(0.0, 4.0), b=(1.0, 100.0, "log"))
        duals = space.decode_dual(np.array([0.5, 0.5]))
        assert isinstance(duals["a"], Dual)
        # d a / d z0 = upper - lower = 4; d b / d z1 = b * ln(upper/lower).
        assert duals["a"].deriv[0] == pytest.approx(4.0)
        assert duals["a"].deriv[1] == 0.0
        assert duals["b"].deriv[1] == pytest.approx(10.0 * np.log(100.0))

    def test_clip_and_center(self):
        space = ParameterSpace(a=(0.0, 1.0), b=(0.0, 1.0))
        np.testing.assert_allclose(space.clip([-1.0, 2.0]), [0.0, 1.0])
        np.testing.assert_allclose(space.center(), [0.5, 0.5])

    def test_random_is_seeded(self):
        space = ParameterSpace(a=(0.0, 1.0), b=(0.0, 1.0))
        one = space.random(np.random.default_rng(7), 5)
        two = space.random(np.random.default_rng(7), 5)
        np.testing.assert_array_equal(one, two)
        assert one.shape == (5, 2)
        assert one.min() >= 0.0 and one.max() <= 1.0

    def test_duplicate_and_empty_rejected(self):
        with pytest.raises(OptimizationError):
            ParameterSpace([Parameter("a", 0.0, 1.0), Parameter("a", 0.0, 2.0)])
        with pytest.raises(OptimizationError):
            ParameterSpace()

    def test_shape_check(self):
        space = ParameterSpace(a=(0.0, 1.0))
        with pytest.raises(OptimizationError):
            space.decode(np.zeros(3))

    def test_payload_is_canonical(self):
        space = ParameterSpace(a=(0.0, 1.0), b=(1.0, 2.0, "log"))
        payload = space.payload()
        assert payload["parameters"][1] == {
            "name": "b", "lower": 1.0, "upper": 2.0, "scale": "log"}
