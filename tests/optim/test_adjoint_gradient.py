"""Objective gradient='adjoint': the evaluator sensitivity protocol.

Includes the four-way cross-check the sensitivity layer is built around:
adjoint (protocol evaluator over a circuit solve) vs direct vs forward-AD
(closed form on duals) vs central finite differences -- all computing the
same physical gradient.
"""

from __future__ import annotations

import numpy as np
import pytest

from repro.circuit import Circuit, CircuitSensitivityEvaluator, SimulationOptions
from repro.circuit.devices.passive import Resistor
from repro.circuit.devices.sources import VoltageSource
from repro.errors import OptimizationError
from repro.optim import GradientDescent, MultiStart, Objective, ParameterSpace

OPTIONS = SimulationOptions(reltol=1e-9, abstol=1e-15, vntol=1e-12)


def build_divider(config) -> Circuit:
    circuit = Circuit()
    n_in = circuit.electrical_node("in")
    n_out = circuit.electrical_node("out")
    circuit.add(VoltageSource("V1", n_in, circuit.ground, 5.0))
    circuit.add(Resistor("R1", n_in, n_out, 2e3))
    circuit.add(Resistor("R2", n_out, circuit.ground, 2e3))
    return circuit


SPACE = ParameterSpace(rtop=(5e2, 1e4, "log"), rbot=(5e2, 1e4, "log"))


def divider_evaluator() -> CircuitSensitivityEvaluator:
    return CircuitSensitivityEvaluator(
        build_divider, {"rtop": "R1.resistance", "rbot": "R2.resistance"},
        outputs=("v(out)",), options=OPTIONS)


def closed_form(params):
    """The same divider as a dual-propagating closed form (forward AD)."""
    return 5.0 * params["rbot"] / (params["rtop"] + params["rbot"])


class TestProtocolSelection:
    def test_auto_selects_adjoint_for_protocol_evaluators(self):
        objective = Objective(divider_evaluator(), SPACE, output="v(out)")
        z = np.array([0.4, 0.7])
        value, gradient = objective.value_and_gradient(z)
        assert objective.adjoint_gradients == 1
        assert objective.statistics()["adjoint_gradients"] == 1
        assert np.isfinite(gradient).all()

    def test_explicit_adjoint_requires_protocol(self):
        with pytest.raises(OptimizationError, match="evaluate_with_gradient"):
            Objective(closed_form, SPACE, gradient="adjoint")

    def test_gradient_missing_parameter_is_an_error(self):
        class Partial:
            def __call__(self, params):
                return params["rtop"]

            def evaluate_with_gradient(self, params):
                return params["rtop"], {"rtop": 1.0}  # rbot missing

        objective = Objective(Partial(), SPACE, gradient="adjoint")
        with pytest.raises(OptimizationError, match="missing parameter"):
            objective.value_and_gradient(np.array([0.5, 0.5]))

    def test_auto_demotes_when_the_model_rejects_adjoint(self):
        from repro.errors import SensitivityError

        class Rejecting:
            """Protocol present, but the model cannot serve sensitivities."""

            def __call__(self, params):
                return params["rtop"] * 2.0

            def evaluate_with_gradient(self, params):
                raise SensitivityError("closed_form=True required")

        objective = Objective(Rejecting(), SPACE, gradient="auto",
                              fd_step=1e-7)
        z = np.array([0.5, 0.5])
        value, gradient = objective.value_and_gradient(z)
        # Demoted to the plain-call tiers: gradient still exact-ish via FD.
        reference = Objective(lambda p: p["rtop"] * 2.0, SPACE,
                              gradient="fd", fd_step=1e-7)
        _, expected = reference.value_and_gradient(z)
        np.testing.assert_allclose(gradient, expected, rtol=1e-6)
        assert objective.adjoint_failures == 1
        # ... and stays demoted (no repeated failing protocol calls).
        objective.value_and_gradient(z)
        assert objective.adjoint_failures == 1

    def test_explicit_adjoint_rejection_is_a_hard_error(self):
        from repro.errors import SensitivityError

        class Rejecting:
            def __call__(self, params):
                return 1.0

            def evaluate_with_gradient(self, params):
                raise SensitivityError("closed_form=True required")

        objective = Objective(Rejecting(), SPACE, gradient="adjoint")
        with pytest.raises(OptimizationError, match="adjoint gradient"):
            objective.value_and_gradient(np.array([0.5, 0.5]))

    def test_malformed_protocol_return_is_an_error(self):
        class Broken:
            def __call__(self, params):
                return 1.0

            def evaluate_with_gradient(self, params):
                return 1.0  # not a (result, gradients) pair

        objective = Objective(Broken(), SPACE, gradient="adjoint")
        with pytest.raises(OptimizationError, match="must return"):
            objective.value_and_gradient(np.array([0.5, 0.5]))


class TestFourWayCrossCheck:
    Z = np.array([0.35, 0.6])

    def gradients(self):
        adjoint = Objective(divider_evaluator(), SPACE, output="v(out)",
                            gradient="adjoint")
        forward_ad = Objective(closed_form, SPACE, gradient="ad")
        central_fd = Objective(closed_form, SPACE, gradient="fd",
                               fd_step=1e-7)
        return adjoint, forward_ad, central_fd

    def test_adjoint_vs_forward_ad_vs_fd(self):
        adjoint, forward_ad, central_fd = self.gradients()
        value_adj, grad_adj = adjoint.value_and_gradient(self.Z)
        value_ad, grad_ad = forward_ad.value_and_gradient(self.Z)
        value_fd, grad_fd = central_fd.value_and_gradient(self.Z)
        # gmin shifts the circuit solution by ~1e-9 relative; everything
        # else is exact.
        assert value_adj == pytest.approx(value_ad, rel=1e-6)
        np.testing.assert_allclose(grad_adj, grad_ad, rtol=1e-6)
        np.testing.assert_allclose(grad_adj, grad_fd, rtol=1e-5)

    def test_target_shaping_chains_through_adjoint(self):
        objective = Objective(divider_evaluator(), SPACE, output="v(out)",
                              target=2.0, gradient="adjoint")
        reference = Objective(closed_form, SPACE, target=2.0, gradient="ad")
        _, grad = objective.value_and_gradient(self.Z)
        _, expected = reference.value_and_gradient(self.Z)
        np.testing.assert_allclose(grad, expected, rtol=1e-5)

    def test_maximize_shaping_chains_through_adjoint(self):
        objective = Objective(divider_evaluator(), SPACE, output="v(out)",
                              minimize=False, gradient="adjoint")
        reference = Objective(closed_form, SPACE, minimize=False,
                              gradient="ad")
        _, grad = objective.value_and_gradient(self.Z)
        _, expected = reference.value_and_gradient(self.Z)
        np.testing.assert_allclose(grad, expected, rtol=1e-5)


class TestSolverIntegration:
    def test_gradient_descent_uses_adjoint_gradients(self):
        # Hit v(out) = 1.0 V: R2/(R1+R2) = 0.2.
        objective = Objective(divider_evaluator(), SPACE, output="v(out)",
                              target=1.0)
        result = GradientDescent(max_iterations=120).minimize(objective)
        assert result.fun < 1e-8
        ratio = result.params["rbot"] / (result.params["rtop"]
                                         + result.params["rbot"])
        assert ratio == pytest.approx(0.2, rel=2e-3)
        assert objective.adjoint_gradients > 0
        assert objective.ad_failures == 0

    def test_multistart_needs_no_caller_changes(self):
        objective = Objective(divider_evaluator(), SPACE, output="v(out)",
                              target=1.0)
        multi = MultiStart(solver=GradientDescent(max_iterations=60),
                           starts=3, seed=7)
        outcome = multi.minimize(objective)
        assert outcome.best.fun < 1e-8
