"""Local solvers: convergence, bounds, determinism."""

from __future__ import annotations

import numpy as np
import pytest

from repro.errors import OptimizationError
from repro.optim import GradientDescent, NelderMead, Objective, ParameterSpace

SPACE = ParameterSpace(a=(-2.0, 4.0), b=(0.1, 10.0, "log"))


def bowl(params):
    return (params["a"] - 1.5) ** 2 + 2.0 * (params["b"] - 2.0) ** 2


def rosenbrock(params):
    a, b = params["a"], params["b"]
    return (1.0 - a) ** 2 + 100.0 * (b - a * a) ** 2


def edge_bowl(params):
    # Unconstrained optimum (a = 6) is outside the box; optimum at a = 4.
    return (params["a"] - 6.0) ** 2


class TestNelderMead:
    def test_converges_on_bowl(self):
        result = NelderMead(max_iterations=300).minimize(Objective(bowl, SPACE))
        assert result.converged
        assert result.params["a"] == pytest.approx(1.5, abs=1e-4)
        assert result.params["b"] == pytest.approx(2.0, abs=1e-3)
        assert result.fun == pytest.approx(0.0, abs=1e-8)

    def test_converges_on_rosenbrock_valley(self):
        space = ParameterSpace(a=(-2.0, 2.0), b=(-1.0, 3.0))
        result = NelderMead(max_iterations=500, xtol=1e-9,
                            ftol=1e-14).minimize(Objective(rosenbrock, space))
        assert result.params["a"] == pytest.approx(1.0, abs=1e-3)
        assert result.params["b"] == pytest.approx(1.0, abs=1e-3)

    def test_respects_bounds(self):
        space = ParameterSpace(a=(-2.0, 4.0))
        result = NelderMead(max_iterations=200).minimize(
            Objective(edge_bowl, space))
        assert result.params["a"] == pytest.approx(4.0, abs=1e-6)
        assert 0.0 <= result.x[0] <= 1.0

    def test_deterministic(self):
        one = NelderMead().minimize(Objective(bowl, SPACE))
        two = NelderMead().minimize(Objective(bowl, SPACE))
        np.testing.assert_array_equal(one.x, two.x)
        assert one.fun == two.fun and one.evaluations == two.evaluations

    def test_history_is_monotone_nonincreasing(self):
        result = NelderMead().minimize(Objective(bowl, SPACE))
        history = np.array(result.history)
        assert np.all(np.diff(history) <= 0.0)

    def test_non_finite_points_are_survivable(self):
        def partial(params):
            if params["a"] > 3.0:
                return float("nan")
            return (params["a"] - 1.0) ** 2

        space = ParameterSpace(a=(-2.0, 4.0))
        result = NelderMead(max_iterations=200).minimize(
            Objective(partial, space))
        assert result.params["a"] == pytest.approx(1.0, abs=1e-4)

    def test_validation(self):
        with pytest.raises(OptimizationError):
            NelderMead(max_iterations=0)
        with pytest.raises(OptimizationError):
            NelderMead(initial_step=0.9)

    def test_result_row_flattening(self):
        result = NelderMead(max_iterations=50).minimize(Objective(bowl, SPACE))
        row = result.row()
        assert set(row) == {"fun", "iterations", "evaluations", "converged",
                            "x_0", "x_1", "p_a", "p_b"}
        assert row["converged"] in (0.0, 1.0)


class TestGradientDescent:
    def test_converges_with_ad_gradient(self):
        objective = Objective(bowl, SPACE, gradient="ad")
        result = GradientDescent(max_iterations=300).minimize(objective)
        assert result.converged
        assert result.params["a"] == pytest.approx(1.5, abs=1e-3)
        assert result.params["b"] == pytest.approx(2.0, abs=1e-3)
        assert objective.gradient == "ad"

    def test_converges_with_fd_fallback(self):
        def hostile(params):
            return float((params["a"] - 1.5) ** 2)

        space = ParameterSpace(a=(-2.0, 4.0))
        objective = Objective(hostile, space, gradient="auto")
        result = GradientDescent(max_iterations=200).minimize(objective)
        assert result.params["a"] == pytest.approx(1.5, abs=1e-3)
        assert objective.gradient == "fd"

    def test_stops_at_active_bound(self):
        space = ParameterSpace(a=(-2.0, 4.0))
        result = GradientDescent(max_iterations=100).minimize(
            Objective(edge_bowl, space, gradient="ad"))
        assert result.converged
        assert result.params["a"] == pytest.approx(4.0, abs=1e-6)

    def test_deterministic(self):
        one = GradientDescent().minimize(Objective(bowl, SPACE, gradient="ad"))
        two = GradientDescent().minimize(Objective(bowl, SPACE, gradient="ad"))
        np.testing.assert_array_equal(one.x, two.x)
        assert one.iterations == two.iterations

    def test_non_finite_start_is_not_reported_converged(self):
        def broken(params):
            return float("nan")

        space = ParameterSpace(a=(-2.0, 4.0))
        result = GradientDescent().minimize(
            Objective(broken, space, gradient="fd"))
        assert not result.converged
        assert "not finite" in result.message

    def test_validation(self):
        with pytest.raises(OptimizationError):
            GradientDescent(backtrack=1.5)
        with pytest.raises(OptimizationError):
            GradientDescent(initial_step=-1.0)

    def test_payloads_for_content_addressing(self):
        assert NelderMead().payload()["solver"] == "nelder-mead"
        assert GradientDescent().payload()["solver"] == "gradient-descent"
