"""Objective layer: goal shaping, memoization, counters, FD fallback."""

from __future__ import annotations

import numpy as np
import pytest

from repro.campaign import ResultCache
from repro.errors import OptimizationError
from repro.optim import Objective, ParameterSpace

SPACE = ParameterSpace(a=(0.0, 4.0), b=(0.5, 2.0))


def scalar_fn(params):
    return (params["a"] - 1.0) ** 2 + params["b"]


def mapping_fn(params):
    return {"loss": (params["a"] - 1.0) ** 2, "aux": params["b"]}


def config_fn(params):
    return params["a"] * params["scale"]


class TestValue:
    def test_scalar_evaluator(self):
        objective = Objective(scalar_fn, SPACE)
        z = SPACE.encode({"a": 3.0, "b": 1.0})
        assert objective.value(z) == pytest.approx(5.0)
        assert objective.evaluations == 1

    def test_mapping_needs_output(self):
        with pytest.raises(OptimizationError):
            Objective(mapping_fn, SPACE).value(SPACE.center())

    def test_mapping_output_selected(self):
        objective = Objective(mapping_fn, SPACE, output="loss")
        z = SPACE.encode({"a": 3.0, "b": 1.0})
        assert objective.value(z) == pytest.approx(4.0)

    def test_unknown_output_reported(self):
        objective = Objective(mapping_fn, SPACE, output="nope")
        with pytest.raises(OptimizationError, match="aux"):
            objective.value(SPACE.center())

    def test_config_merged_and_fixed(self):
        space = ParameterSpace(a=(0.0, 4.0))
        objective = Objective(config_fn, space, config={"scale": 10.0})
        z = space.encode({"a": 2.0})
        assert objective.value(z) == pytest.approx(20.0)

    def test_target_squared_relative_miss(self):
        space = ParameterSpace(a=(0.0, 4.0))
        objective = Objective(lambda p: p["a"], space, target=2.0)
        assert objective.value(space.encode({"a": 3.0})) == pytest.approx(0.25)
        assert objective.value(space.encode({"a": 2.0})) == pytest.approx(0.0)

    def test_maximize_negates(self):
        space = ParameterSpace(a=(0.0, 4.0))
        objective = Objective(lambda p: p["a"], space, minimize=False)
        assert objective.value(space.encode({"a": 3.0})) == pytest.approx(-3.0)

    def test_out_of_box_input_is_clipped(self):
        space = ParameterSpace(a=(0.0, 4.0))
        objective = Objective(lambda p: p["a"], space)
        assert objective.value(np.array([2.0])) == pytest.approx(4.0)


class TestCaching:
    def test_repeat_evaluations_hit_cache(self):
        cache = ResultCache()
        objective = Objective(scalar_fn, SPACE, cache=cache)
        z = SPACE.center()
        first = objective.value(z)
        second = objective.value(z)
        assert first == second
        assert objective.evaluations == 1
        assert objective.cache_hits == 1
        assert cache.stores == 1

    def test_two_objectives_share_content_addressed_entries(self):
        cache = ResultCache()
        Objective(scalar_fn, SPACE, cache=cache).value(SPACE.center())
        other = Objective(scalar_fn, SPACE, cache=cache)
        other.value(SPACE.center())
        assert other.evaluations == 0
        assert other.cache_hits == 1

    def test_different_target_changes_the_key(self):
        cache = ResultCache()
        space = ParameterSpace(a=(0.0, 4.0))
        Objective(lambda p: p["a"], space, target=2.0,
                  cache=cache).value(space.center())
        # lambdas share a qualified name but the payload includes the target
        missed = Objective(lambda p: p["a"], space, target=3.0, cache=cache)
        missed.value(space.center())
        assert missed.cache_hits == 0
        assert missed.evaluations == 1

    def test_gradient_rows_cached_separately(self):
        cache = ResultCache()
        objective = Objective(scalar_fn, SPACE, cache=cache, gradient="fd")
        z = SPACE.center()
        value, grad = objective.value_and_gradient(z)
        again_value, again_grad = objective.value_and_gradient(z)
        assert again_value == value
        np.testing.assert_array_equal(again_grad, grad)
        evaluations = objective.evaluations
        objective.value_and_gradient(z)
        assert objective.evaluations == evaluations  # served from cache


class TestGradientModes:
    def test_fd_matches_ad_on_smooth_function(self):
        z = np.array([0.3, 0.6])
        _, g_ad = Objective(scalar_fn, SPACE, gradient="ad").value_and_gradient(z)
        _, g_fd = Objective(scalar_fn, SPACE, gradient="fd",
                            fd_step=1e-7).value_and_gradient(z)
        np.testing.assert_allclose(g_ad, g_fd, rtol=1e-5, atol=1e-8)

    def test_auto_falls_back_for_dual_hostile_evaluator(self):
        def hostile(params):
            return float(params["a"]) ** 2  # float() drops the derivative

        space = ParameterSpace(a=(0.0, 4.0))
        objective = Objective(hostile, space, gradient="auto")
        value, grad = objective.value_and_gradient(space.encode({"a": 2.0}))
        assert value == pytest.approx(4.0)
        # d/dz = d/da * (upper - lower) = 2a * 4 = 16
        assert grad[0] == pytest.approx(16.0, rel=1e-4)
        assert objective.gradient == "fd"
        assert objective.ad_failures == 1

    def test_auto_does_not_demote_ad_on_evaluator_failure(self):
        # A dual-capable evaluator that raises for an infeasible point must
        # propagate the error, not be misclassified as dual-hostile (which
        # would silently demote every later gradient to 2n+1 evaluations).
        def feasibility_limited(params):
            if params["a"] > 3.0:
                raise ValueError("pull-in: no stable solution")
            return (params["a"] - 1.0) ** 2

        space = ParameterSpace(a=(0.0, 4.0))
        objective = Objective(feasibility_limited, space, gradient="auto")
        with pytest.raises(ValueError, match="pull-in"):
            objective.value_and_gradient(space.encode({"a": 3.5}))
        assert objective.gradient == "auto"  # AD stays available
        _, grad = objective.value_and_gradient(space.encode({"a": 2.0}))
        assert grad[0] == pytest.approx(2.0 * 1.0 * 4.0)
        assert objective.ad_failures == 0

    def test_strict_ad_raises_for_dual_hostile_evaluator(self):
        def hostile(params):
            return float(params["a"]) ** 2

        space = ParameterSpace(a=(0.0, 4.0))
        objective = Objective(hostile, space, gradient="ad")
        with pytest.raises(OptimizationError):
            objective.value_and_gradient(space.center())

    def test_validation(self):
        with pytest.raises(OptimizationError):
            Objective(scalar_fn, SPACE, gradient="newton")
        with pytest.raises(OptimizationError):
            Objective(scalar_fn, SPACE, target=0.0)
        with pytest.raises(OptimizationError):
            Objective(scalar_fn, SPACE, fd_step=0.0)
        with pytest.raises(OptimizationError):
            Objective("not callable", SPACE)
