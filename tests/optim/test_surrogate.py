"""Surrogate strategy: verified acceptance, re-anchoring, automatic fallback."""

from __future__ import annotations

import numpy as np
import pytest

from repro.errors import OptimizationError
from repro.optim import (NelderMead, Objective, ParameterSpace,
                         SurrogateStrategy)

SPACE = ParameterSpace(a=(-2.0, 2.0), b=(-2.0, 2.0))


def full_model(params):
    return (params["a"] - 1.0) ** 2 + (params["b"] + 0.5) ** 2 + 2.0


def good_surrogate(params):
    """Slightly biased but faithful: same optimum location, small offset."""
    return (params["a"] - 1.0) ** 2 + (params["b"] + 0.5) ** 2 + 2.05


def lying_surrogate(params):
    """Confidently wrong: its optimum is far from the full model's."""
    return (params["a"] + 1.5) ** 2 + (params["b"] - 1.5) ** 2 + 0.1


def _solver():
    return NelderMead(max_iterations=200, xtol=1e-8, ftol=1e-12)


class TestAgreementPath:
    def test_accepts_verified_surrogate_optimum(self):
        full = Objective(full_model, SPACE)
        surrogate = Objective(good_surrogate, SPACE)
        result = SurrogateStrategy(solver=_solver()).minimize(full, surrogate)
        assert result.converged and not result.fallback_used
        assert result.params["a"] == pytest.approx(1.0, abs=1e-3)
        assert result.params["b"] == pytest.approx(-0.5, abs=1e-3)
        assert result.fun == pytest.approx(2.0, abs=1e-6)

    def test_spends_few_full_evaluations(self):
        full = Objective(full_model, SPACE)
        surrogate = Objective(good_surrogate, SPACE)
        result = SurrogateStrategy(solver=_solver()).minimize(full, surrogate)
        assert result.full_evaluations <= 5
        assert result.surrogate_evaluations > 5 * result.full_evaluations

    def test_fun_tol_short_circuits(self):
        full = Objective(full_model, SPACE)
        surrogate = Objective(good_surrogate, SPACE)
        result = SurrogateStrategy(solver=_solver(),
                                   fun_tol=2.5).minimize(full, surrogate)
        assert result.converged
        assert result.fun <= 2.5
        assert "fun_tol" in result.message

    def test_returned_fun_is_always_full_model(self):
        full = Objective(full_model, SPACE)
        surrogate = Objective(good_surrogate, SPACE)
        result = SurrogateStrategy(solver=_solver()).minimize(full, surrogate)
        check = Objective(full_model, SPACE)
        assert result.fun == pytest.approx(check.value(result.x))


class TestFallbackPath:
    def test_lying_surrogate_triggers_fallback(self):
        full = Objective(full_model, SPACE)
        surrogate = Objective(lying_surrogate, SPACE)
        result = SurrogateStrategy(solver=_solver(), agree_rtol=1e-3,
                                   max_rejections=2).minimize(full, surrogate)
        assert result.fallback_used
        # The fallback full-model solve still finds the true optimum.
        assert result.params["a"] == pytest.approx(1.0, abs=1e-3)
        assert result.params["b"] == pytest.approx(-0.5, abs=1e-3)
        assert result.fun == pytest.approx(2.0, abs=1e-6)

    def test_history_tracks_full_model_values(self):
        full = Objective(full_model, SPACE)
        surrogate = Objective(good_surrogate, SPACE)
        result = SurrogateStrategy(solver=_solver()).minimize(full, surrogate)
        assert result.history
        assert min(result.history) == pytest.approx(result.fun, abs=1e-9)


class TestValidation:
    def test_mismatched_spaces_rejected(self):
        other = ParameterSpace(c=(0.0, 1.0))
        with pytest.raises(OptimizationError):
            SurrogateStrategy().minimize(Objective(full_model, SPACE),
                                         Objective(lambda p: 0.0, other))

    def test_parameter_validation(self):
        with pytest.raises(OptimizationError):
            SurrogateStrategy(max_outer=0)
        with pytest.raises(OptimizationError):
            SurrogateStrategy(agree_rtol=0.0)
        with pytest.raises(OptimizationError):
            SurrogateStrategy(max_rejections=0)
