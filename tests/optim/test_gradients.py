"""Gradient correctness: AD objectives vs central finite differences.

The tentpole promise is that seeding :class:`repro.ad.Dual` parameters
through the *existing* evaluation paths yields exact design gradients.
Pinned here on the two paths the issue names:

* the **electrostatic-transducer path** -- geometry-seeded
  :class:`TransverseElectrostaticTransducer` closed forms (capacitance,
  force, co-energy, pull-in voltage),
* the **behavioral-device path** -- a behavioral constitutive expression
  composed from the :mod:`repro.ad` function library (the same overloaded
  primitives behavioral devices and elaborated HDL models evaluate).

Every comparison is seeded/deterministic and tolerance-pinned against
central finite differences of the same objective.
"""

from __future__ import annotations

import numpy as np
import pytest

from repro.ad import exp, sqrt, tanh
from repro.optim import Objective, ParameterSpace
from repro.transducers import TransverseElectrostaticTransducer

#: FD comparisons: central differences on a smooth objective are O(h^2);
#: with h = 1e-6 in unit coordinates an agreement of 1e-5 relative is a
#: conservative, repeatable pin.
RTOL = 1e-5
ATOL = 1e-10
FD_STEP = 1e-6

TRANSDUCER_SPACE = ParameterSpace(
    area=(1e-9, 1e-6, "log"),
    gap=(1e-6, 1e-3, "log"),
    voltage=(0.1, 50.0),
)


def transducer_force(params):
    """Electrostatic port force with geometry seeded through the class."""
    transducer = TransverseElectrostaticTransducer(
        area=params["area"], gap=params["gap"])
    return transducer.force(params["voltage"], 0.2 * params["gap"])


def transducer_coenergy(params):
    transducer = TransverseElectrostaticTransducer(
        area=params["area"], gap=params["gap"], gap_orientation="closing")
    return transducer.coenergy(params["voltage"], 0.1 * params["gap"])


def transducer_pull_in(params):
    transducer = TransverseElectrostaticTransducer(
        area=params["area"], gap=params["gap"], gap_orientation="closing")
    return transducer.pull_in_voltage(2.0) - 0.01 * params["voltage"]


def behavioral_expression(params):
    """A behavioral-device style constitutive relation on ad primitives.

    The shape mirrors what elaborated HDL / behavioral devices evaluate: a
    nonlinear conductance with an exponential, a saturation and a
    square-root geometry factor.
    """
    v = params["voltage"]
    g0 = params["area"] * 1e6
    sat = tanh(v / 10.0)
    return g0 * (exp(-v / 25.0) - 1.0) + sat * sqrt(params["gap"]) * 50.0


def _compare(fn, space, z):
    ad_objective = Objective(fn, space, gradient="ad")
    fd_objective = Objective(fn, space, gradient="fd", fd_step=FD_STEP)
    value_ad, grad_ad = ad_objective.value_and_gradient(z)
    value_fd, grad_fd = fd_objective.value_and_gradient(z)
    assert value_ad == pytest.approx(value_fd)
    np.testing.assert_allclose(grad_ad, grad_fd, rtol=RTOL, atol=ATOL)
    assert ad_objective.gradient == "ad"  # the AD path really ran
    return grad_ad


#: Seeded, fixed evaluation points (interior of the unit box).
POINTS = [np.array([0.4, 0.5, 0.3]), np.array([0.7, 0.2, 0.8]),
          np.array([0.5, 0.5, 0.5])]


class TestElectrostaticTransducerPath:
    @pytest.mark.parametrize("z", POINTS, ids=["p0", "p1", "p2"])
    def test_force_gradient(self, z):
        grad = _compare(transducer_force, TRANSDUCER_SPACE, z)
        assert np.all(np.isfinite(grad)) and np.any(grad != 0.0)

    @pytest.mark.parametrize("z", POINTS, ids=["p0", "p1", "p2"])
    def test_coenergy_gradient(self, z):
        _compare(transducer_coenergy, TRANSDUCER_SPACE, z)

    def test_pull_in_gradient(self):
        _compare(transducer_pull_in, TRANSDUCER_SPACE, POINTS[0])

    def test_force_gradient_matches_closed_form(self):
        # d|F|/d gap of eps A V^2 / (2 g^2) at x=0.2 gap is analytic; check
        # the chain through encode/decode reproduces it.
        space = ParameterSpace(gap=(1e-6, 1e-3, "log"))

        def force_of_gap(params):
            transducer = TransverseElectrostaticTransducer(
                area=1e-8, gap=params["gap"])
            return transducer.force(10.0, 0.0)

        z = space.encode({"gap": 1e-4})
        objective = Objective(force_of_gap, space, gradient="ad")
        _, grad = objective.value_and_gradient(z)
        eps0 = TransverseElectrostaticTransducer(1e-8, 1e-4).epsilon_0
        gap = 1e-4
        d_force_d_gap = 2.0 * 0.5 * eps0 * 1e-8 * 100.0 / gap ** 3
        dz = gap * np.log(1e-3 / 1e-6)  # log-scale chain factor
        assert grad[0] == pytest.approx(d_force_d_gap * dz, rel=1e-10)


class TestBehavioralExpressionPath:
    @pytest.mark.parametrize("z", POINTS, ids=["p0", "p1", "p2"])
    def test_behavioral_gradient(self, z):
        grad = _compare(behavioral_expression, TRANSDUCER_SPACE, z)
        assert np.all(np.isfinite(grad))

    def test_seeded_repeatability(self):
        one = _compare(behavioral_expression, TRANSDUCER_SPACE, POINTS[1])
        two = _compare(behavioral_expression, TRANSDUCER_SPACE, POINTS[1])
        np.testing.assert_array_equal(one, two)
