"""Multi-start fan-out over the campaign backends.

The evaluator functions are module-level: the pool backend pickles them by
reference into the worker processes.
"""

from __future__ import annotations

import numpy as np
import pytest

from repro.campaign import CampaignRunner, ResultCache
from repro.errors import OptimizationError
from repro.optim import MultiStart, NelderMead, Objective, ParameterSpace

SPACE = ParameterSpace(a=(-1.5, 1.5), b=(-1.5, 1.5))


def two_wells(params):
    """Double-well landscape: global optimum near a = +1, local near a = -1."""
    a, b = params["a"], params["b"]
    return (a * a - 1.0) ** 2 + 0.3 * a + b * b


def broken_region(params):
    if params["a"] < -1.0:
        raise ValueError("model breaks down here")
    return (params["a"] - 0.5) ** 2 + params["b"] ** 2


def nan_region(params):
    if params["a"] < -1.0:
        return float("nan")
    return (params["a"] - 0.5) ** 2 + params["b"] ** 2


def _solver() -> NelderMead:
    return NelderMead(max_iterations=150, xtol=1e-8, ftol=1e-12)


class TestMultiStart:
    def test_finds_global_optimum_of_double_well(self):
        result = MultiStart(solver=_solver(), starts=6, seed=2).minimize(
            Objective(two_wells, SPACE))
        # Global minimum of (a^2-1)^2 + 0.3a is near a = -1.04 -- the well
        # the +0.3a tilt favours; b = 0.
        assert result.best.params["a"] == pytest.approx(-1.0373, abs=1e-2)
        assert result.best.params["b"] == pytest.approx(0.0, abs=1e-3)
        assert len(result.starts) == 6
        assert result.total_evaluations() >= 6

    def test_serial_and_pool_backends_identical(self):
        serial = MultiStart(solver=_solver(), starts=5, seed=9,
                            runner=CampaignRunner()).minimize(
            Objective(two_wells, SPACE))
        pool = MultiStart(solver=_solver(), starts=5, seed=9,
                          runner=CampaignRunner(backend="pool",
                                                processes=2)).minimize(
            Objective(two_wells, SPACE))
        assert serial.best_index == pool.best_index
        np.testing.assert_array_equal(serial.best.x, pool.best.x)
        assert serial.best.fun == pool.best.fun
        for a, b in zip(serial.starts, pool.starts):
            np.testing.assert_array_equal(a.x, b.x)
            assert a.fun == b.fun and a.evaluations == b.evaluations

    def test_start_points_are_seeded(self):
        objective = Objective(two_wells, SPACE)
        ms = MultiStart(starts=4, seed=5)
        np.testing.assert_array_equal(ms.start_points(objective),
                                      ms.start_points(objective))
        assert ms.start_points(objective).shape == (4, 2)
        # First start is the center (include_center default).
        np.testing.assert_array_equal(ms.start_points(objective)[0],
                                      SPACE.center())

    def test_x0_overrides_center_start(self):
        objective = Objective(two_wells, SPACE)
        x0 = np.array([0.9, 0.1])
        points = MultiStart(starts=3, seed=5).start_points(objective, x0=x0)
        np.testing.assert_array_equal(points[0], x0)

    def test_failed_starts_are_captured_not_fatal(self):
        result = MultiStart(solver=_solver(), starts=8, seed=1).minimize(
            Objective(broken_region, SPACE))
        failed = [r for r in result.starts if not np.isfinite(r.fun)]
        assert failed, "expected at least one start inside the broken region"
        assert all("model breaks down" in r.message for r in failed)
        assert result.best.params["a"] == pytest.approx(0.5, abs=1e-3)

    def test_nan_start_never_wins(self):
        # A start landing on a NaN objective value (e.g. a failed FE
        # measurement region) must not shadow the finite optima -- a plain
        # argmin would return the NaN index.
        from repro.optim import GradientDescent

        result = MultiStart(solver=GradientDescent(max_iterations=200),
                            starts=8, seed=1).minimize(
            Objective(nan_region, SPACE, gradient="fd"))
        nan_starts = [r for r in result.starts if not np.isfinite(r.fun)]
        assert nan_starts, "expected at least one start in the NaN region"
        assert not any(r.converged for r in nan_starts)
        assert np.isfinite(result.best.fun)
        assert result.best.params["a"] == pytest.approx(0.5, abs=1e-3)

    def test_all_starts_failing_raises(self):
        def always_broken(params):
            raise ValueError("nope")

        with pytest.raises(OptimizationError, match="every start failed"):
            MultiStart(solver=_solver(), starts=2, seed=0).minimize(
                Objective(always_broken, SPACE))

    def test_cached_runs_are_not_recomputed(self):
        cache = ResultCache()
        runner = CampaignRunner(cache=cache)
        objective = Objective(two_wells, SPACE)
        first = MultiStart(solver=_solver(), starts=4, seed=3,
                           runner=runner).minimize(objective)
        evaluations_after_first = objective.evaluations
        second = MultiStart(solver=_solver(), starts=4, seed=3,
                            runner=runner).minimize(objective)
        assert objective.evaluations == evaluations_after_first  # all cached
        np.testing.assert_array_equal(first.best.x, second.best.x)
        assert cache.hits >= 4

    def test_validation(self):
        with pytest.raises(OptimizationError):
            MultiStart(starts=0)
