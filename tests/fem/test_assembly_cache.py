"""FE assembly through the linalg StructureCache (pattern reuse)."""

from __future__ import annotations

import numpy as np
import pytest
import scipy.sparse as sp

from repro.errors import FEMError
from repro.fem.assembly import (apply_dirichlet, assemble_stiffness,
                                structure_cache_for)
from repro.fem.elements import element_stiffness
from repro.fem.electrostatics import ParallelPlateProblem
from repro.fem.mesh import RectangularMesh
from repro.linalg import StructureCache


def _reference_assembly(mesh, permittivity) -> sp.csr_matrix:
    """The historical per-element COO loop, kept as the golden reference."""
    coords = mesh.node_coordinates()
    eps = np.full(mesh.num_elements, float(permittivity))
    rows, cols, values = [], [], []
    for element, nodes in enumerate(mesh.element_connectivity()):
        ke = element_stiffness(coords[nodes], eps[element])
        for a in range(4):
            for b in range(4):
                rows.append(int(nodes[a]))
                cols.append(int(nodes[b]))
                values.append(float(ke[a, b]))
    return sp.coo_matrix((values, (rows, cols)),
                         shape=(mesh.num_nodes, mesh.num_nodes)).tocsr()


class TestAssembly:
    def test_matches_reference_loop(self):
        mesh = RectangularMesh(width=1e-3, height=2e-4, nx=7, ny=5)
        cached = assemble_stiffness(mesh, 3.2, structure_cache=StructureCache())
        reference = _reference_assembly(mesh, 3.2)
        assert abs(cached - reference).max() < 1e-12 * abs(reference).max()

    def test_per_element_permittivity(self):
        mesh = RectangularMesh(width=1e-3, height=2e-4, nx=4, ny=3)
        eps = np.linspace(1.0, 2.0, mesh.num_elements)
        cache = StructureCache()
        matrix = assemble_stiffness(mesh, eps, structure_cache=cache)
        # Row sums of a Laplace stiffness vanish (to round-off of the
        # entry magnitude) regardless of eps.
        np.testing.assert_allclose(np.asarray(matrix.sum(axis=1)).ravel(),
                                   0.0, atol=1e-12 * abs(matrix).max())
        with pytest.raises(FEMError):
            assemble_stiffness(mesh, eps[:-1], structure_cache=cache)

    def test_pattern_reused_across_values_and_geometry(self):
        cache = StructureCache()
        mesh_a = RectangularMesh(width=1e-3, height=2e-4, nx=6, ny=4)
        mesh_b = RectangularMesh(width=5e-4, height=8e-5, nx=6, ny=4)
        assemble_stiffness(mesh_a, 1.0, structure_cache=cache)
        assemble_stiffness(mesh_a, 2.5, structure_cache=cache)
        assemble_stiffness(mesh_b, 1.0, structure_cache=cache)  # same topology
        assert cache.rebuilds == 1
        assert cache.reuses == 2

    def test_topology_change_rebuilds_safely(self):
        cache = StructureCache()
        coarse = RectangularMesh(width=1e-3, height=2e-4, nx=3, ny=3)
        fine = RectangularMesh(width=1e-3, height=2e-4, nx=5, ny=4)
        assemble_stiffness(coarse, 1.0, structure_cache=cache)
        fine_matrix = assemble_stiffness(fine, 1.0, structure_cache=cache)
        assert cache.rebuilds == 2
        reference = _reference_assembly(fine, 1.0)
        assert abs(fine_matrix - reference).max() < 1e-12


class TestSharedTopologyCaches:
    def test_process_cache_is_shared_per_topology(self):
        mesh_a = RectangularMesh(width=1e-3, height=2e-4, nx=9, ny=7)
        mesh_b = RectangularMesh(width=2e-3, height=1e-4, nx=9, ny=7)
        assert structure_cache_for(mesh_a) is structure_cache_for(mesh_b)
        other = RectangularMesh(width=1e-3, height=2e-4, nx=9, ny=8)
        assert structure_cache_for(other) is not structure_cache_for(mesh_a)

    def test_extraction_style_sweep_reuses_the_pattern(self):
        # The PXT sweep re-meshes only the gap height: the shared cache must
        # serve every re-assembly after the first.
        mesh = RectangularMesh(width=1e-3, height=2e-4, nx=11, ny=6)
        cache = structure_cache_for(mesh)
        rebuilds_before = cache.rebuilds
        reuses_before = cache.reuses
        for gap in (1e-4, 1.5e-4, 2e-4):
            problem = ParallelPlateProblem(plate_width=1e-3, gap=gap,
                                           depth=1e-3, nx=11, ny=6)
            problem.solve(5.0)
        assert cache.rebuilds - rebuilds_before <= 1
        assert cache.reuses - reuses_before >= 2


class TestElectrostaticsUnchanged:
    def test_parallel_plate_quantities_still_match_closed_forms(self):
        problem = ParallelPlateProblem(plate_width=2e-3, gap=1.5e-4,
                                       depth=5e-2, nx=16, ny=12)
        solution = problem.solve(10.0)
        assert solution.capacitance == pytest.approx(
            problem.analytic_capacitance(), rel=1e-9)
        assert solution.electrode_force() == pytest.approx(
            problem.analytic_force(10.0), rel=1e-9)

    def test_dirichlet_application_still_works_on_cached_matrices(self):
        mesh = RectangularMesh(width=1e-3, height=1e-4, nx=5, ny=4)
        matrix = assemble_stiffness(mesh, 1.0)
        rhs = np.zeros(mesh.num_nodes)
        constrained, rhs2 = apply_dirichlet(
            matrix, rhs, {int(n): 0.0 for n in mesh.bottom_nodes()}
            | {int(n): 1.0 for n in mesh.top_nodes()})
        # The original cached matrix must be untouched by the elimination.
        np.testing.assert_allclose(
            np.asarray(matrix.sum(axis=1)).ravel(), 0.0,
            atol=1e-12 * abs(matrix).max())
        assert constrained.shape == matrix.shape
        assert rhs2[int(list(mesh.top_nodes())[0])] == 1.0
