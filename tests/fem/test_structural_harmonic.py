"""Tests for the structural FE models and the harmonic-response analysis."""

from __future__ import annotations

import numpy as np
import pytest

from repro.errors import FEMError
from repro.fem import CantileverBeam, SpringMassChain, harmonic_response


@pytest.fixture(scope="module")
def silicon_beam():
    # A typical MEMS cantilever: 300 x 20 x 2 um polysilicon.
    return CantileverBeam(length=300e-6, width=20e-6, thickness=2e-6,
                          youngs_modulus=160e9, density=2330.0, elements=20)


class TestCantileverBeam:
    def test_tip_stiffness_matches_3EI_over_L3(self, silicon_beam):
        assert silicon_beam.tip_stiffness() == pytest.approx(
            silicon_beam.analytic_tip_stiffness(), rel=1e-6)

    def test_tip_deflection_linear_in_force(self, silicon_beam):
        assert silicon_beam.tip_deflection(2e-6) == pytest.approx(
            2.0 * silicon_beam.tip_deflection(1e-6), rel=1e-12)

    def test_first_frequency_matches_euler_bernoulli(self, silicon_beam):
        fem_f1 = float(silicon_beam.natural_frequencies(1)[0])
        assert fem_f1 == pytest.approx(silicon_beam.analytic_first_frequency(), rel=1e-3)

    def test_higher_modes_ordered(self, silicon_beam):
        frequencies = silicon_beam.natural_frequencies(3)
        assert np.all(np.diff(frequencies) > 0.0)
        # Second cantilever mode is ~6.27x the first.
        assert frequencies[1] / frequencies[0] == pytest.approx(6.27, rel=2e-2)

    def test_effective_mass_smaller_than_total(self, silicon_beam):
        total = silicon_beam.density * silicon_beam.area * silicon_beam.length
        effective = silicon_beam.effective_mass()
        assert 0.1 * total < effective < total

    def test_section_properties(self, silicon_beam):
        assert silicon_beam.area == pytest.approx(40e-12)
        assert silicon_beam.inertia == pytest.approx(20e-6 * (2e-6) ** 3 / 12.0)

    def test_invalid_parameters(self):
        with pytest.raises(FEMError):
            CantileverBeam(length=-1.0, width=1e-6, thickness=1e-6,
                           youngs_modulus=1e9, density=1000.0)
        with pytest.raises(FEMError):
            CantileverBeam(length=1e-3, width=1e-6, thickness=1e-6,
                           youngs_modulus=1e9, density=1000.0, elements=0)

    def test_convergence_with_refinement(self):
        coarse = CantileverBeam(300e-6, 20e-6, 2e-6, 160e9, 2330.0, elements=2)
        fine = CantileverBeam(300e-6, 20e-6, 2e-6, 160e9, 2330.0, elements=40)
        analytic = fine.analytic_first_frequency()
        assert abs(fine.natural_frequencies(1)[0] - analytic) <= \
            abs(coarse.natural_frequencies(1)[0] - analytic) + 1e-9


class TestSpringMassChain:
    def test_single_mass_resonance(self):
        chain = SpringMassChain(masses=(1e-4,), stiffnesses=(200.0,))
        f0 = chain.natural_frequencies()[0]
        assert f0 == pytest.approx(np.sqrt(200.0 / 1e-4) / (2.0 * np.pi), rel=1e-9)

    def test_static_compliance_of_series_springs(self):
        chain = SpringMassChain(masses=(1e-4, 1e-4), stiffnesses=(100.0, 100.0))
        # A force on the last mass loads both springs in series: 1/k1 + 1/k2.
        assert chain.static_compliance() == pytest.approx(0.02, rel=1e-9)

    def test_two_mass_chain_has_two_modes(self):
        chain = SpringMassChain(masses=(1e-4, 2e-4), stiffnesses=(100.0, 300.0))
        frequencies = chain.natural_frequencies()
        assert frequencies.size == 2 and frequencies[1] > frequencies[0]

    def test_matrices_shapes_and_symmetry(self):
        chain = SpringMassChain(masses=(1e-4, 1e-4), stiffnesses=(100.0, 50.0),
                                dampings=(0.01, 0.02))
        mass, damping, stiffness = chain.matrices()
        for matrix in (mass, damping, stiffness):
            assert matrix.shape == (2, 2)
            assert np.allclose(matrix, matrix.T)

    def test_validation(self):
        with pytest.raises(FEMError):
            SpringMassChain(masses=(), stiffnesses=())
        with pytest.raises(FEMError):
            SpringMassChain(masses=(1.0,), stiffnesses=(1.0, 2.0))
        with pytest.raises(FEMError):
            SpringMassChain(masses=(1.0,), stiffnesses=(-1.0,))


class TestHarmonicResponse:
    def _paper_resonator(self):
        chain = SpringMassChain(masses=(1e-4,), stiffnesses=(200.0,), dampings=(0.04,))
        return chain.matrices()

    def test_static_limit_is_compliance(self):
        mass, damping, stiffness = self._paper_resonator()
        response = harmonic_response(mass, damping, stiffness, [1e-3, 1.0])
        assert response.static_compliance() == pytest.approx(1.0 / 200.0, rel=1e-4)

    def test_peak_at_damped_amplitude_resonance(self):
        mass, damping, stiffness = self._paper_resonator()
        f0 = np.sqrt(200.0 / 1e-4) / (2.0 * np.pi)
        zeta = 0.04 / (2.0 * np.sqrt(200.0 * 1e-4))
        # The displacement amplitude of a damped oscillator peaks at
        # f0 * sqrt(1 - 2 zeta^2), slightly below the undamped frequency.
        f_peak = f0 * np.sqrt(1.0 - 2.0 * zeta ** 2)
        frequencies = np.linspace(0.5 * f0, 1.5 * f0, 400)
        response = harmonic_response(mass, damping, stiffness, frequencies)
        assert response.resonance_frequency() == pytest.approx(f_peak, rel=1e-2)

    def test_peak_magnitude_is_q_times_static(self):
        mass, damping, stiffness = self._paper_resonator()
        f0 = np.sqrt(200.0 / 1e-4) / (2.0 * np.pi)
        q = np.sqrt(200.0 * 1e-4) / 0.04
        response = harmonic_response(mass, damping, stiffness, [f0])
        assert response.magnitude(0)[0] == pytest.approx(q / 200.0, rel=1e-2)

    def test_phase_crosses_minus_90_at_resonance(self):
        mass, damping, stiffness = self._paper_resonator()
        f0 = np.sqrt(200.0 / 1e-4) / (2.0 * np.pi)
        response = harmonic_response(mass, damping, stiffness, [f0])
        assert response.phase_deg(0)[0] == pytest.approx(-90.0, abs=1.0)

    def test_multi_dof_drive_selection(self):
        chain = SpringMassChain(masses=(1e-4, 1e-4), stiffnesses=(100.0, 100.0),
                                dampings=(0.01, 0.01))
        mass, damping, stiffness = chain.matrices()
        response = harmonic_response(mass, damping, stiffness, [10.0, 100.0], drive_dof=0)
        assert response.drive_dof == 0
        assert response.displacements.shape == (2, 2)

    def test_validation(self):
        mass, damping, stiffness = self._paper_resonator()
        with pytest.raises(FEMError):
            harmonic_response(mass, damping, stiffness, [])
        with pytest.raises(FEMError):
            harmonic_response(mass, damping, stiffness, [-1.0])
        with pytest.raises(FEMError):
            harmonic_response(np.eye(2), damping, stiffness, [1.0])
        with pytest.raises(FEMError):
            harmonic_response(mass, damping, stiffness, [1.0], method="pade")


class TestParabolicResonanceInterpolation:
    def _oscillator(self):
        # Analytic 1-DOF oscillator: m = 1e-4 kg, k = 200 N/m, c = 0.04.
        chain = SpringMassChain(masses=(1e-4,), stiffnesses=(200.0,),
                                dampings=(0.04,))
        mass, damping, stiffness = chain.matrices()
        f0 = np.sqrt(200.0 / 1e-4) / (2.0 * np.pi)
        zeta = 0.04 / (2.0 * np.sqrt(200.0 * 1e-4))
        f_peak = f0 * np.sqrt(1.0 - 2.0 * zeta ** 2)
        return mass, damping, stiffness, f_peak

    def test_estimate_not_quantized_to_grid(self):
        mass, damping, stiffness, f_peak = self._oscillator()
        # A deliberately coarse grid whose points straddle the true peak
        # (an even count keeps f_peak off the grid).
        frequencies = np.linspace(0.6 * f_peak, 1.4 * f_peak, 22)
        response = harmonic_response(mass, damping, stiffness, frequencies)
        estimate = response.resonance_frequency()
        assert estimate not in frequencies
        grid_step = frequencies[1] - frequencies[0]
        grid_error = np.min(np.abs(frequencies - f_peak))
        assert abs(estimate - f_peak) < grid_error
        assert abs(estimate - f_peak) < 0.05 * grid_step

    def test_refinement_beats_grid_on_average(self):
        mass, damping, stiffness, f_peak = self._oscillator()
        for points in (14, 24, 40):
            frequencies = np.linspace(0.5 * f_peak, 1.5 * f_peak, points)
            response = harmonic_response(mass, damping, stiffness, frequencies)
            estimate = response.resonance_frequency()
            assert abs(estimate - f_peak) <= \
                np.min(np.abs(frequencies - f_peak)) + 1e-9

    def test_boundary_peak_returns_grid_point(self):
        mass, damping, stiffness, f_peak = self._oscillator()
        # Grid entirely below resonance: the peak sits on the last sample.
        frequencies = np.linspace(0.1 * f_peak, 0.8 * f_peak, 10)
        response = harmonic_response(mass, damping, stiffness, frequencies)
        assert response.resonance_frequency() == frequencies[-1]


class TestHarmonicROMMethod:
    def test_rom_method_matches_full_on_beam(self):
        beam = CantileverBeam(300e-6, 20e-6, 2e-6, 160e9, 2330.0, elements=25)
        stiffness, mass = beam.assemble()
        damping = 1e-9 * stiffness
        f1 = beam.analytic_first_frequency()
        frequencies = np.linspace(0.3 * f1, 4.0 * f1, 30)
        full = harmonic_response(mass, damping, stiffness, frequencies,
                                 drive_dof=-2)
        reduced = harmonic_response(mass, damping, stiffness, frequencies,
                                    drive_dof=-2, method="rom", rom_order=8)
        tip = stiffness.shape[0] - 2
        relative = np.abs(reduced.dof(tip) - full.dof(tip)) \
            / np.abs(full.dof(tip))
        assert np.max(relative) < 1e-3
        assert reduced.displacements.shape == full.displacements.shape
        assert reduced.resonance_frequency() == pytest.approx(
            full.resonance_frequency(), rel=1e-6)

    def test_rom_order_clamped_to_system_size(self):
        chain = SpringMassChain(masses=(1e-4, 1e-4),
                                stiffnesses=(100.0, 100.0),
                                dampings=(0.01, 0.01))
        mass, damping, stiffness = chain.matrices()
        response = harmonic_response(mass, damping, stiffness, [10.0, 50.0],
                                     method="rom", rom_order=99)
        assert response.displacements.shape == (2, 2)
