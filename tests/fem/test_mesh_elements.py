"""Tests for the structured mesh and the bilinear quad element matrices."""

from __future__ import annotations

import numpy as np
import pytest
from hypothesis import given, settings, strategies as st

from repro.errors import FEMError, MeshError
from repro.fem.elements import (
    element_gradient,
    element_mass,
    element_stiffness,
    shape_function_derivatives,
    shape_functions,
)
from repro.fem.mesh import RectangularMesh


class TestRectangularMesh:
    def test_counts(self):
        mesh = RectangularMesh(1.0, 2.0, 4, 5)
        assert mesh.num_nodes == 5 * 6
        assert mesh.num_elements == 20
        assert mesh.dx == pytest.approx(0.25)
        assert mesh.dy == pytest.approx(0.4)
        assert mesh.element_area() == pytest.approx(0.1)

    def test_node_coordinates_cover_domain(self):
        mesh = RectangularMesh(2.0, 1.0, 2, 2)
        coords = mesh.node_coordinates()
        assert coords.shape == (9, 2)
        assert coords[:, 0].max() == pytest.approx(2.0)
        assert coords[:, 1].max() == pytest.approx(1.0)

    def test_connectivity_is_counter_clockwise(self):
        mesh = RectangularMesh(1.0, 1.0, 2, 2)
        coords = mesh.node_coordinates()
        for nodes in mesh.element_connectivity():
            quad = coords[nodes]
            # Shoelace area must be positive for CCW ordering.
            x, y = quad[:, 0], quad[:, 1]
            area = 0.5 * np.sum(x * np.roll(y, -1) - np.roll(x, -1) * y)
            assert area > 0.0

    def test_boundary_node_sets(self):
        mesh = RectangularMesh(1.0, 1.0, 3, 2)
        coords = mesh.node_coordinates()
        assert np.allclose(coords[mesh.bottom_nodes()][:, 1], 0.0)
        assert np.allclose(coords[mesh.top_nodes()][:, 1], 1.0)
        assert np.allclose(coords[mesh.left_nodes()][:, 0], 0.0)
        assert np.allclose(coords[mesh.right_nodes()][:, 0], 1.0)
        assert len(mesh.bottom_nodes()) == 4
        assert len(mesh.left_nodes()) == 3

    def test_nodes_where_predicate(self):
        mesh = RectangularMesh(1.0, 1.0, 2, 2)
        centre = mesh.nodes_where(lambda x, y: abs(x - 0.5) < 1e-9 and abs(y - 0.5) < 1e-9)
        assert centre.size == 1

    def test_refined(self):
        mesh = RectangularMesh(1.0, 1.0, 2, 3).refined(2)
        assert mesh.nx == 4 and mesh.ny == 6

    def test_invalid_parameters(self):
        with pytest.raises(MeshError):
            RectangularMesh(0.0, 1.0, 2, 2)
        with pytest.raises(MeshError):
            RectangularMesh(1.0, 1.0, 0, 2)
        with pytest.raises(MeshError):
            RectangularMesh(1.0, 1.0, 2, 2).node_index(5, 0)
        with pytest.raises(MeshError):
            RectangularMesh(1.0, 1.0, 2, 2).refined(0)

    def test_element_centroids(self):
        mesh = RectangularMesh(1.0, 1.0, 1, 1)
        assert mesh.element_centroids()[0] == pytest.approx([0.5, 0.5])


class TestShapeFunctions:
    @given(st.floats(-1.0, 1.0), st.floats(-1.0, 1.0))
    @settings(max_examples=50)
    def test_partition_of_unity(self, xi, eta):
        assert np.sum(shape_functions(xi, eta)) == pytest.approx(1.0)

    @given(st.floats(-1.0, 1.0), st.floats(-1.0, 1.0))
    @settings(max_examples=50)
    def test_derivative_rows_sum_to_zero(self, xi, eta):
        derivatives = shape_function_derivatives(xi, eta)
        assert np.allclose(np.sum(derivatives, axis=1), 0.0)

    def test_nodal_interpolation_property(self):
        corners = [(-1, -1), (1, -1), (1, 1), (-1, 1)]
        for k, (xi, eta) in enumerate(corners):
            shapes = shape_functions(xi, eta)
            assert shapes[k] == pytest.approx(1.0)
            assert np.sum(np.abs(np.delete(shapes, k))) == pytest.approx(0.0)


class TestElementMatrices:
    UNIT_SQUARE = np.array([[0.0, 0.0], [1.0, 0.0], [1.0, 1.0], [0.0, 1.0]])

    def test_stiffness_rows_sum_to_zero(self):
        ke = element_stiffness(self.UNIT_SQUARE)
        assert np.allclose(ke.sum(axis=1), 0.0, atol=1e-14)

    def test_stiffness_symmetric_positive_semidefinite(self):
        ke = element_stiffness(self.UNIT_SQUARE, permittivity=3.0)
        assert np.allclose(ke, ke.T)
        eigenvalues = np.linalg.eigvalsh(ke)
        assert np.all(eigenvalues > -1e-14)

    def test_stiffness_scales_with_permittivity(self):
        k1 = element_stiffness(self.UNIT_SQUARE, 1.0)
        k2 = element_stiffness(self.UNIT_SQUARE, 2.5)
        assert np.allclose(k2, 2.5 * k1)

    def test_mass_matrix_integrates_density(self):
        me = element_mass(self.UNIT_SQUARE, density=4.0)
        assert me.sum() == pytest.approx(4.0)  # total "mass" = rho * area

    def test_gradient_of_linear_field_is_exact(self):
        nodal = np.array([0.0, 2.0, 5.0, 3.0])  # phi = 2x + 3y on the unit square
        gradient = element_gradient(self.UNIT_SQUARE, nodal)
        assert gradient == pytest.approx([2.0, 3.0])

    def test_bad_coordinates_rejected(self):
        with pytest.raises(FEMError):
            element_stiffness(np.zeros((3, 2)))
        clockwise = self.UNIT_SQUARE[::-1]
        with pytest.raises(FEMError):
            element_stiffness(clockwise)
        with pytest.raises(FEMError):
            element_gradient(self.UNIT_SQUARE, np.zeros(3))
