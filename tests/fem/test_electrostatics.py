"""Tests for the electrostatic FE solution against parallel-plate closed forms."""

from __future__ import annotations

import numpy as np
import pytest

from repro.constants import EPSILON_0
from repro.errors import FEMError
from repro.fem import ParallelPlateProblem
from repro.fem.assembly import apply_dirichlet, assemble_stiffness
from repro.fem.mesh import RectangularMesh
from repro.fem.solver import solve_sparse

AREA, GAP, VOLTAGE = 1e-4, 0.15e-3, 10.0


@pytest.fixture(scope="module")
def solution():
    problem = ParallelPlateProblem.from_area(area=AREA, gap=GAP, nx=20, ny=12)
    return problem, problem.solve(VOLTAGE)


class TestAssemblyAndSolver:
    def test_dirichlet_values_enforced(self):
        mesh = RectangularMesh(1.0, 1.0, 4, 4)
        stiffness = assemble_stiffness(mesh)
        rhs = np.zeros(mesh.num_nodes)
        constraints = {int(n): 0.0 for n in mesh.bottom_nodes()}
        constraints.update({int(n): 5.0 for n in mesh.top_nodes()})
        matrix, rhs = apply_dirichlet(stiffness, rhs, constraints)
        potential = solve_sparse(matrix, rhs)
        assert np.allclose(potential[mesh.top_nodes()], 5.0)
        assert np.allclose(potential[mesh.bottom_nodes()], 0.0)
        assert np.all((potential > -1e-9) & (potential < 5.0 + 1e-9))

    def test_per_element_permittivity_shape_checked(self):
        mesh = RectangularMesh(1.0, 1.0, 2, 2)
        with pytest.raises(FEMError):
            assemble_stiffness(mesh, permittivity=np.ones(3))

    def test_dirichlet_requires_constraints(self):
        mesh = RectangularMesh(1.0, 1.0, 2, 2)
        stiffness = assemble_stiffness(mesh)
        with pytest.raises(FEMError):
            apply_dirichlet(stiffness, np.zeros(mesh.num_nodes), {})

    def test_cg_solver_agrees_with_direct(self):
        mesh = RectangularMesh(1.0, 1.0, 6, 6)
        stiffness = assemble_stiffness(mesh)
        rhs = np.zeros(mesh.num_nodes)
        constraints = {int(n): 0.0 for n in mesh.bottom_nodes()}
        constraints.update({int(n): 1.0 for n in mesh.top_nodes()})
        matrix, rhs = apply_dirichlet(stiffness, rhs, constraints)
        direct = solve_sparse(matrix, rhs, method="direct")
        iterative = solve_sparse(matrix, rhs, method="cg")
        assert np.allclose(direct, iterative, atol=1e-8)

    def test_unknown_method_rejected(self):
        mesh = RectangularMesh(1.0, 1.0, 2, 2)
        stiffness = assemble_stiffness(mesh)
        with pytest.raises(FEMError):
            solve_sparse(stiffness, np.zeros(mesh.num_nodes), method="magic")


class TestParallelPlateSolution:
    def test_potential_varies_linearly_across_gap(self, solution):
        problem, sol = solution
        coords = problem.mesh.node_coordinates()
        expected = VOLTAGE * coords[:, 1] / GAP
        assert np.allclose(sol.potential, expected, atol=1e-9 * VOLTAGE)

    def test_field_is_uniform_v_over_d(self, solution):
        _, sol = solution
        magnitudes = sol.field_magnitude()
        assert np.allclose(magnitudes, VOLTAGE / GAP, rtol=1e-9)
        assert sol.uniform_field_estimate() == pytest.approx(VOLTAGE / GAP, rel=1e-9)

    def test_capacitance_matches_table2(self, solution):
        problem, sol = solution
        assert sol.capacitance == pytest.approx(EPSILON_0 * AREA / GAP, rel=1e-6)
        assert sol.capacitance == pytest.approx(problem.analytic_capacitance(), rel=1e-9)

    def test_energy_matches_half_cv_squared(self, solution):
        _, sol = solution
        assert sol.energy == pytest.approx(0.5 * sol.capacitance * VOLTAGE ** 2, rel=1e-9)

    def test_charge_matches_cv(self, solution):
        _, sol = solution
        assert sol.electrode_charge() == pytest.approx(sol.capacitance * VOLTAGE, rel=1e-6)

    def test_maxwell_stress_force_matches_table3(self, solution):
        problem, sol = solution
        expected = 0.5 * EPSILON_0 * AREA * VOLTAGE ** 2 / GAP ** 2
        assert sol.electrode_force() == pytest.approx(expected, rel=1e-6)
        assert sol.electrode_force() == pytest.approx(problem.analytic_force(VOLTAGE), rel=1e-9)

    def test_force_scales_quadratically_with_voltage(self):
        problem = ParallelPlateProblem.from_area(area=AREA, gap=GAP, nx=8, ny=6)
        force_5 = problem.solve(5.0).electrode_force()
        force_10 = problem.solve(10.0).electrode_force()
        assert force_10 / force_5 == pytest.approx(4.0, rel=1e-9)

    def test_capacitance_needs_nonzero_voltage(self):
        problem = ParallelPlateProblem.from_area(area=AREA, gap=GAP, nx=4, ny=4)
        sol = problem.solve(0.0)
        with pytest.raises(FEMError):
            _ = sol.capacitance

    def test_mesh_refinement_does_not_change_ideal_solution(self):
        coarse = ParallelPlateProblem.from_area(area=AREA, gap=GAP, nx=4, ny=3).solve(VOLTAGE)
        fine = ParallelPlateProblem.from_area(area=AREA, gap=GAP, nx=32, ny=24).solve(VOLTAGE)
        assert coarse.capacitance == pytest.approx(fine.capacitance, rel=1e-9)

    def test_invalid_geometry_rejected(self):
        with pytest.raises(FEMError):
            ParallelPlateProblem(plate_width=0.0, gap=GAP, depth=1e-2)
        with pytest.raises(FEMError):
            ParallelPlateProblem.from_area(area=-1.0, gap=GAP)
