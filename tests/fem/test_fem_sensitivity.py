"""FE static/harmonic sensitivities vs central FD of full re-solves."""

from __future__ import annotations

import numpy as np
import pytest
import scipy.sparse as sp

from repro.errors import FEMError
from repro.fem import (CantileverBeam, harmonic_response,
                       harmonic_sensitivities, matrix_derivatives,
                       static_sensitivities)

BASE = {"thickness": 2e-6, "length": 300e-6}


def assemble_mck(params):
    beam = CantileverBeam(length=params["length"], width=20e-6,
                          thickness=params["thickness"],
                          youngs_modulus=160e9, density=2330.0, elements=10)
    stiffness, mass = beam.assemble()
    return mass, 1e-9 * stiffness, stiffness


def assemble_static(params):
    _, _, stiffness = assemble_mck(params)
    force = np.zeros(stiffness.shape[0])
    force[-2] = 1e-6
    return stiffness, force


class TestMatrixDerivatives:
    def test_dense_matches_manual_fd(self):
        def build(params):
            return np.array([[params["a"] ** 2, 0.0],
                             [0.0, 3.0 * params["a"]]])

        (derivative,), = matrix_derivatives(build, {"a": 2.0})
        np.testing.assert_allclose(derivative, [[4.0, 0.0], [0.0, 3.0]],
                                   rtol=1e-8)

    def test_sparse_stays_sparse(self):
        def build(params):
            return sp.csr_matrix(np.array([[params["a"], 0.0], [0.0, 1.0]]))

        (derivative,), = matrix_derivatives(build, {"a": 3.0})
        assert sp.issparse(derivative)
        np.testing.assert_allclose(derivative.toarray(),
                                   [[1.0, 0.0], [0.0, 0.0]], atol=1e-9)

    def test_bad_step_rejected(self):
        with pytest.raises(FEMError, match="rel_step"):
            matrix_derivatives(lambda p: np.eye(2), {"a": 1.0}, rel_step=0.0)


class TestStaticSensitivities:
    def test_tip_deflection_matches_fd(self):
        result = static_sensitivities(assemble_static, BASE,
                                      output_dofs=[-2])
        assert result.stats["field_solves"] == 1
        assert result.stats["factorizations"] == 1

        def tip(params):
            stiffness, force = assemble_static(params)
            return np.linalg.solve(stiffness, force)[-2]

        for k, name in enumerate(BASE):
            step = 1e-5 * BASE[name]
            up = dict(BASE)
            up[name] += step
            down = dict(BASE)
            down[name] -= step
            fd = (tip(up) - tip(down)) / (2.0 * step)
            assert result.matrix[0, k] == pytest.approx(fd, rel=1e-4)

    def test_adjoint_and_direct_agree(self):
        adjoint = static_sensitivities(assemble_static, BASE,
                                       output_dofs=[-2], method="adjoint")
        direct = static_sensitivities(assemble_static, BASE,
                                      output_dofs=[-2], method="direct")
        np.testing.assert_allclose(adjoint.matrix, direct.matrix, rtol=1e-9)
        assert adjoint.stats["adjoint_solves"] == 1
        assert direct.stats["direct_solves"] == len(BASE)

    def test_bad_assembler_rejected(self):
        with pytest.raises(FEMError, match="must return"):
            static_sensitivities(lambda p: np.eye(3), BASE)


class TestHarmonicSensitivities:
    FREQUENCIES = [1e4, 6e4]

    def test_matches_fd_of_full_response(self):
        result = harmonic_sensitivities(assemble_mck, BASE, self.FREQUENCIES,
                                        drive_dof=-2, output_dofs=[-2])

        def response(params, frequency):
            mass, damping, stiffness = assemble_mck(params)
            return harmonic_response(mass, damping, stiffness, [frequency],
                                     drive_dof=-2).displacements[0, -2]

        for f, frequency in enumerate(self.FREQUENCIES):
            for k, name in enumerate(BASE):
                step = 1e-5 * BASE[name]
                up = dict(BASE)
                up[name] += step
                down = dict(BASE)
                down[name] -= step
                fd = (response(up, frequency) - response(down, frequency)) \
                    / (2.0 * step)
                assert result.matrix[f, 0, k] == pytest.approx(fd, rel=2e-4)

    def test_values_match_forward_solve(self):
        result = harmonic_sensitivities(assemble_mck, BASE, self.FREQUENCIES,
                                        drive_dof=-2, output_dofs=[-2])
        mass, damping, stiffness = assemble_mck(BASE)
        reference = harmonic_response(mass, damping, stiffness,
                                      self.FREQUENCIES, drive_dof=-2)
        np.testing.assert_allclose(result.values[:, 0],
                                   reference.displacements[:, -2], rtol=1e-9)

    def test_solve_accounting(self):
        result = harmonic_sensitivities(assemble_mck, BASE, self.FREQUENCIES,
                                        drive_dof=-2, output_dofs=[-2])
        assert result.stats["field_solves"] == len(self.FREQUENCIES)
        # One output, two params -> adjoint (one transposed solve per freq).
        assert result.stats["adjoint_solves"] == len(self.FREQUENCIES)
        assert result.stats["factorizations"] == len(self.FREQUENCIES)

    def test_sparse_assembly_supported(self):
        def sparse_mck(params):
            mass, damping, stiffness = assemble_mck(params)
            return (sp.csr_matrix(mass), sp.csr_matrix(damping),
                    sp.csr_matrix(stiffness))

        dense = harmonic_sensitivities(assemble_mck, BASE, [2e4],
                                       drive_dof=-2, output_dofs=[-2])
        sparse = harmonic_sensitivities(sparse_mck, BASE, [2e4],
                                        drive_dof=-2, output_dofs=[-2])
        np.testing.assert_allclose(sparse.matrix, dense.matrix, rtol=1e-10)
