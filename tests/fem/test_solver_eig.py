"""Tests for the shared generalized eigensolver helper."""

from __future__ import annotations

import numpy as np
import pytest
import scipy.sparse as sp

from repro.errors import FEMError
from repro.fem import CantileverBeam, solve_generalized_eig


@pytest.fixture(scope="module")
def beam_matrices():
    beam = CantileverBeam(length=300e-6, width=20e-6, thickness=2e-6,
                          youngs_modulus=160e9, density=2330.0, elements=40)
    stiffness, mass = beam.assemble()
    return stiffness, mass, beam


class TestDensePath:
    def test_matches_beam_frequencies(self, beam_matrices):
        stiffness, mass, beam = beam_matrices
        values, _ = solve_generalized_eig(stiffness, mass, 3, method="dense")
        frequencies = np.sqrt(values) / (2.0 * np.pi)
        # subset_by_index selects a different LAPACK driver than the full
        # decomposition in natural_frequencies(), so allow driver-level noise.
        np.testing.assert_allclose(frequencies, beam.natural_frequencies(3),
                                   rtol=1e-6)

    def test_vectors_are_mass_normalized(self, beam_matrices):
        stiffness, mass, _ = beam_matrices
        _, vectors = solve_generalized_eig(stiffness, mass, 4, method="dense")
        gram = vectors.T @ mass @ vectors
        np.testing.assert_allclose(gram, np.eye(4), atol=1e-8)

    def test_vectors_satisfy_eigenproblem(self, beam_matrices):
        stiffness, mass, _ = beam_matrices
        values, vectors = solve_generalized_eig(stiffness, mass, 3,
                                                method="dense")
        for k in range(3):
            residual = stiffness @ vectors[:, k] - values[k] * (mass @ vectors[:, k])
            assert np.linalg.norm(residual) <= 1e-6 * values[k]

    def test_deterministic_sign_convention(self, beam_matrices):
        stiffness, mass, _ = beam_matrices
        _, first = solve_generalized_eig(stiffness, mass, 3)
        _, second = solve_generalized_eig(stiffness, mass, 3)
        np.testing.assert_array_equal(first, second)
        for k in range(3):
            pivot = int(np.argmax(np.abs(first[:, k])))
            assert first[pivot, k] > 0.0


class TestSparsePath:
    def test_shift_invert_matches_dense(self, beam_matrices):
        stiffness, mass, _ = beam_matrices
        dense_values, _ = solve_generalized_eig(stiffness, mass, 3,
                                                method="dense")
        sparse_values, vectors = solve_generalized_eig(
            sp.csr_matrix(stiffness), sp.csr_matrix(mass), 3, method="sparse")
        np.testing.assert_allclose(sparse_values, dense_values, rtol=1e-6)
        gram = vectors.T @ sp.csr_matrix(mass) @ vectors
        np.testing.assert_allclose(gram, np.eye(3), atol=1e-8)

    def test_sigma_selects_same_modes_on_both_paths(self, beam_matrices):
        stiffness, mass, beam = beam_matrices
        # Target the band around mode 3: both paths must return the modes
        # nearest the shift, not the lowest ones.
        all_freqs = beam.natural_frequencies(6)
        sigma = float((2.0 * np.pi * all_freqs[2]) ** 2 * 1.05)
        dense_values, _ = solve_generalized_eig(stiffness, mass, 2,
                                                method="dense", sigma=sigma)
        sparse_values, _ = solve_generalized_eig(
            sp.csr_matrix(stiffness), sp.csr_matrix(mass), 2,
            method="sparse", sigma=sigma)
        np.testing.assert_allclose(dense_values, sparse_values, rtol=1e-6)
        # Nearest two eigenvalues to 1.05*lambda_3 are lambda_2 and lambda_3.
        expected = (2.0 * np.pi * all_freqs[1:3]) ** 2
        np.testing.assert_allclose(dense_values, expected, rtol=1e-6)

    def test_indefinite_k_selects_nearest_zero_on_both_paths(self):
        # Buckling/prestressed systems have negative eigenvalues; sigma=0
        # must mean "nearest zero" on the dense path too, matching ARPACK.
        stiffness = np.diag([-5.0, -1.0, 0.5, 2.0, 7.0])
        mass = np.eye(5)
        dense_values, _ = solve_generalized_eig(stiffness, mass, 2,
                                                method="dense")
        sparse_values, _ = solve_generalized_eig(
            sp.csr_matrix(stiffness), sp.csr_matrix(mass), 2, method="sparse")
        np.testing.assert_allclose(dense_values, sparse_values, rtol=1e-9)
        np.testing.assert_allclose(dense_values, [-1.0, 0.5], rtol=1e-9)

    def test_auto_uses_sparse_only_for_small_fraction(self, beam_matrices):
        stiffness, mass, _ = beam_matrices
        # Requesting most of the spectrum must silently take the dense path.
        values, _ = solve_generalized_eig(sp.csr_matrix(stiffness),
                                          sp.csr_matrix(mass),
                                          mass.shape[0] - 1, method="auto")
        assert values.shape == (mass.shape[0] - 1,)


class TestValidation:
    def test_count_bounds(self, beam_matrices):
        stiffness, mass, _ = beam_matrices
        with pytest.raises(FEMError):
            solve_generalized_eig(stiffness, mass, 0)
        with pytest.raises(FEMError):
            solve_generalized_eig(stiffness, mass, mass.shape[0] + 1)

    def test_shape_mismatch(self):
        with pytest.raises(FEMError):
            solve_generalized_eig(np.eye(3), np.eye(4), 1)

    def test_unknown_method(self, beam_matrices):
        stiffness, mass, _ = beam_matrices
        with pytest.raises(FEMError):
            solve_generalized_eig(stiffness, mass, 2, method="lanczos")
