"""Tests for the exception hierarchy."""

from __future__ import annotations

import pytest

from repro import errors


def test_all_exceptions_derive_from_repro_error():
    for name in dir(errors):
        obj = getattr(errors, name)
        if isinstance(obj, type) and issubclass(obj, Exception) and obj is not Exception:
            assert issubclass(obj, errors.ReproError), name


def test_convergence_error_carries_diagnostics():
    error = errors.ConvergenceError("did not converge", iterations=17, residual=1e-3)
    assert error.iterations == 17
    assert error.residual == 1e-3
    assert "did not converge" in str(error)


def test_hdl_errors_carry_positions():
    lex = errors.HDLLexError("bad char", line=3, column=7)
    parse = errors.HDLParseError("bad token", line=2, column=1)
    assert lex.line == 3 and lex.column == 7 and "line 3" in str(lex)
    assert parse.line == 2 and "line 2" in str(parse)


def test_specific_errors_catchable_as_their_layer():
    assert issubclass(errors.ConvergenceError, errors.AnalysisError)
    assert issubclass(errors.SingularMatrixError, errors.AnalysisError)
    assert issubclass(errors.MeshError, errors.FEMError)
    assert issubclass(errors.HDLSemanticError, errors.HDLError)


def test_library_raises_catchable_base_error():
    from repro.natures import get_nature

    with pytest.raises(errors.ReproError):
        get_nature("nonexistent-domain")
