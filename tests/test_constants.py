"""Sanity checks of the physical constants and default tolerances."""

from __future__ import annotations

import math

from repro import constants


def test_paper_permittivity_matches_listing1():
    # Listing 1 hard-codes e0 := 8.8542e-12.
    assert constants.EPSILON_0 == 8.8542e-12


def test_codata_value_close_to_paper_value():
    assert constants.EPSILON_0 == abs(constants.EPSILON_0)
    assert abs(constants.EPSILON_0 - constants.EPSILON_0_CODATA) / constants.EPSILON_0_CODATA < 1e-4


def test_mu0_epsilon0_speed_of_light():
    c = 1.0 / math.sqrt(constants.MU_0 * constants.EPSILON_0_CODATA)
    assert c == abs(c)
    assert abs(c - constants.SPEED_OF_LIGHT) / constants.SPEED_OF_LIGHT < 1e-4


def test_thermal_voltage_at_room_temperature():
    assert 0.024 < constants.THERMAL_VOLTAGE < 0.028


def test_default_tolerances_are_sensible():
    assert 0.0 < constants.RELTOL < 1.0
    assert constants.ABSTOL < constants.VNTOL
    assert constants.GMIN > 0.0
    assert constants.MAX_NEWTON_ITERATIONS >= 10
