"""Tests for the electromagnetic and electrodynamic transducers (fig. 2c/2d)."""

from __future__ import annotations

import math

import numpy as np
import pytest
from hypothesis import given, settings, strategies as st

from repro.circuit import Circuit, OperatingPointAnalysis, Sine, Step, TransientAnalysis
from repro.constants import MU_0
from repro.errors import TransducerError
from repro.transducers import ElectrodynamicTransducer, ElectromagneticTransducer

currents = st.floats(min_value=-2.0, max_value=2.0, allow_nan=False)
small_displacements = st.floats(min_value=-3e-5, max_value=3e-5, allow_nan=False)


class TestElectromagneticAnalytics:
    """Closed forms of Table 2 / Table 3, row (c)."""

    def setup_method(self):
        self.xdcr = ElectromagneticTransducer(area=1e-4, turns=100.0, gap=0.15e-3)

    @given(small_displacements)
    @settings(max_examples=30)
    def test_inductance_table2(self, displacement):
        expected = MU_0 * 1e-4 * 100.0 ** 2 / (2.0 * (0.15e-3 + displacement))
        assert self.xdcr.inductance(displacement) == pytest.approx(expected, rel=1e-12)

    @given(currents, small_displacements)
    @settings(max_examples=30)
    def test_coenergy_table2(self, current, displacement):
        expected = MU_0 * 1e-4 * 100.0 ** 2 * current ** 2 / (4.0 * (0.15e-3 + displacement))
        assert self.xdcr.coenergy(current, displacement) == pytest.approx(
            expected, rel=1e-12, abs=1e-25)

    @given(currents, small_displacements)
    @settings(max_examples=30)
    def test_force_table3(self, current, displacement):
        gap = 0.15e-3 + displacement
        expected = -MU_0 * 1e-4 * 100.0 ** 2 * current ** 2 / (4.0 * gap ** 2)
        assert self.xdcr.force(current, displacement) == pytest.approx(
            expected, rel=1e-12, abs=1e-25)

    @given(currents, small_displacements)
    @settings(max_examples=30)
    def test_energy_method_matches_closed_form(self, current, displacement):
        assert self.xdcr.energy_method_force(current, displacement) == pytest.approx(
            self.xdcr.force(current, displacement), rel=1e-6, abs=1e-22)

    def test_flux_is_inductance_times_current(self):
        assert self.xdcr.charge_or_flux(0.5, 0.0) == pytest.approx(
            self.xdcr.inductance(0.0) * 0.5, rel=1e-12)

    def test_quasi_static_voltage(self):
        didt = 100.0
        assert self.xdcr.voltage(1.0, didt) == pytest.approx(
            self.xdcr.inductance(0.0) * didt, rel=1e-12)

    def test_contact_rejected(self):
        with pytest.raises(TransducerError):
            self.xdcr.inductance(-0.15e-3)

    def test_invalid_geometry(self):
        with pytest.raises(TransducerError):
            ElectromagneticTransducer(area=1e-4, turns=0.0, gap=1e-3)


class TestElectromagneticInCircuit:
    def test_dc_bias_current_and_force(self):
        """Driven by a voltage source through a resistor, the coil is a DC
        short so the bias current is V/R and the reluctance force follows."""
        xdcr = ElectromagneticTransducer(area=1e-4, turns=200.0, gap=0.2e-3)
        circuit = Circuit()
        circuit.voltage_source("VS", "in", "0", 2.0)
        circuit.resistor("R1", "in", "coil", 20.0)
        xdcr.add_to_circuit(circuit, "X1", "coil", "0", "m", "0")
        circuit.mass("M1", "m", 1e-3)
        circuit.spring("K1", "m", "0", 500.0)
        circuit.damper("D1", "m", "0", 0.1)
        op = OperatingPointAnalysis(circuit).run()
        bias_current = 2.0 / 20.0
        assert op["i(X1.elec)"] == pytest.approx(bias_current, rel=1e-6)
        assert op["force(X1)"] == pytest.approx(xdcr.force(bias_current, 0.0), rel=1e-4)
        assert op.voltage("coil") == pytest.approx(0.0, abs=1e-6)

    def test_transient_rl_rise_with_motion_disabled_by_stiff_spring(self, fast_options):
        xdcr = ElectromagneticTransducer(area=1e-4, turns=200.0, gap=0.2e-3)
        circuit = Circuit()
        circuit.voltage_source("VS", "in", "0", Step(0.0, 2.0, ramp=1e-6))
        circuit.resistor("R1", "in", "coil", 20.0)
        xdcr.add_to_circuit(circuit, "X1", "coil", "0", "m", "0")
        circuit.spring("K1", "m", "0", 1e9)  # effectively clamped armature
        circuit.damper("D1", "m", "0", 1.0)
        inductance = xdcr.inductance(0.0)
        tau = inductance / 20.0
        result = TransientAnalysis(circuit, t_stop=5 * tau, t_step=tau / 40,
                                   options=fast_options).run()
        expected = 0.1 * (1.0 - math.exp(-1.0))
        assert result.at("i(X1.elec)", tau) == pytest.approx(expected, rel=5e-2)


class TestElectrodynamicAnalytics:
    """Voice-coil transducer, Table 2/3 row (d)."""

    def setup_method(self):
        self.xdcr = ElectrodynamicTransducer(turns=50.0, radius=5e-3, b_field=0.8)

    def test_coupling_is_2piNrB(self):
        assert self.xdcr.coupling == pytest.approx(2.0 * math.pi * 50.0 * 5e-3 * 0.8)

    def test_force_magnitude_matches_table3(self):
        current = 0.3
        assert abs(self.xdcr.force(current, 0.0)) == pytest.approx(
            2.0 * math.pi * 50.0 * 5e-3 * 0.8 * current, rel=1e-12)

    def test_inductance_table2(self):
        assert self.xdcr.inductance() == pytest.approx(0.5 * MU_0 * 50.0 * 5e-3, rel=1e-12)

    def test_back_emf(self):
        assert self.xdcr.back_emf(0.1) == pytest.approx(self.xdcr.coupling * 0.1)

    def test_coenergy_independent_of_displacement(self):
        assert self.xdcr.coenergy(0.2, 0.0) == pytest.approx(self.xdcr.coenergy(0.2, 1e-3))

    def test_invalid_parameters(self):
        with pytest.raises(TransducerError):
            ElectrodynamicTransducer(turns=-1.0, radius=1e-3, b_field=1.0)


class TestElectrodynamicInCircuit:
    def test_dc_force_proportional_to_current(self):
        xdcr = ElectrodynamicTransducer(turns=50.0, radius=5e-3, b_field=0.8)
        circuit = Circuit()
        circuit.voltage_source("VS", "in", "0", 1.0)
        circuit.resistor("R1", "in", "coil", 10.0)
        xdcr.add_to_circuit(circuit, "X1", "coil", "0", "m", "0")
        circuit.mass("M1", "m", 1e-3)
        circuit.spring("K1", "m", "0", 100.0)
        circuit.damper("D1", "m", "0", 0.5)
        op = OperatingPointAnalysis(circuit).run()
        assert op["i(X1.elec)"] == pytest.approx(0.1, rel=1e-6)
        assert abs(op["force(X1)"]) == pytest.approx(xdcr.coupling * 0.1, rel=1e-6)

    def test_energy_conservation_through_gyrator(self, fast_options):
        """Electrical power in ~ mechanical power out + inductor storage:
        drive the coil with a sine and check the damper dissipates power."""
        xdcr = ElectrodynamicTransducer(turns=50.0, radius=5e-3, b_field=0.8)
        circuit = Circuit()
        circuit.voltage_source("VS", "in", "0", Sine(amplitude=1.0, frequency=50.0))
        circuit.resistor("R1", "in", "coil", 10.0)
        xdcr.add_to_circuit(circuit, "X1", "coil", "0", "m", "0")
        circuit.mass("M1", "m", 1e-3)
        circuit.spring("K1", "m", "0", 100.0)
        circuit.damper("D1", "m", "0", 0.5)
        result = TransientAnalysis(circuit, t_stop=0.1, t_step=2e-4,
                                   options=fast_options).run()
        velocity = result.signal("v(m)")
        # The coil must actually move the mass.
        assert np.max(np.abs(velocity)) > 1e-4
        # Back-EMF reduces the drive current relative to V/R.
        assert np.max(np.abs(result.signal("i(X1.elec)"))) < 0.1
