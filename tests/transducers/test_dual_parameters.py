"""Dual-seeded transducer geometry: design sensitivities via the chain rule."""

from __future__ import annotations

import pytest

from repro.ad import seed_dict, value_of
from repro.errors import TransducerError
from repro.transducers import (LateralElectrostaticTransducer,
                               TransverseElectrostaticTransducer)


class TestTransverseDualGeometry:
    def test_capacitance_gradient_matches_closed_form(self):
        params = seed_dict({"area": 1e-8, "gap": 2e-6})
        transducer = TransverseElectrostaticTransducer(
            area=params["area"], gap=params["gap"])
        capacitance = transducer.capacitance(0.0)
        eps0 = transducer.epsilon_0
        # C = eps A / d: dC/dA = eps/d, dC/dd = -eps A / d^2.
        assert value_of(capacitance) == pytest.approx(eps0 * 1e-8 / 2e-6)
        assert capacitance.deriv[0] == pytest.approx(eps0 / 2e-6)
        assert capacitance.deriv[1] == pytest.approx(-eps0 * 1e-8 / 4e-12)

    def test_pull_in_voltage_carries_sensitivities(self):
        params = seed_dict({"gap": 2e-6})
        transducer = TransverseElectrostaticTransducer(
            area=1e-8, gap=params["gap"], gap_orientation="closing")
        v_pi = transducer.pull_in_voltage(2.0)
        reference = TransverseElectrostaticTransducer(
            area=1e-8, gap=2e-6, gap_orientation="closing").pull_in_voltage(2.0)
        assert value_of(v_pi) == pytest.approx(reference)
        # V_pi ~ d^(3/2): dV/dd = 1.5 V / d.
        assert v_pi.deriv[0] == pytest.approx(1.5 * reference / 2e-6, rel=1e-9)

    def test_parameters_strip_the_derivative(self):
        params = seed_dict({"area": 1e-8, "gap": 2e-6})
        transducer = TransverseElectrostaticTransducer(
            area=params["area"], gap=params["gap"])
        table = transducer.parameters()
        assert table["A"] == 1e-8 and isinstance(table["A"], float)
        assert table["d"] == 2e-6 and isinstance(table["d"], float)

    def test_validation_still_rejects_bad_duals(self):
        params = seed_dict({"gap": -1e-6})
        with pytest.raises(TransducerError):
            TransverseElectrostaticTransducer(area=1e-8, gap=params["gap"])

    def test_plain_floats_unchanged(self):
        transducer = TransverseElectrostaticTransducer(area=1e-8, gap=2e-6)
        assert isinstance(transducer.area, float)
        assert isinstance(transducer.gap, float)


class TestLateralDualGeometry:
    def test_force_gradient_matches_closed_form(self):
        params = seed_dict({"depth": 1e-5, "gap": 2e-6})
        transducer = LateralElectrostaticTransducer(
            depth=params["depth"], length=1e-4, gap=params["gap"])
        force = transducer.force(10.0, 0.0)
        eps0 = transducer.epsilon_0
        # F = -eps h v^2 / (2 d).
        assert value_of(force) == pytest.approx(-eps0 * 1e-5 * 100.0 / 4e-6)
        assert force.deriv[0] == pytest.approx(-eps0 * 100.0 / 4e-6)
        assert force.deriv[1] == pytest.approx(eps0 * 1e-5 * 100.0 / 8e-12)
