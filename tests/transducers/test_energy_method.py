"""Tests for the mechanised energy-method derivation (the paper's 4-step recipe)."""

from __future__ import annotations

import numpy as np
import pytest
from hypothesis import given, settings, strategies as st

from repro.ad import Dual, seed_many
from repro.constants import EPSILON_0, MU_0
from repro.errors import TransducerError
from repro.transducers.energy_method import (
    EnergyDerivation,
    derive_efforts,
    differentiate_coenergy,
    hessian_scaled,
    partials_with_sensitivities,
)

AREA, GAP, TURNS = 1e-4, 0.15e-3, 100.0


def electrostatic_coenergy(voltage, displacement):
    return 0.5 * EPSILON_0 * AREA / (GAP + displacement) * voltage * voltage


def electrostatic_energy(charge, displacement):
    return 0.5 * charge * charge * (GAP + displacement) / (EPSILON_0 * AREA)


def magnetic_coenergy(current, displacement):
    return MU_0 * AREA * TURNS ** 2 * current * current / (4.0 * (GAP + displacement))


voltages = st.floats(min_value=-30.0, max_value=30.0, allow_nan=False)
displacements = st.floats(min_value=-4e-5, max_value=4e-5, allow_nan=False)


class TestDeriveEfforts:
    """Step 3 of the recipe reproduces the closed forms of Table 3."""

    @given(voltages, displacements)
    @settings(max_examples=50)
    def test_electrostatic_charge_and_force(self, voltage, displacement):
        charge, force = derive_efforts(electrostatic_coenergy, [voltage, displacement])
        gap = GAP + displacement
        assert charge == pytest.approx(EPSILON_0 * AREA * voltage / gap, rel=1e-9, abs=1e-20)
        assert force == pytest.approx(-0.5 * EPSILON_0 * AREA * voltage ** 2 / gap ** 2,
                                      rel=1e-9, abs=1e-20)

    @given(st.floats(min_value=-2.0, max_value=2.0), displacements)
    @settings(max_examples=50)
    def test_energy_form_gives_port_voltage(self, charge, displacement):
        """dW/dq of the internal energy is the Table 3 voltage expression."""
        voltage, _ = derive_efforts(electrostatic_energy, [charge * 1e-9, displacement])
        expected = charge * 1e-9 * (GAP + displacement) / (EPSILON_0 * AREA)
        assert voltage == pytest.approx(expected, rel=1e-9, abs=1e-20)

    @given(st.floats(min_value=-1.0, max_value=1.0), displacements)
    @settings(max_examples=50)
    def test_electromagnetic_flux_and_force(self, current, displacement):
        flux, force = derive_efforts(magnetic_coenergy, [current, displacement])
        gap = GAP + displacement
        inductance = MU_0 * AREA * TURNS ** 2 / (2.0 * gap)
        assert flux == pytest.approx(inductance * current, rel=1e-9, abs=1e-20)
        assert force == pytest.approx(
            -MU_0 * AREA * TURNS ** 2 * current ** 2 / (4.0 * gap ** 2), rel=1e-9, abs=1e-20)

    def test_empty_state_list_rejected(self):
        with pytest.raises(TransducerError):
            derive_efforts(electrostatic_coenergy, [])


class TestHessianScaled:
    def test_quadratic_is_exact(self):
        hess = hessian_scaled(lambda x, y: x * x + 4.0 * x * y, [1.0, 2.0], scales=[1.0, 1.0])
        assert hess == pytest.approx(np.array([[2.0, 4.0], [4.0, 0.0]]), abs=1e-6)

    def test_small_scale_variables_remain_accurate(self):
        # Around x = 0 with a 150-um characteristic scale the second
        # derivative of the coenergy must match the analytic value.
        hess = hessian_scaled(electrostatic_coenergy, [10.0, 0.0], scales=(1.0, GAP))
        analytic_df_dx_dv = -EPSILON_0 * AREA * 2.0 * 10.0 / (2.0 * GAP ** 2)
        assert hess[0, 1] == pytest.approx(analytic_df_dx_dv, rel=1e-4)

    def test_scale_validation(self):
        with pytest.raises(TransducerError):
            hessian_scaled(electrostatic_coenergy, [1.0, 0.0], scales=(1.0,))
        with pytest.raises(TransducerError):
            hessian_scaled(electrostatic_coenergy, [1.0, 0.0], scales=(1.0, -1.0))


class TestPartialsWithSensitivities:
    def test_plain_floats_return_floats(self):
        results = partials_with_sensitivities(electrostatic_coenergy, [10.0, 0.0],
                                              scales=(1.0, GAP))
        assert all(isinstance(r, float) for r in results)

    def test_chain_rule_through_dual_inputs(self):
        voltage, displacement = seed_many([10.0, 1e-6])
        charge, force = partials_with_sensitivities(
            electrostatic_coenergy, [voltage, displacement], scales=(1.0, GAP))
        assert isinstance(charge, Dual) and isinstance(force, Dual)
        gap = GAP + 1e-6
        # d(charge)/d(voltage) = C(x); d(charge)/d(x) = -eps A V / gap^2.
        assert charge.partial(0) == pytest.approx(EPSILON_0 * AREA / gap, rel=1e-4)
        assert charge.partial(1) == pytest.approx(-EPSILON_0 * AREA * 10.0 / gap ** 2, rel=1e-4)
        # d(force)/d(voltage) = -eps A V / gap^2 (symmetry of the Hessian).
        assert force.partial(0) == pytest.approx(charge.partial(1), rel=1e-6)

    def test_differentiate_coenergy_wrapper(self):
        charge, force = differentiate_coenergy(electrostatic_coenergy, 10.0, 0.0,
                                               scales=(1.0, GAP))
        assert charge == pytest.approx(EPSILON_0 * AREA * 10.0 / GAP, rel=1e-9)
        assert force == pytest.approx(-0.5 * EPSILON_0 * AREA * 100.0 / GAP ** 2, rel=1e-9)


class TestEnergyDerivationRecord:
    def test_summary_mentions_states(self):
        record = EnergyDerivation(("charge q", "displacement x"),
                                  ("voltage", "force"), "electrostatic transducer")
        text = record.summary()
        assert "dW/dcharge q" in text and "force" in text
