"""Tests for the linearized equivalent-circuit transducer model."""

from __future__ import annotations

import numpy as np
import pytest

from repro.circuit import Circuit, OperatingPointAnalysis, Pulse, TransientAnalysis
from repro.constants import EPSILON_0
from repro.errors import TransducerError
from repro.transducers import (
    TransverseElectrostaticTransducer,
    create_transducer,
    linearize_transverse_electrostatic,
)
from repro.transducers.library import TRANSDUCER_LIBRARY
from repro.transducers.linearized import add_linearized_equivalent_circuit

AREA, GAP, STIFFNESS, V0 = 1e-4, 0.15e-3, 200.0, 10.0


@pytest.fixture
def transducer():
    return TransverseElectrostaticTransducer(area=AREA, gap=GAP)


@pytest.fixture
def linearized(transducer):
    return linearize_transverse_electrostatic(transducer, V0, stiffness=STIFFNESS)


class TestBiasPoint:
    def test_bias_displacement_close_to_table4(self, linearized):
        assert linearized.bias_displacement == pytest.approx(1e-8, rel=2e-2)

    def test_c0_close_to_table4(self, linearized):
        assert linearized.c0 == pytest.approx(5.9e-12, rel=1e-2)

    def test_gamma_small_signal_is_paper_formula(self, linearized):
        expected = EPSILON_0 * AREA * V0 / (GAP + linearized.bias_displacement) ** 2
        assert linearized.gamma_small_signal == pytest.approx(expected, rel=1e-6)

    def test_gamma_effective_is_half_of_small_signal(self, linearized):
        assert linearized.gamma_effective == pytest.approx(
            0.5 * linearized.gamma_small_signal, rel=1e-9)

    def test_printed_paper_gamma_differs_from_formula(self, linearized):
        # The paper prints 3.34675e-9 N/V, which is inconsistent with its own
        # formula by roughly two orders of magnitude -- recorded here as a fact.
        assert linearized.gamma_small_signal / 3.34675e-9 > 50.0

    def test_gamma_selector(self, linearized):
        assert linearized.gamma("effective") == linearized.gamma_effective
        assert linearized.gamma("small_signal") == linearized.gamma_small_signal
        assert linearized.gamma("tilmans") == linearized.gamma_small_signal
        with pytest.raises(TransducerError):
            linearized.gamma("bogus")

    def test_explicit_bias_displacement(self, transducer):
        lin = linearize_transverse_electrostatic(transducer, V0, bias_displacement=0.0)
        assert lin.bias_displacement == 0.0
        assert lin.c0 == pytest.approx(EPSILON_0 * AREA / GAP, rel=1e-12)

    def test_missing_stiffness_and_displacement_rejected(self, transducer):
        with pytest.raises(TransducerError):
            linearize_transverse_electrostatic(transducer, V0)

    def test_zero_bias_voltage_gives_zero_gamma(self, transducer):
        lin = linearize_transverse_electrostatic(transducer, 0.0, bias_displacement=0.0)
        assert lin.gamma_effective == 0.0 and lin.gamma_small_signal == 0.0

    def test_summary_text(self, linearized):
        text = linearized.summary()
        assert "C0" in text and "Gamma" in text


class TestEquivalentCircuit:
    def _build(self, linearized, drive, **kwargs):
        circuit = Circuit()
        circuit.voltage_source("VS", "a", "0", drive)
        add_linearized_equivalent_circuit(circuit, linearized, "XL", "a", "0", "m", "0",
                                          **kwargs)
        circuit.mass("M1", "m", 1e-4)
        circuit.spring("K1", "m", "0", STIFFNESS)
        circuit.damper("D1", "m", "0", 0.04)
        return circuit

    def test_devices_created(self, linearized):
        circuit = self._build(linearized, 10.0)
        assert "XL_C0" in circuit and "XL_Gf" in circuit and "XL_Gi" in circuit

    def test_spring_softening_optional(self, linearized):
        circuit = self._build(linearized, 10.0, include_spring_softening=True)
        assert "XL_ke" in circuit

    def test_quasi_static_displacement_matches_nonlinear_at_bias(self, linearized,
                                                                 fast_options):
        drive = Pulse(0.0, 10.0, rise=2e-3, width=40e-3)
        circuit = self._build(linearized, drive)
        result = TransientAnalysis(circuit, t_stop=40e-3, t_step=2e-4,
                                   options=fast_options).run()
        expected = linearized.bias_force / STIFFNESS
        assert result.final("x(M1)") == pytest.approx(expected, rel=2e-2)

    def test_displacement_scales_linearly_with_drive(self, linearized, fast_options):
        plateaus = []
        for amplitude in (5.0, 15.0):
            drive = Pulse(0.0, amplitude, rise=2e-3, width=40e-3)
            circuit = self._build(linearized, drive)
            result = TransientAnalysis(circuit, t_stop=40e-3, t_step=2e-4,
                                       options=fast_options).run()
            plateaus.append(result.final("x(M1)"))
        assert plateaus[1] / plateaus[0] == pytest.approx(3.0, rel=2e-2)

    def test_motional_current_loads_the_source(self, linearized):
        # At DC there is no motion, so the source sees only the capacitor
        # (zero current); this checks the reciprocal branch does not leak.
        circuit = self._build(linearized, 10.0)
        op = OperatingPointAnalysis(circuit).run()
        assert op["i(VS)"] == pytest.approx(0.0, abs=1e-9)


class TestLibrary:
    def test_create_by_name(self):
        xdcr = create_transducer("transverse_electrostatic", area=AREA, gap=GAP)
        assert isinstance(xdcr, TransverseElectrostaticTransducer)

    def test_figure_aliases_present(self):
        for alias in ("fig2a", "fig2b", "fig2c", "fig2d"):
            assert alias in TRANSDUCER_LIBRARY

    def test_unknown_name_rejected(self):
        with pytest.raises(TransducerError, match="unknown transducer"):
            create_transducer("warp_drive")
