"""Tests for the electrostatic transducer models (figure 2a/2b, Tables 2-3)."""

from __future__ import annotations

import numpy as np
import pytest
from hypothesis import given, settings, strategies as st

from repro.circuit import Circuit, OperatingPointAnalysis, Pulse, TransientAnalysis
from repro.constants import EPSILON_0
from repro.errors import TransducerError
from repro.transducers import (
    LateralElectrostaticTransducer,
    TransverseElectrostaticTransducer,
)

AREA, GAP = 1e-4, 0.15e-3

voltages = st.floats(min_value=-20.0, max_value=20.0, allow_nan=False)
small_displacements = st.floats(min_value=-3e-5, max_value=3e-5, allow_nan=False)


class TestTransverseAnalytics:
    """Closed forms of Table 2 / Table 3, row (a)."""

    def setup_method(self):
        self.xdcr = TransverseElectrostaticTransducer(area=AREA, gap=GAP)

    @given(small_displacements)
    @settings(max_examples=30)
    def test_capacitance_table2(self, displacement):
        expected = EPSILON_0 * AREA / (GAP + displacement)
        assert self.xdcr.capacitance(displacement) == pytest.approx(expected, rel=1e-12)

    @given(voltages, small_displacements)
    @settings(max_examples=30)
    def test_coenergy_table2(self, voltage, displacement):
        expected = 0.5 * EPSILON_0 * AREA * voltage ** 2 / (GAP + displacement)
        assert self.xdcr.coenergy(voltage, displacement) == pytest.approx(
            expected, rel=1e-12, abs=1e-25)

    @given(voltages, small_displacements)
    @settings(max_examples=30)
    def test_force_table3(self, voltage, displacement):
        expected = -0.5 * EPSILON_0 * AREA * voltage ** 2 / (GAP + displacement) ** 2
        assert self.xdcr.force(voltage, displacement) == pytest.approx(
            expected, rel=1e-12, abs=1e-25)

    @given(voltages, small_displacements)
    @settings(max_examples=30)
    def test_energy_method_matches_closed_form(self, voltage, displacement):
        assert self.xdcr.energy_method_force(voltage, displacement) == pytest.approx(
            self.xdcr.force(voltage, displacement), rel=1e-6, abs=1e-25)

    def test_charge_is_capacitance_times_voltage(self):
        assert self.xdcr.charge_or_flux(10.0, 1e-6) == pytest.approx(
            self.xdcr.capacitance(1e-6) * 10.0, rel=1e-12)

    def test_voltage_from_charge_inverts_charge(self):
        charge = self.xdcr.charge_or_flux(7.0, 2e-6)
        assert self.xdcr.voltage_from_charge(charge, 2e-6) == pytest.approx(7.0, rel=1e-12)

    def test_stored_energy_equals_coenergy_for_linear_dielectric(self):
        voltage, displacement = 10.0, 1e-6
        charge = self.xdcr.charge_or_flux(voltage, displacement)
        assert self.xdcr.stored_energy(charge, displacement) == pytest.approx(
            self.xdcr.coenergy(voltage, displacement), rel=1e-12)

    def test_paper_bias_values(self):
        """Table 4: C0 ~ 5.9 pF and x0 ~ 1e-8 m at 10 V with k = 200 N/m."""
        force = abs(self.xdcr.force(10.0, 0.0))
        assert force / 200.0 == pytest.approx(1e-8, rel=2e-2)
        assert self.xdcr.capacitance(1e-8) == pytest.approx(5.9e-12, rel=1e-2)

    def test_contact_rejected(self):
        with pytest.raises(TransducerError):
            self.xdcr.capacitance(-GAP)

    def test_invalid_geometry_rejected(self):
        with pytest.raises(TransducerError):
            TransverseElectrostaticTransducer(area=-1.0, gap=GAP)
        with pytest.raises(TransducerError):
            TransverseElectrostaticTransducer(area=AREA, gap=GAP, gap_orientation="sideways")

    def test_parameters_dictionary(self):
        params = self.xdcr.parameters()
        assert params["A"] == AREA and params["d"] == GAP and params["er"] == 1.0

    def test_repr_contains_parameters(self):
        assert "0.00015" in repr(self.xdcr) or "1.5e-04" in repr(self.xdcr)


class TestGapOrientations:
    def test_closing_orientation_flips_force_sign(self):
        paper = TransverseElectrostaticTransducer(AREA, GAP, gap_orientation="paper")
        closing = TransverseElectrostaticTransducer(AREA, GAP, gap_orientation="closing")
        assert paper.force(10.0, 0.0) == pytest.approx(-closing.force(10.0, 0.0))

    def test_closing_orientation_capacitance_grows_with_displacement(self):
        closing = TransverseElectrostaticTransducer(AREA, GAP, gap_orientation="closing")
        assert closing.capacitance(1e-5) > closing.capacitance(0.0)

    def test_pull_in_voltage_formula(self):
        closing = TransverseElectrostaticTransducer(AREA, GAP, gap_orientation="closing")
        expected = np.sqrt(8.0 * 200.0 * GAP ** 3 / (27.0 * EPSILON_0 * AREA))
        assert closing.pull_in_voltage(200.0) == pytest.approx(expected, rel=1e-12)
        assert closing.pull_in_displacement() == pytest.approx(GAP / 3.0)
        with pytest.raises(TransducerError):
            closing.pull_in_voltage(-1.0)


class TestLateralAnalytics:
    """Closed forms of Table 2 / Table 3, row (b)."""

    def setup_method(self):
        self.xdcr = LateralElectrostaticTransducer(depth=10e-6, length=100e-6, gap=2e-6)

    def test_capacitance_table2(self):
        expected = EPSILON_0 * 10e-6 * (100e-6 - 5e-6) / 2e-6
        assert self.xdcr.capacitance(5e-6) == pytest.approx(expected, rel=1e-12)

    @given(voltages)
    @settings(max_examples=30)
    def test_force_independent_of_displacement(self, voltage):
        f0 = self.xdcr.force(voltage, 0.0)
        f1 = self.xdcr.force(voltage, 20e-6)
        assert f0 == pytest.approx(f1, rel=1e-12)
        assert f0 == pytest.approx(-0.5 * EPSILON_0 * 10e-6 * voltage ** 2 / 2e-6,
                                   rel=1e-12, abs=1e-25)

    @given(voltages, st.floats(min_value=-20e-6, max_value=50e-6))
    @settings(max_examples=30)
    def test_energy_method_matches_closed_form(self, voltage, displacement):
        assert self.xdcr.energy_method_force(voltage, displacement) == pytest.approx(
            self.xdcr.force(voltage, displacement), rel=1e-6, abs=1e-22)

    def test_disengagement_rejected(self):
        with pytest.raises(TransducerError):
            self.xdcr.capacitance(200e-6)

    def test_invalid_geometry(self):
        with pytest.raises(TransducerError):
            LateralElectrostaticTransducer(depth=0.0, length=1e-6, gap=1e-6)


class TestTransverseDeviceInCircuit:
    """The elaborated behavioral device in a bias circuit (energy method and
    closed form must agree with the analytic force)."""

    @pytest.mark.parametrize("closed_form", [False, True])
    def test_dc_force_matches_analytic(self, closed_form):
        xdcr = TransverseElectrostaticTransducer(AREA, GAP)
        circuit = Circuit()
        circuit.voltage_source("VS", "a", "0", 10.0)
        xdcr.add_to_circuit(circuit, "X1", "a", "0", "m", "0", closed_form=closed_form)
        circuit.mass("M1", "m", 1e-4)
        circuit.spring("K1", "m", "0", 200.0)
        circuit.damper("D1", "m", "0", 0.04)
        op = OperatingPointAnalysis(circuit).run()
        assert op["force(X1)"] == pytest.approx(xdcr.force(10.0, 0.0), rel=1e-6)
        assert op["charge(X1)"] == pytest.approx(xdcr.charge_or_flux(10.0, 0.0), rel=1e-6)

    def test_transient_displacement_follows_quasi_static_value(self, fast_options):
        xdcr = TransverseElectrostaticTransducer(AREA, GAP)
        circuit = Circuit()
        circuit.voltage_source("VS", "a", "0", Pulse(0.0, 10.0, rise=2e-3, width=40e-3))
        xdcr.add_to_circuit(circuit, "X1", "a", "0", "m", "0")
        circuit.mass("M1", "m", 1e-4)
        circuit.spring("K1", "m", "0", 200.0)
        circuit.damper("D1", "m", "0", 0.04)
        result = TransientAnalysis(circuit, t_stop=40e-3, t_step=2e-4,
                                   options=fast_options).run()
        expected = abs(xdcr.force(10.0, 0.0)) / 200.0
        assert result.final("x(X1)") == pytest.approx(expected, rel=2e-2)
        # The mass and the transducer record the same displacement.
        assert result.final("x(res_m)") if "x(res_m)" in result.signals() else True
        assert result.final("x(M1)") == pytest.approx(result.final("x(X1)"), rel=1e-3)
