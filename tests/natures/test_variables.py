"""Tests for the generalized-variable algebra of Table 1."""

from __future__ import annotations

import numpy as np
import pytest
from hypothesis import given, strategies as st

from repro.natures import ELECTRICAL, GeneralizedVariables, power, energy_increment
from repro.natures.variables import cumulative_integral


class TestCumulativeIntegral:
    def test_constant_integrand(self):
        t = np.linspace(0.0, 2.0, 51)
        integral = cumulative_integral(t, np.full_like(t, 3.0))
        assert integral[0] == 0.0
        assert integral[-1] == pytest.approx(6.0)

    def test_linear_integrand(self):
        t = np.linspace(0.0, 1.0, 201)
        integral = cumulative_integral(t, t)
        assert integral[-1] == pytest.approx(0.5, rel=1e-3)

    def test_empty_input(self):
        assert cumulative_integral(np.array([]), np.array([])).size == 0

    def test_shape_mismatch_raises(self):
        with pytest.raises(ValueError):
            cumulative_integral(np.array([0.0, 1.0]), np.array([1.0]))


class TestGeneralizedVariables:
    def _sinusoidal_port(self):
        t = np.linspace(0.0, 1e-3, 2001)
        omega = 2.0 * np.pi * 5e3
        effort = 2.0 * np.cos(omega * t)
        flow = 0.5 * np.cos(omega * t)
        return GeneralizedVariables(ELECTRICAL, t, effort, flow)

    def test_power_is_product_of_conjugates(self):
        port = self._sinusoidal_port()
        assert np.allclose(port.power, port.effort * port.flow)

    def test_state_is_integral_of_flow(self):
        port = self._sinusoidal_port()
        # d(state)/dt == flow (check midpoint derivative numerically)
        state = port.state
        derivative = np.gradient(state, port.t)
        assert np.allclose(derivative[10:-10], port.flow[10:-10], rtol=1e-2, atol=1e-4)

    def test_energy_is_integral_of_power(self):
        port = self._sinusoidal_port()
        # In-phase sinusoids deliver average power = Vm*Im/2.
        expected_average = 2.0 * 0.5 / 2.0
        assert port.energy[-1] == pytest.approx(expected_average * port.t[-1], rel=1e-2)

    def test_momentum_is_integral_of_effort(self):
        t = np.linspace(0.0, 1.0, 101)
        port = GeneralizedVariables(ELECTRICAL, t, np.full_like(t, 3.0), np.zeros_like(t))
        assert port.momentum[-1] == pytest.approx(3.0)

    def test_shape_mismatch_raises(self):
        with pytest.raises(ValueError):
            GeneralizedVariables(ELECTRICAL, np.zeros(3), np.zeros(3), np.zeros(4))


class TestHelpers:
    @given(st.floats(-1e6, 1e6), st.floats(-1e6, 1e6))
    def test_power_matches_product(self, effort, flow):
        assert power(effort, flow) == effort * flow

    @given(st.floats(-1e3, 1e3), st.floats(-1e3, 1e3))
    def test_energy_increment(self, effort, dstate):
        assert energy_increment(effort, dstate) == effort * dstate
