"""Tests for the force-voltage / force-current analogies."""

from __future__ import annotations

import math

import pytest
from hypothesis import given, strategies as st

from repro.errors import NatureError
from repro.natures import FORCE_CURRENT, FORCE_VOLTAGE, Analogy

positive = st.floats(min_value=1e-9, max_value=1e9, allow_nan=False, allow_infinity=False)


class TestElementMappings:
    def test_fi_mass_is_capacitance(self):
        assert FORCE_CURRENT.mass_to_element(1e-4) == pytest.approx(1e-4)

    def test_fi_spring_is_inverse_stiffness(self):
        assert FORCE_CURRENT.spring_to_element(200.0) == pytest.approx(1.0 / 200.0)

    def test_fi_damper_is_inverse_damping(self):
        assert FORCE_CURRENT.damper_to_element(0.04) == pytest.approx(25.0)

    def test_fv_damper_is_damping(self):
        assert FORCE_VOLTAGE.damper_to_element(0.04) == pytest.approx(0.04)

    @given(positive)
    def test_mass_roundtrip(self, mass):
        for mapping in (FORCE_CURRENT, FORCE_VOLTAGE):
            assert mapping.element_to_mass(mapping.mass_to_element(mass)) == pytest.approx(mass)

    @given(positive)
    def test_spring_roundtrip(self, stiffness):
        for mapping in (FORCE_CURRENT, FORCE_VOLTAGE):
            assert mapping.element_to_spring(
                mapping.spring_to_element(stiffness)) == pytest.approx(stiffness)

    @given(positive)
    def test_damper_roundtrip(self, damping):
        for mapping in (FORCE_CURRENT, FORCE_VOLTAGE):
            assert mapping.element_to_damper(
                mapping.damper_to_element(damping)) == pytest.approx(damping)

    @pytest.mark.parametrize("value", [0.0, -1.0, float("nan"), float("inf")])
    def test_invalid_values_rejected(self, value):
        with pytest.raises(NatureError):
            FORCE_CURRENT.mass_to_element(value)
        with pytest.raises(NatureError):
            FORCE_CURRENT.spring_to_element(value)
        with pytest.raises(NatureError):
            FORCE_CURRENT.damper_to_element(value)


class TestDerivedQuantities:
    """Both analogies must predict identical physics (Table 4 resonator)."""

    MASS = 1e-4
    STIFFNESS = 200.0
    DAMPING = 0.04

    def test_resonant_frequency_matches_textbook(self):
        expected = math.sqrt(self.STIFFNESS / self.MASS) / (2.0 * math.pi)
        assert FORCE_CURRENT.resonant_frequency(self.MASS, self.STIFFNESS) == pytest.approx(expected)
        assert FORCE_VOLTAGE.resonant_frequency(self.MASS, self.STIFFNESS) == pytest.approx(expected)

    def test_quality_factor(self):
        expected = math.sqrt(self.STIFFNESS * self.MASS) / self.DAMPING
        assert FORCE_CURRENT.quality_factor(
            self.MASS, self.STIFFNESS, self.DAMPING) == pytest.approx(expected)

    def test_damping_ratio_consistent_with_quality_factor(self):
        q = FORCE_CURRENT.quality_factor(self.MASS, self.STIFFNESS, self.DAMPING)
        zeta = FORCE_CURRENT.damping_ratio(self.MASS, self.STIFFNESS, self.DAMPING)
        assert zeta == pytest.approx(0.5 / q)

    def test_paper_resonator_is_underdamped(self):
        zeta = FORCE_CURRENT.damping_ratio(self.MASS, self.STIFFNESS, self.DAMPING)
        assert zeta < 1.0

    def test_enum_mapping_accessor(self):
        assert Analogy.FORCE_CURRENT.mapping is FORCE_CURRENT
        assert Analogy.FORCE_VOLTAGE.mapping is FORCE_VOLTAGE
