"""Tests for the nature (physical domain) registry -- the paper's Table 1."""

from __future__ import annotations

import pytest

from repro.errors import NatureError
from repro.natures import (
    ELECTRICAL,
    HYDRAULIC,
    MECHANICAL1,
    MECHANICAL_ROTATION,
    MECHANICAL_TRANSLATION,
    THERMAL,
    Nature,
    all_natures,
    get_nature,
    register_nature,
)


class TestTable1Rows:
    """The registered natures reproduce the rows of Table 1."""

    @pytest.mark.parametrize("nature,effort,flow,state", [
        (MECHANICAL_TRANSLATION, "velocity", "force", "displacement"),
        (MECHANICAL_ROTATION, "angular velocity", "torque", "angle"),
        (ELECTRICAL, "voltage", "current", "charge"),
        (HYDRAULIC, "pressure", "volume flow rate", "volume"),
    ])
    def test_variable_names(self, nature, effort, flow, state):
        assert nature.across_name == effort
        assert nature.through_name == flow
        assert nature.state_name == state

    def test_all_table1_domains_power_conjugate(self):
        for nature in (MECHANICAL_TRANSLATION, MECHANICAL_ROTATION, ELECTRICAL, HYDRAULIC):
            assert nature.is_power_conjugate

    def test_thermal_is_not_power_conjugate(self):
        assert not THERMAL.is_power_conjugate

    def test_describe_mentions_units(self):
        text = ELECTRICAL.describe()
        assert "V" in text and "A" in text and "C" in text


class TestRegistry:
    def test_lookup_by_name_case_insensitive(self):
        assert get_nature("ELECTRICAL") is ELECTRICAL
        assert get_nature("Electrical") is ELECTRICAL

    def test_lookup_by_alias(self):
        assert get_nature("mechanical1") is MECHANICAL_TRANSLATION
        assert get_nature("fluidic") is HYDRAULIC

    def test_mechanical1_constant_is_translation(self):
        assert MECHANICAL1 is MECHANICAL_TRANSLATION

    def test_passthrough_of_nature_instances(self):
        assert get_nature(ELECTRICAL) is ELECTRICAL

    def test_unknown_name_raises_with_known_list(self):
        with pytest.raises(NatureError, match="electrical"):
            get_nature("gravitational")

    def test_non_string_raises(self):
        with pytest.raises(NatureError):
            get_nature(123)

    def test_all_natures_contains_five_domains(self):
        names = {n.name for n in all_natures()}
        assert {"electrical", "mechanical_translation", "mechanical_rotation",
                "hydraulic", "thermal"} <= names

    def test_register_conflicting_name_raises(self):
        impostor = Nature(
            name="electrical2", across_name="voltage", across_unit="V",
            through_name="current", through_unit="A", state_name="charge",
            state_unit="C", momentum_name="flux", momentum_unit="Wb",
            aliases=("electrical",))
        with pytest.raises(NatureError):
            register_nature(impostor)

    def test_reregistering_same_nature_is_noop(self):
        assert register_nature(ELECTRICAL) is ELECTRICAL

    def test_nature_name_must_be_lowercase(self):
        with pytest.raises(NatureError):
            Nature(name="Electrical", across_name="v", across_unit="V",
                   through_name="i", through_unit="A", state_name="q",
                   state_unit="C", momentum_name="p", momentum_unit="Wb")

    def test_symbols(self):
        assert ELECTRICAL.across_symbol == "v"
        assert MECHANICAL_TRANSLATION.through_symbol == "f"
        assert MECHANICAL_TRANSLATION.state_symbol == "x"
