"""Setuptools entry point.

The pyproject.toml carries all metadata; this file exists so that
``pip install -e .`` works on environments whose setuptools/wheel combination
predates PEP 660 editable installs (legacy ``setup.py develop`` fallback).
"""

from setuptools import setup

setup()
